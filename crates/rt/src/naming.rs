//! Name-binding leases for the real-time deployment (§2).
//!
//! "In order to support a repeated open, the cache must also hold the
//! name-to-file binding and permission information, and it needs a lease
//! over this information in order to use that information to perform the
//! open. Similarly, modification of this information, such as renaming the
//! file, would constitute a write."
//!
//! Directories are leased resources like any file: their "contents" are a
//! serialized listing of name→id bindings, and namespace mutations
//! (rename, unlink, create) are writes to the directory resource — so they
//! run the full approval protocol and invalidate every cached binding
//! before taking effect.

use std::fmt::Write as _;

use bytes::Bytes;
use lease_store::{DirEntry, DirId, Store};

/// One parsed binding from a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Entry name.
    pub name: String,
    /// Resource id of the file or subdirectory.
    pub id: u64,
    /// Whether the entry is a subdirectory.
    pub is_dir: bool,
}

/// Serializes a directory's bindings as the leased datum.
pub fn encode_listing(store: &Store, dir: DirId) -> Bytes {
    let mut out = String::new();
    if let Ok(entries) = store.list(dir) {
        for (name, entry) in entries {
            let (id, kind) = match entry {
                DirEntry::File(f) => (f.0, 'f'),
                DirEntry::Dir(d) => (d.0, 'd'),
            };
            let _ = writeln!(out, "{kind} {id} {name}");
        }
    }
    Bytes::from(out)
}

/// Parses a listing produced by [`encode_listing`].
pub fn parse_listing(data: &[u8]) -> Vec<Binding> {
    let text = String::from_utf8_lossy(data);
    text.lines()
        .filter_map(|line| {
            let mut parts = line.splitn(3, ' ');
            let kind = parts.next()?;
            let id: u64 = parts.next()?.parse().ok()?;
            let name = parts.next()?.to_string();
            Some(Binding {
                name,
                id,
                is_dir: kind == "d",
            })
        })
        .collect()
}

/// A namespace mutation, encoded as the "data" written to a directory
/// resource so it travels through the ordinary lease write protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameOp {
    /// Rename an entry within the directory.
    Rename {
        /// Existing name.
        from: String,
        /// New name.
        to: String,
    },
    /// Remove a file entry.
    Unlink {
        /// The entry to remove.
        name: String,
    },
    /// Create an empty regular file.
    Create {
        /// The new entry's name.
        name: String,
    },
}

impl NameOp {
    /// Encodes the operation for the wire.
    pub fn encode(&self) -> Bytes {
        let s = match self {
            NameOp::Rename { from, to } => format!("R {from}\u{0} {to}"),
            NameOp::Unlink { name } => format!("U {name}"),
            NameOp::Create { name } => format!("C {name}"),
        };
        Bytes::from(s)
    }

    /// Decodes an operation; `None` if the bytes are not a namespace op.
    pub fn decode(data: &[u8]) -> Option<NameOp> {
        let text = std::str::from_utf8(data).ok()?;
        let (tag, rest) = text.split_once(' ')?;
        match tag {
            "R" => {
                let (from, to) = rest.split_once("\u{0} ")?;
                Some(NameOp::Rename {
                    from: from.to_string(),
                    to: to.to_string(),
                })
            }
            "U" => Some(NameOp::Unlink {
                name: rest.to_string(),
            }),
            "C" => Some(NameOp::Create {
                name: rest.to_string(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lease_clock::Time;
    use lease_store::{FileKind, Perms};

    #[test]
    fn listing_roundtrip() {
        let mut store = Store::new();
        let d = store.mkdir(DirId::ROOT, "etc", Time::ZERO).unwrap();
        let f = store
            .create_file(
                DirId::ROOT,
                "motd",
                FileKind::Regular,
                Perms::rw(),
                Time::ZERO,
            )
            .unwrap();
        let listing = encode_listing(&store, DirId::ROOT);
        let bindings = parse_listing(&listing);
        assert_eq!(bindings.len(), 2);
        assert!(bindings
            .iter()
            .any(|b| b.name == "etc" && b.id == d.0 && b.is_dir));
        assert!(bindings
            .iter()
            .any(|b| b.name == "motd" && b.id == f.0 && !b.is_dir));
    }

    #[test]
    fn empty_and_garbage_listings_parse_safely() {
        assert!(parse_listing(b"").is_empty());
        assert!(parse_listing(b"not a listing").is_empty());
        assert!(parse_listing(&[0xff, 0xfe]).is_empty());
    }

    #[test]
    fn name_op_roundtrip() {
        for op in [
            NameOp::Rename {
                from: "a b".into(),
                to: "c d".into(),
            },
            NameOp::Unlink { name: "x".into() },
            NameOp::Create {
                name: "new file".into(),
            },
        ] {
            assert_eq!(NameOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(NameOp::decode(b"bogus"), None);
        assert_eq!(NameOp::decode(b"Z nope"), None);
    }

    #[test]
    fn rename_names_may_contain_spaces() {
        let op = NameOp::Rename {
            from: "my file.txt".into(),
            to: "your file.txt".into(),
        };
        assert_eq!(NameOp::decode(&op.encode()), Some(op));
    }
}
