//! History recording: the real-time runtime's perfect observer.
//!
//! The simulator gets its consistency verdicts by logging every operation
//! into a `lease_vsys::History` and handing it to
//! `lease_faults::check_history`. This module closes the same loop for
//! real-time runs: client threads log operation start/completion and the
//! storage backend logs commits, all timestamped by one shared *true*
//! wall clock — even when chaos gives individual hosts skewed
//! [`ModelClock`](lease_clock::ModelClock)s. The checker may use a perfect
//! observer even though the protocol cannot; that asymmetry is exactly
//! what lets the oracle catch a fast server clock breaking §5's
//! assumptions while the protocol itself never notices.

use std::sync::{Arc, Mutex};

use lease_clock::{Clock, Time, WallClock};
use lease_vsys::{History, HistoryEvent};

/// A thread-safe, true-time-stamped history log.
///
/// Cheap to share: one mutex-guarded append per recorded event. Every
/// timestamp comes from the one true [`WallClock`] the recorder owns, so
/// events from differently-skewed hosts still land on a single timeline.
pub struct Recorder {
    truth: Arc<dyn Clock>,
    events: Mutex<History>,
}

impl Recorder {
    /// Creates a recorder observing through `truth`.
    pub(crate) fn new(truth: WallClock) -> Recorder {
        Recorder::with_clock(Arc::new(truth))
    }

    /// A recorder observing through an arbitrary clock.
    ///
    /// The multi-process harness uses this with a
    /// [`SysClock`](lease_clock::SysClock) sharing one parent-chosen unix
    /// epoch across processes, so the client processes' operation events
    /// and the server process's commit events land on a single true-time
    /// axis the oracle can check.
    pub fn with_clock(truth: Arc<dyn Clock>) -> Recorder {
        Recorder {
            truth,
            events: Mutex::new(History::new()),
        }
    }

    /// The current true time (not any host's skewed view).
    pub fn now(&self) -> Time {
        self.truth.now()
    }

    /// Appends one event.
    pub fn push(&self, ev: HistoryEvent) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(ev);
    }

    /// A copy of everything recorded so far, in append order.
    pub fn snapshot(&self) -> History {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}
