//! The server side: storage backend and `lease-svc` runtime adapters.
//!
//! The seed ran one server state machine on one dedicated thread behind
//! one channel. The real-time deployment now runs on the sharded
//! `lease-svc` runtime instead: the pieces here adapt it to this crate's
//! world — the durable [`StoreBackend`] shared by every shard, the
//! [`RtSink`] that delivers shard output over per-client channels (with
//! cut switches and seeded chaos faults), and the [`ServerPort`] client
//! threads use to submit protocol messages into the service.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::Sender;
use lease_clock::{Clock, Dur, Time, WallClock};
use lease_core::ring::Inbox;
use lease_core::{ClientId, ServerCounters, Storage, ToClient, ToServer, Version};
use lease_store::{FileId, Store};
use lease_svc::{
    chaos::Delivery, ClientSink, Egress, EgressWorker, FaultPlan, LinkChaos, SvcError, SvcHandle,
    WorkerSink,
};
use lease_vsys::HistoryEvent;

use crate::record::Recorder;

/// The resource key in the real-time system: the store's file id, as u64.
pub type Res = u64;

/// How long a client thread waits before resubmitting a message the
/// service refused under backpressure.
pub const RETRY_AFTER: Dur = Dur::from_millis(2);

/// Observable server statistics.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Protocol counters, merged across every shard.
    pub counters: ServerCounters,
    /// Committed writes in the store.
    pub writes_committed: u64,
    /// Crash/restart count per shard.
    pub shard_restarts: Vec<u64>,
}

/// Adapts `lease_store::Store` to the protocol's storage interface.
pub struct StoreBackend {
    /// The underlying durable store.
    pub store: Store,
    clock: WallClock,
    /// Logs every committed version for the consistency oracle.
    pub(crate) recorder: Option<Arc<Recorder>>,
}

impl StoreBackend {
    /// Wraps a store.
    pub fn new(store: Store, clock: WallClock) -> StoreBackend {
        StoreBackend {
            store,
            clock,
            recorder: None,
        }
    }
}

impl Storage<Res, Bytes> for StoreBackend {
    fn read(&self, resource: &Res) -> Option<(Bytes, Version)> {
        if let Ok((data, v)) = self.store.read(FileId(*resource)) {
            return Some((data.clone(), Version(v.0)));
        }
        // Directory resources serve their serialized name bindings (§2:
        // the name-to-file information is leased like any datum).
        let dir = lease_store::DirId(*resource);
        let v = self.store.dir_version(dir)?;
        Some((
            crate::naming::encode_listing(&self.store, dir),
            Version(v.0),
        ))
    }

    fn version(&self, resource: &Res) -> Option<Version> {
        if let Some(f) = self.store.file(FileId(*resource)) {
            return Some(Version(f.version.0));
        }
        self.store
            .dir_version(lease_store::DirId(*resource))
            .map(|v| Version(v.0))
    }

    fn write(&mut self, resource: &Res, data: Bytes) -> Version {
        let now = self.clock.now();
        let before = self.version(resource);
        let committed = if self.store.file(FileId(*resource)).is_some() {
            let v = self
                .store
                .install(FileId(*resource), data, now)
                .expect("file exists");
            Version(v.0)
        } else {
            // A write to a directory resource carries an encoded namespace
            // mutation; it lands here only after the lease protocol
            // collected every binding-holder's approval.
            let dir = lease_store::DirId(*resource);
            if let Some(op) = crate::naming::NameOp::decode(&data) {
                let apply = match op {
                    crate::naming::NameOp::Rename { from, to } => {
                        self.store.rename(dir, &from, dir, &to, now).map(|_| ())
                    }
                    crate::naming::NameOp::Unlink { name } => {
                        self.store.unlink(dir, &name, now).map(|_| ())
                    }
                    crate::naming::NameOp::Create { name } => self
                        .store
                        .create_file(
                            dir,
                            &name,
                            lease_store::FileKind::Regular,
                            lease_store::Perms::rw(),
                            now,
                        )
                        .map(|_| ()),
                };
                if apply.is_err() {
                    // The op no longer applies (e.g. name vanished while
                    // the write waited for approvals): bump the version
                    // anyway so callers revalidate, by touching and
                    // undoing nothing.
                }
            }
            Version(self.store.dir_version(dir).map(|v| v.0).unwrap_or(0))
        };
        // Only a version that actually advanced is a commit on the
        // oracle's timeline (a no-op name mutation leaves it unchanged).
        if before != Some(committed) {
            if let Some(rec) = &self.recorder {
                rec.push(HistoryEvent::Commit {
                    resource: *resource,
                    version: committed,
                    writer: None,
                    at: rec.now(),
                });
            }
        }
        committed
    }
}

/// The one durable backend, shared by every shard worker. Resources are
/// partitioned by shard, so two shards never write the same file; the
/// mutex only serializes unrelated accesses.
///
/// The lock recovers from poisoning: the store is only ever mutated
/// through committed writes, which either complete before a panic or were
/// never observable, so a holder dying mid-critical-section (a supervised
/// shard crash) must not cascade into whole-server failure.
pub(crate) struct SharedBackend(pub Arc<Mutex<StoreBackend>>);

/// Locks a possibly-poisoned backend mutex, accepting the poison: the
/// data under it is consistent by construction (see [`SharedBackend`]).
pub(crate) fn lock_backend(m: &Mutex<StoreBackend>) -> MutexGuard<'_, StoreBackend> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Storage<Res, Bytes> for SharedBackend {
    fn read(&self, resource: &Res) -> Option<(Bytes, Version)> {
        lock_backend(&self.0).read(resource)
    }

    fn version(&self, resource: &Res) -> Option<Version> {
        lock_backend(&self.0).version(resource)
    }

    fn write(&mut self, resource: &Res, data: Bytes) -> Version {
        lock_backend(&self.0).write(resource, data)
    }
}

/// Seeded chaos applied to the client↔server transport: per-link
/// deterministic drop/delay/duplicate dice plus plan-relative cut windows,
/// generalizing the boolean cut switches.
pub(crate) struct ChaosNet {
    plan: FaultPlan,
    truth: WallClock,
    /// Server→client fault dice, one stream per client.
    s2c: Vec<LinkChaos>,
    /// Client→server fault dice, one stream per client.
    c2s: Vec<LinkChaos>,
}

/// Stream-id bit distinguishing the client→server direction.
const C2S_STREAM: u64 = 1 << 32;

impl ChaosNet {
    pub fn new(plan: FaultPlan, truth: WallClock, clients: usize) -> ChaosNet {
        let s2c = (0..clients).map(|i| plan.link(i as u64)).collect();
        let c2s = (0..clients)
            .map(|i| plan.link(i as u64 | C2S_STREAM))
            .collect();
        ChaosNet {
            plan,
            truth,
            s2c,
            c2s,
        }
    }

    /// Elapsed run time on the true clock (plans are start-relative).
    fn elapsed(&self) -> Dur {
        self.truth.now().saturating_since(Time::ZERO)
    }

    /// Whether a plan cut window covers `client` right now.
    pub fn cut(&self, client: usize) -> bool {
        self.plan.cut_active(client, self.elapsed())
    }

    /// Whether a plan cut window covers grantor replica `replica` now
    /// (host-level partitions in the replicated topology).
    pub fn replica_cut(&self, replica: usize) -> bool {
        self.plan.replica_cut_active(replica, self.elapsed())
    }

    pub fn s2c(&self, client: usize) -> Delivery {
        self.s2c[client].next()
    }

    pub fn c2s(&self, client: usize) -> Delivery {
        self.c2s[client].next()
    }
}

/// Per-client outbound link, with a kill switch for fault injection.
pub struct ClientLink {
    /// Channel into the client thread (the cold/chaos/fence path; the
    /// hot path is the ring lane the [`Egress`] registry hands shard
    /// workers).
    pub tx: Sender<ToClient<Res, Bytes>>,
    /// The client's egress inbox. Every channel send must ring its
    /// doorbell afterwards — the client thread parks on this one bell
    /// for *all* of its inputs (commands, channel messages, ring
    /// lanes).
    pub inbox: Arc<Inbox<ToClient<Res, Bytes>>>,
    /// When set, messages to and from this client are dropped.
    pub cut: Arc<AtomicBool>,
}

impl ClientLink {
    /// Sends over the channel and rings the client's doorbell.
    fn send(&self, msg: ToClient<Res, Bytes>) {
        let _ = self.tx.send(msg);
        self.inbox.bell().ring();
    }
}

/// One shared sleeper thread servicing every delayed (or duplicated)
/// chaos delivery, replacing the unbounded short-lived
/// `std::thread::spawn` per faulted message: entries wait in a min-heap
/// keyed by deadline, the sleeper parks until the earliest one is due,
/// sends it, and rings the client's doorbell. The thread is spawned
/// lazily on the first delayed delivery (fault-free runs never pay for
/// it) and exits when the owning [`RtSink`] drops, discarding whatever
/// is still pending — an undelivered delayed message is
/// indistinguishable from a dropped one, which chaos already models.
pub(crate) struct DelayPool {
    inner: Arc<DelayShared>,
}

struct DelayShared {
    state: Mutex<DelayState>,
    cvar: Condvar,
}

struct DelayState {
    heap: BinaryHeap<DelayedSend>,
    seq: u64,
    started: bool,
    closed: bool,
}

struct DelayedSend {
    due: Instant,
    /// Insertion order, so equal deadlines deliver FIFO.
    seq: u64,
    tx: Sender<ToClient<Res, Bytes>>,
    inbox: Arc<Inbox<ToClient<Res, Bytes>>>,
    msg: ToClient<Res, Bytes>,
    copies: u32,
}

impl Ord for DelayedSend {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // `BinaryHeap` is a max-heap; invert so the earliest deadline
        // surfaces first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for DelayedSend {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for DelayedSend {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl Eq for DelayedSend {}

impl DelayPool {
    pub fn new() -> DelayPool {
        DelayPool {
            inner: Arc::new(DelayShared {
                state: Mutex::new(DelayState {
                    heap: BinaryHeap::new(),
                    seq: 0,
                    started: false,
                    closed: false,
                }),
                cvar: Condvar::new(),
            }),
        }
    }

    /// Queues `copies` of `msg` for delivery to `link` after `delay`.
    pub fn schedule(&self, delay: Dur, link: &ClientLink, msg: ToClient<Res, Bytes>, copies: u32) {
        let due = Instant::now() + std::time::Duration::from(delay);
        let mut st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return;
        }
        let seq = st.seq;
        st.seq += 1;
        st.heap.push(DelayedSend {
            due,
            seq,
            tx: link.tx.clone(),
            inbox: Arc::clone(&link.inbox),
            msg,
            copies,
        });
        if !st.started {
            st.started = true;
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name("rt-chaos-delay".into())
                .spawn(move || inner.run())
                .expect("spawn chaos delay sleeper");
        }
        drop(st);
        self.inner.cvar.notify_one();
    }
}

impl Drop for DelayPool {
    fn drop(&mut self) {
        let mut st = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.closed = true;
        st.heap.clear();
        drop(st);
        self.inner.cvar.notify_all();
    }
}

impl DelayShared {
    fn run(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.closed {
                return;
            }
            let due = match st.heap.peek() {
                None => {
                    st = self.cvar.wait(st).unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                Some(top) => top.due,
            };
            let now = Instant::now();
            if due > now {
                st = self
                    .cvar
                    .wait_timeout(st, due - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
                continue;
            }
            let entry = st.heap.pop().expect("peeked");
            // Deliver outside the lock: schedulers must never block
            // behind a slow (or full) client channel.
            drop(st);
            for _ in 0..entry.copies {
                let _ = entry.tx.send(entry.msg.clone());
            }
            entry.inbox.bell().ring();
            st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Egress fencing for one replica of the replicated topology: which
/// replica this service is, and the grantor gate its replies must pass.
pub(crate) struct RtFence {
    /// This service's replica index (for plan-relative cut windows).
    pub replica: usize,
    /// The replica's serving gate: while it is closed — never elected,
    /// lease lapsed, stale after a partition — every reply is dropped, so
    /// a stale grantor's grants and approvals cannot reach clients.
    pub gate: Arc<lease_quorum::GrantorGate>,
}

/// Delivers shard output to client threads: over per-client SPSC ring
/// lanes when the topology is fault-free (each shard worker attaches a
/// private [`EgressWorker`] at thread start), over the per-client
/// channels otherwise — chaos rolls per-message dice and the replica
/// fence re-checks its gate per message, both of which need the shared
/// one-at-a-time path.
pub(crate) struct RtSink {
    pub links: Vec<ClientLink>,
    pub chaos: Option<Arc<ChaosNet>>,
    /// Present only in the replicated topology.
    pub fence: Option<RtFence>,
    /// The ring-lane registry; `None` leaves every delivery on the
    /// channel path.
    pub egress: Option<Egress<Res, Bytes>>,
    /// Shared sleeper for chaos-delayed deliveries.
    pub delay: DelayPool,
}

/// A shard worker's private egress half in the real-time topology: the
/// ring lanes plus the per-client cut switches, which fault injection
/// can flip at any moment and therefore must gate the ring path exactly
/// like they gate the channel path.
struct RtWorkerSink {
    worker: EgressWorker<Res, Bytes>,
    cuts: Vec<Arc<AtomicBool>>,
    run: Vec<ToClient<Res, Bytes>>,
}

impl WorkerSink<Res, Bytes> for RtWorkerSink {
    fn deliver_batch(&mut self, msgs: &mut Vec<(ClientId, ToClient<Res, Bytes>)>) {
        let mut run = std::mem::take(&mut self.run);
        let mut it = msgs.drain(..).peekable();
        while let Some((to, msg)) = it.next() {
            // Check the cut *before* accumulating the run: a cut
            // client's messages are discarded as they stream past, not
            // staged and thrown away.
            let cut = self.cuts[to.0 as usize].load(Ordering::Relaxed);
            if !cut {
                run.push(msg);
            }
            while let Some((next, _)) = it.peek() {
                if *next != to {
                    break;
                }
                let (_, m) = it.next().expect("peeked");
                if !cut {
                    run.push(m);
                }
            }
            if !cut {
                self.worker.push_run(to, &mut run);
            }
        }
        drop(it);
        self.run = run;
        self.worker.flush_wakes();
    }
}

impl RtSink {
    /// Whether the replica may emit anything at all right now.
    fn fenced(&self) -> bool {
        match &self.fence {
            None => false,
            Some(f) => {
                !f.gate.is_open()
                    || self
                        .chaos
                        .as_ref()
                        .is_some_and(|c| c.replica_cut(f.replica))
            }
        }
    }
}

impl ClientSink<Res, Bytes> for RtSink {
    fn deliver(&self, to: ClientId, msg: ToClient<Res, Bytes>) {
        if self.fenced() {
            return;
        }
        let link = &self.links[to.0 as usize];
        if link.cut.load(Ordering::Relaxed) {
            return;
        }
        if let Some(chaos) = &self.chaos {
            if chaos.cut(to.0 as usize) {
                return;
            }
            match chaos.s2c(to.0 as usize) {
                Delivery::Drop => return,
                Delivery::Deliver { delay, copies } => {
                    if !delay.is_zero() || copies != 1 {
                        // Delayed (or duplicated) delivery must not block
                        // the shard worker: hand it to the shared sleeper.
                        self.delay.schedule(delay, link, msg, copies);
                        return;
                    }
                }
            }
        }
        link.send(msg);
    }

    fn deliver_batch(&self, msgs: &mut Vec<(ClientId, ToClient<Res, Bytes>)>) {
        if self.chaos.is_some() || self.fence.is_some() {
            // Chaos rolls per-message dice (drop/delay/duplicate) and the
            // fence must be re-checked per message (the gate can lapse
            // mid-batch); keep the one-at-a-time path.
            for (to, msg) in msgs.drain(..) {
                self.deliver(to, msg);
            }
            return;
        }
        // Shard replies arrive heavily run-clustered (one client's batch
        // drains in order), so group consecutive same-client messages and
        // push each run through one locked enqueue. A cut client's
        // messages are discarded *before* they are accumulated.
        let mut it = msgs.drain(..).peekable();
        let mut run: Vec<ToClient<Res, Bytes>> = Vec::new();
        while let Some((to, msg)) = it.next() {
            let link = &self.links[to.0 as usize];
            let cut = link.cut.load(Ordering::Relaxed);
            if !cut {
                run.push(msg);
            }
            while let Some((next, _)) = it.peek() {
                if *next != to {
                    break;
                }
                let (_, m) = it.next().expect("peeked");
                if !cut {
                    run.push(m);
                }
            }
            if !cut {
                let _ = link.tx.send_many(run.drain(..));
                link.inbox.bell().ring();
            }
        }
    }

    fn attach_worker(&self) -> Option<Box<dyn WorkerSink<Res, Bytes>>> {
        if self.chaos.is_some() || self.fence.is_some() {
            // Per-message dice and per-message gate rechecks cannot ride
            // a run-grouped lane publish: stay on the shared path.
            return None;
        }
        let egress = self.egress.as_ref()?;
        Some(Box::new(RtWorkerSink {
            worker: egress.worker(),
            cuts: self.links.iter().map(|l| Arc::clone(&l.cut)).collect(),
            run: Vec::new(),
        }))
    }
}

/// What became of a client's submission attempt.
pub enum PortVerdict {
    /// Handed to the service (or scheduled for chaotic delivery).
    Sent,
    /// Dropped: the link is cut, chaos ate it, or the service is gone.
    /// The client's retransmission machinery recovers.
    Dropped,
    /// The service pushed back; resubmit the returned message after
    /// [`RETRY_AFTER`] instead of surfacing an error.
    RetryAfter(ToServer<Res, Bytes>),
}

/// Where a client thread submits protocol messages: the single-server
/// topology's [`ServerPort`], or the replicated topology's failover port
/// that hunts for the current grantor. Implementations never block on a
/// saturated shard — backpressure degrades into
/// [`PortVerdict::RetryAfter`], and unreachability into
/// [`PortVerdict::Dropped`] (the client's retransmission backoff is the
/// retry schedule).
///
/// Each client thread **owns** its port (`Box<dyn Port>`): a
/// [`SvcHandle`] is a per-producer object (one SPSC lane per shard), so
/// ports are cloned per client rather than shared behind an `Arc` —
/// which is exactly the thread-per-producer shape the ingress wants.
pub trait Port: Send {
    /// Submits one client message, unless faults interfere. `deadline` is
    /// the originating op's drop-dead time, propagated so the service can
    /// discard the work if it drains it too late.
    fn send(
        &self,
        from: ClientId,
        msg: ToServer<Res, Bytes>,
        deadline: Option<Time>,
    ) -> PortVerdict;
}

/// What client threads hold instead of a channel to a server thread: the
/// sharded service handle, the cut switches, and the chaos dice for the
/// inbound direction.
#[derive(Clone)]
pub(crate) struct ServerPort {
    pub svc: SvcHandle<Res, Bytes>,
    pub cuts: Arc<Vec<Arc<AtomicBool>>>,
    pub chaos: Option<Arc<ChaosNet>>,
}

impl Port for ServerPort {
    fn send(
        &self,
        from: ClientId,
        msg: ToServer<Res, Bytes>,
        deadline: Option<Time>,
    ) -> PortVerdict {
        if self.cuts[from.0 as usize].load(Ordering::Relaxed) {
            return PortVerdict::Dropped; // Fault injection: drop inbound too.
        }
        if let Some(chaos) = &self.chaos {
            if chaos.cut(from.0 as usize) {
                return PortVerdict::Dropped;
            }
            match chaos.c2s(from.0 as usize) {
                Delivery::Drop => return PortVerdict::Dropped,
                Delivery::Deliver { delay, copies } => {
                    if !delay.is_zero() || copies != 1 {
                        // Late (or duplicated) submission happens off the
                        // client thread; the blocking send is fine there.
                        let svc = self.svc.clone();
                        std::thread::spawn(move || {
                            std::thread::sleep(std::time::Duration::from(delay));
                            for _ in 0..copies {
                                let _ = svc.send_at(from, msg.clone(), deadline);
                            }
                        });
                        return PortVerdict::Sent;
                    }
                }
            }
        }
        match self.svc.try_send_at(from, msg.clone(), deadline) {
            Ok(()) => PortVerdict::Sent,
            Err(SvcError::Backpressure) => PortVerdict::RetryAfter(msg),
            Err(_) => PortVerdict::Dropped,
        }
    }
}
