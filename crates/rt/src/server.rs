//! The server thread.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use lease_clock::{Clock, Time, WallClock};
use lease_core::{
    ClientId, LeaseServer, ServerCounters, ServerInput, ServerOutput, ServerTimer, Storage,
    ToClient, ToServer, Version,
};
use lease_store::{FileId, Store};

/// The resource key in the real-time system: the store's file id, as u64.
pub type Res = u64;

/// Messages into the server thread.
pub enum ServerCmd {
    /// A protocol message from a client.
    Msg(ClientId, ToServer<Res, Bytes>),
    /// An administrative write (install).
    LocalWrite(Res, Bytes),
    /// Ask for counters.
    Stats(Sender<ServerStats>),
    /// Stop the thread.
    Shutdown,
}

/// Observable server statistics.
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Protocol counters.
    pub counters: ServerCounters,
    /// Committed writes in the store.
    pub writes_committed: u64,
}

/// Adapts `lease_store::Store` to the protocol's storage interface.
pub struct StoreBackend {
    /// The underlying durable store.
    pub store: Store,
    clock: WallClock,
}

impl StoreBackend {
    /// Wraps a store.
    pub fn new(store: Store, clock: WallClock) -> StoreBackend {
        StoreBackend { store, clock }
    }
}

impl Storage<Res, Bytes> for StoreBackend {
    fn read(&self, resource: &Res) -> Option<(Bytes, Version)> {
        if let Ok((data, v)) = self.store.read(FileId(*resource)) {
            return Some((data.clone(), Version(v.0)));
        }
        // Directory resources serve their serialized name bindings (§2:
        // the name-to-file information is leased like any datum).
        let dir = lease_store::DirId(*resource);
        let v = self.store.dir_version(dir)?;
        Some((
            crate::naming::encode_listing(&self.store, dir),
            Version(v.0),
        ))
    }

    fn version(&self, resource: &Res) -> Option<Version> {
        if let Some(f) = self.store.file(FileId(*resource)) {
            return Some(Version(f.version.0));
        }
        self.store
            .dir_version(lease_store::DirId(*resource))
            .map(|v| Version(v.0))
    }

    fn write(&mut self, resource: &Res, data: Bytes) -> Version {
        let now = self.clock.now();
        if self.store.file(FileId(*resource)).is_some() {
            let v = self
                .store
                .install(FileId(*resource), data, now)
                .expect("file exists");
            return Version(v.0);
        }
        // A write to a directory resource carries an encoded namespace
        // mutation; it lands here only after the lease protocol collected
        // every binding-holder's approval.
        let dir = lease_store::DirId(*resource);
        if let Some(op) = crate::naming::NameOp::decode(&data) {
            let apply = match op {
                crate::naming::NameOp::Rename { from, to } => {
                    self.store.rename(dir, &from, dir, &to, now).map(|_| ())
                }
                crate::naming::NameOp::Unlink { name } => {
                    self.store.unlink(dir, &name, now).map(|_| ())
                }
                crate::naming::NameOp::Create { name } => self
                    .store
                    .create_file(
                        dir,
                        &name,
                        lease_store::FileKind::Regular,
                        lease_store::Perms::rw(),
                        now,
                    )
                    .map(|_| ()),
            };
            if apply.is_err() {
                // The op no longer applies (e.g. name vanished while the
                // write waited for approvals): bump the version anyway so
                // callers revalidate, by touching and undoing nothing.
            }
        }
        Version(self.store.dir_version(dir).map(|v| v.0).unwrap_or(0))
    }
}

/// Per-client outbound link, with a kill switch for fault injection.
pub struct ClientLink {
    /// Channel into the client thread.
    pub tx: Sender<ToClient<Res, Bytes>>,
    /// When set, messages to and from this client are dropped.
    pub cut: Arc<AtomicBool>,
}

pub(crate) fn spawn_server(
    mut server: LeaseServer<Res, Bytes>,
    mut backend: StoreBackend,
    rx: Receiver<ServerCmd>,
    links: Vec<ClientLink>,
    clock: WallClock,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("lease-server".into())
        .spawn(move || {
            let mut timers: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
            let key = |t: ServerTimer| match t {
                ServerTimer::InstalledTick => 0u64,
                ServerTimer::WriteDeadline(w) => w.0 + 1,
            };
            let timer_of = |k: u64| {
                if k == 0 {
                    ServerTimer::InstalledTick
                } else {
                    ServerTimer::WriteDeadline(lease_core::WriteId(k - 1))
                }
            };
            fn apply(
                outs: Vec<ServerOutput<Res, Bytes>>,
                timers: &mut BinaryHeap<Reverse<(Time, u64)>>,
                links: &[ClientLink],
                backend: &mut StoreBackend,
                key: &impl Fn(ServerTimer) -> u64,
            ) {
                for o in outs {
                    match o {
                        ServerOutput::Send { to, msg } => {
                            let link = &links[to.0 as usize];
                            if !link.cut.load(Ordering::Relaxed) {
                                let _ = link.tx.send(msg);
                            }
                        }
                        ServerOutput::Multicast { to, msg } => {
                            for c in to {
                                let link = &links[c.0 as usize];
                                if !link.cut.load(Ordering::Relaxed) {
                                    let _ = link.tx.send(msg.clone());
                                }
                            }
                        }
                        ServerOutput::SetTimer { at, timer } => {
                            timers.push(Reverse((at, key(timer))));
                        }
                        ServerOutput::PersistMaxTerm(d) => {
                            backend
                                .store
                                .put_slot("max_lease_term", d.as_nanos().to_le_bytes().to_vec());
                        }
                        ServerOutput::PersistLease { .. } => {
                            // The RT deployment uses MaxTerm recovery.
                        }
                        ServerOutput::Committed { .. } => {}
                    }
                }
            }

            let outs = server.start(clock.now(), &backend);
            apply(outs, &mut timers, &links, &mut backend, &key);

            loop {
                // Fire due timers.
                let now = clock.now();
                while let Some(Reverse((at, k))) = timers.peek().copied() {
                    if at > now {
                        break;
                    }
                    timers.pop();
                    let outs =
                        server.handle(clock.now(), ServerInput::Timer(timer_of(k)), &mut backend);
                    apply(outs, &mut timers, &links, &mut backend, &key);
                }
                // Wait for the next message or timer deadline.
                let wait = timers
                    .peek()
                    .map(|Reverse((at, _))| {
                        std::time::Duration::from(at.saturating_since(clock.now()))
                    })
                    .unwrap_or(std::time::Duration::from_millis(50));
                match rx.recv_timeout(wait) {
                    Ok(ServerCmd::Msg(from, msg)) => {
                        if links[from.0 as usize].cut.load(Ordering::Relaxed) {
                            continue; // Fault injection: drop inbound too.
                        }
                        let outs = server.handle(
                            clock.now(),
                            ServerInput::Msg { from, msg },
                            &mut backend,
                        );
                        apply(outs, &mut timers, &links, &mut backend, &key);
                    }
                    Ok(ServerCmd::LocalWrite(resource, data)) => {
                        let outs = server.handle(
                            clock.now(),
                            ServerInput::LocalWrite { resource, data },
                            &mut backend,
                        );
                        apply(outs, &mut timers, &links, &mut backend, &key);
                    }
                    Ok(ServerCmd::Stats(reply)) => {
                        let _ = reply.send(ServerStats {
                            counters: server.counters,
                            writes_committed: backend.store.writes_committed(),
                        });
                    }
                    Ok(ServerCmd::Shutdown) => break,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        })
        .expect("spawn server thread")
}
