//! The server side: storage backend and `lease-svc` runtime adapters.
//!
//! The seed ran one server state machine on one dedicated thread behind
//! one channel. The real-time deployment now runs on the sharded
//! `lease-svc` runtime instead: the pieces here adapt it to this crate's
//! world — the durable [`StoreBackend`] shared by every shard, the
//! [`RtSink`] that delivers shard output over per-client channels (with
//! the fault-injection cut switch), and the [`ServerPort`] client threads
//! use to submit protocol messages into the service.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use crossbeam::channel::Sender;
use lease_clock::{Clock, WallClock};
use lease_core::{ClientId, ServerCounters, Storage, ToClient, ToServer, Version};
use lease_store::{FileId, Store};
use lease_svc::{ClientSink, SvcHandle};

/// The resource key in the real-time system: the store's file id, as u64.
pub type Res = u64;

/// Observable server statistics.
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Protocol counters, merged across every shard.
    pub counters: ServerCounters,
    /// Committed writes in the store.
    pub writes_committed: u64,
}

/// Adapts `lease_store::Store` to the protocol's storage interface.
pub struct StoreBackend {
    /// The underlying durable store.
    pub store: Store,
    clock: WallClock,
}

impl StoreBackend {
    /// Wraps a store.
    pub fn new(store: Store, clock: WallClock) -> StoreBackend {
        StoreBackend { store, clock }
    }
}

impl Storage<Res, Bytes> for StoreBackend {
    fn read(&self, resource: &Res) -> Option<(Bytes, Version)> {
        if let Ok((data, v)) = self.store.read(FileId(*resource)) {
            return Some((data.clone(), Version(v.0)));
        }
        // Directory resources serve their serialized name bindings (§2:
        // the name-to-file information is leased like any datum).
        let dir = lease_store::DirId(*resource);
        let v = self.store.dir_version(dir)?;
        Some((
            crate::naming::encode_listing(&self.store, dir),
            Version(v.0),
        ))
    }

    fn version(&self, resource: &Res) -> Option<Version> {
        if let Some(f) = self.store.file(FileId(*resource)) {
            return Some(Version(f.version.0));
        }
        self.store
            .dir_version(lease_store::DirId(*resource))
            .map(|v| Version(v.0))
    }

    fn write(&mut self, resource: &Res, data: Bytes) -> Version {
        let now = self.clock.now();
        if self.store.file(FileId(*resource)).is_some() {
            let v = self
                .store
                .install(FileId(*resource), data, now)
                .expect("file exists");
            return Version(v.0);
        }
        // A write to a directory resource carries an encoded namespace
        // mutation; it lands here only after the lease protocol collected
        // every binding-holder's approval.
        let dir = lease_store::DirId(*resource);
        if let Some(op) = crate::naming::NameOp::decode(&data) {
            let apply = match op {
                crate::naming::NameOp::Rename { from, to } => {
                    self.store.rename(dir, &from, dir, &to, now).map(|_| ())
                }
                crate::naming::NameOp::Unlink { name } => {
                    self.store.unlink(dir, &name, now).map(|_| ())
                }
                crate::naming::NameOp::Create { name } => self
                    .store
                    .create_file(
                        dir,
                        &name,
                        lease_store::FileKind::Regular,
                        lease_store::Perms::rw(),
                        now,
                    )
                    .map(|_| ()),
            };
            if apply.is_err() {
                // The op no longer applies (e.g. name vanished while the
                // write waited for approvals): bump the version anyway so
                // callers revalidate, by touching and undoing nothing.
            }
        }
        Version(self.store.dir_version(dir).map(|v| v.0).unwrap_or(0))
    }
}

/// The one durable backend, shared by every shard worker. Resources are
/// partitioned by shard, so two shards never write the same file; the
/// mutex only serializes unrelated accesses.
pub(crate) struct SharedBackend(pub Arc<Mutex<StoreBackend>>);

impl Storage<Res, Bytes> for SharedBackend {
    fn read(&self, resource: &Res) -> Option<(Bytes, Version)> {
        self.0.lock().unwrap().read(resource)
    }

    fn version(&self, resource: &Res) -> Option<Version> {
        self.0.lock().unwrap().version(resource)
    }

    fn write(&mut self, resource: &Res, data: Bytes) -> Version {
        self.0.lock().unwrap().write(resource, data)
    }
}

/// Per-client outbound link, with a kill switch for fault injection.
pub struct ClientLink {
    /// Channel into the client thread.
    pub tx: Sender<ToClient<Res, Bytes>>,
    /// When set, messages to and from this client are dropped.
    pub cut: Arc<AtomicBool>,
}

/// Delivers shard output to client threads over their channels.
pub(crate) struct RtSink {
    pub links: Vec<ClientLink>,
}

impl ClientSink<Res, Bytes> for RtSink {
    fn deliver(&self, to: ClientId, msg: ToClient<Res, Bytes>) {
        let link = &self.links[to.0 as usize];
        if !link.cut.load(Ordering::Relaxed) {
            let _ = link.tx.send(msg);
        }
    }
}

/// What client threads hold instead of a channel to a server thread: the
/// sharded service handle, plus the cut switches so fault injection drops
/// inbound traffic too.
#[derive(Clone)]
pub(crate) struct ServerPort {
    pub svc: SvcHandle<Res, Bytes>,
    pub cuts: Arc<Vec<Arc<AtomicBool>>>,
}

impl ServerPort {
    /// Submits one client message, unless the client is cut.
    pub fn send(&self, from: ClientId, msg: ToServer<Res, Bytes>) {
        if self.cuts[from.0 as usize].load(Ordering::Relaxed) {
            return; // Fault injection: drop inbound too.
        }
        let _ = self.svc.send(from, msg);
    }
}
