//! Assembling a real-time lease system on the `lease-svc` runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Sender};
use lease_clock::{Clock, Dur, ModelClock, Time, WallClock};
use lease_core::{
    Backoff, ClientConfig, ClientId, LeaseClient, LeaseServer, RetryBudget, ServerConfig, Storage,
    TermController,
};
use lease_store::{DirId, FileKind, Perms, Store};
use lease_svc::{
    chaos::silence_injected_kills, shard_of, AdmissionControl, Egress, FaultPlan, LeaseService,
    SvcConfig, SvcHandle, SvcHooks,
};
use lease_vsys::{History, HistoryEvent};

use crate::breaker::CircuitBreaker;
use crate::client::{spawn_client, ClientCmd, RtClientHandle};
use crate::record::Recorder;
use crate::server::{
    lock_backend, ChaosNet, ClientLink, DelayPool, Res, RtSink, ServerPort, ServerStats,
    SharedBackend, StoreBackend,
};

/// Builder for an [`RtSystem`].
pub struct RtSystemBuilder {
    term: Dur,
    epsilon: Dur,
    retry_interval: Dur,
    max_retries: u32,
    backoff: Backoff,
    op_deadline: Option<Dur>,
    retry_budget: Option<RetryBudget>,
    breaker: Option<(u32, Dur)>,
    admission: Option<AdmissionControl>,
    overload: Option<TermController>,
    mailbox: Option<usize>,
    clients: u32,
    shards: usize,
    files: Vec<(String, Bytes, FileKind)>,
    installed_tick: Option<(Dur, Dur)>,
    chaos: Option<FaultPlan>,
}

impl RtSystemBuilder {
    /// The lease term the server grants.
    pub fn term(mut self, term: Dur) -> Self {
        self.term = term;
        self
    }

    /// The client's clock allowance ε.
    pub fn epsilon(mut self, epsilon: Dur) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Client retransmission interval (the backoff base).
    pub fn retry_interval(mut self, d: Dur) -> Self {
        self.retry_interval = d;
        self
    }

    /// Client retry budget.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Retransmission backoff policy (multiplier, cap, jitter) applied on
    /// top of [`RtSystemBuilder::retry_interval`].
    pub fn backoff(mut self, b: Backoff) -> Self {
        self.backoff = b;
        self
    }

    /// Per-operation deadline: a pending op fails with `Timeout` once this
    /// much has elapsed since its first transmission, even if retries
    /// remain. The deadline also rides along with every submission so the
    /// service drops already-dead work instead of processing it.
    pub fn op_deadline(mut self, d: Dur) -> Self {
        self.op_deadline = Some(d);
        self
    }

    /// Client-side retry budget: a token bucket metering how many *extra*
    /// (retry) transmissions each client may add per second.
    pub fn retry_budget(mut self, b: RetryBudget) -> Self {
        self.retry_budget = Some(b);
        self
    }

    /// Per-client circuit breaker: after `threshold` consecutive overload
    /// signals (backpressure, `Shed`) the client stops submitting for
    /// `cooldown`, then probes half-open.
    pub fn breaker(mut self, threshold: u32, cooldown: Dur) -> Self {
        self.breaker = Some((threshold, cooldown));
        self
    }

    /// Server-side admission control: shard occupancy watermarks at which
    /// cold fetches are shed with a `retry_after` hint.
    pub fn admission(mut self, a: AdmissionControl) -> Self {
        self.admission = Some(a);
        self
    }

    /// Server-side adaptive term degradation: every shard runs this
    /// controller, shortening granted terms as pressure rises.
    pub fn overload_control(mut self, c: TermController) -> Self {
        self.overload = Some(c);
        self
    }

    /// Per-shard mailbox capacity — the bound admission control's
    /// occupancy watermarks are measured against (default 1024).
    pub fn mailbox(mut self, n: usize) -> Self {
        self.mailbox = Some(n.max(1));
        self
    }

    /// Number of client caches.
    pub fn clients(mut self, n: u32) -> Self {
        self.clients = n;
        self
    }

    /// Lease-service shard count (default 1). Resources are partitioned
    /// by file-id hash; the protocol is per-datum, so any count preserves
    /// semantics.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Pre-creates a file (path must be absolute; directories are made).
    pub fn file(mut self, path: &str, data: impl Into<Bytes>) -> Self {
        self.files
            .push((path.to_owned(), data.into(), FileKind::Regular));
        self
    }

    /// Pre-creates an installed (read-mostly system) file.
    pub fn installed_file(mut self, path: &str, data: impl Into<Bytes>) -> Self {
        self.files
            .push((path.to_owned(), data.into(), FileKind::Installed));
        self
    }

    /// Enables the §4 installed-file multicast with (tick, term).
    pub fn installed_multicast(mut self, tick: Dur, term: Dur) -> Self {
        self.installed_tick = Some((tick, term));
        self
    }

    /// Installs a seeded chaos plan: shard kills, message drop / delay /
    /// duplication, cut windows, and skewed clocks, all replayed
    /// deterministically from the plan's seed.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Builds and starts every thread.
    pub fn start(self) -> RtSystem {
        // One true clock: history timestamps, chaos schedules and every
        // host's (possibly skewed) model clock all derive from it.
        let truth = WallClock::new();
        let recorder = Arc::new(Recorder::new(truth.clone()));
        if self.chaos.is_some() {
            silence_injected_kills();
        }

        let mut store = Store::new();
        let mut names = HashMap::new();
        let mut dirs: HashMap<String, u64> = HashMap::new();
        dirs.insert("/".to_string(), DirId::ROOT.0);
        let mut installed_resources = Vec::new();
        for (path, data, kind) in &self.files {
            let (dir_path, name) = match path.rfind('/') {
                Some(0) => ("/".to_string(), &path[1..]),
                Some(i) => (path[..i].to_string(), &path[i + 1..]),
                None => panic!("file path must be absolute: {path}"),
            };
            let dir = if dir_path == "/" {
                DirId::ROOT
            } else {
                store.mkdir_p(&dir_path).unwrap()
            };
            dirs.insert(dir_path.clone(), dir.0);
            let perms = if *kind == FileKind::Installed {
                Perms::rx()
            } else {
                Perms::rw()
            };
            let id = store
                .create_file(dir, name, *kind, perms, truth.now())
                .unwrap();
            store.write(id, data.clone(), truth.now()).unwrap();
            names.insert(path.clone(), id.0);
            if *kind == FileKind::Installed {
                installed_resources.push(id.0);
            }
        }

        // Per-client links first: the service's sink needs every one.
        // Ring-lane egress rides next to the channels — each client gets
        // an inbox whose doorbell is the one thing its thread parks on.
        let base_cfg = SvcConfig::default();
        let mailbox = self.mailbox.unwrap_or(base_cfg.mailbox);
        let egress: Egress<Res, Bytes> = Egress::new(self.clients as usize, mailbox);
        let mut links = Vec::new();
        let mut cuts = Vec::new();
        let mut net_rxs = Vec::new();
        for i in 0..self.clients as usize {
            let (net_tx, net_rx) = unbounded();
            let cut = Arc::new(AtomicBool::new(false));
            links.push(ClientLink {
                tx: net_tx,
                inbox: egress.inbox(i),
                cut: cut.clone(),
            });
            cuts.push(cut);
            net_rxs.push(net_rx);
        }

        // The sharded lease service, every shard sharing the one durable
        // backend (resources are partitioned, so writers never collide).
        let mut raw_backend = StoreBackend::new(store, truth.clone());
        raw_backend.recorder = Some(recorder.clone());
        let backend = Arc::new(Mutex::new(raw_backend));

        // Seed the oracle's commit timeline: every pre-created resource
        // already carries a version > 1 (create + write each bump it), so
        // without a synthetic commit the checker would flag the first read
        // as returning an unknown version.
        {
            let b = lock_backend(&backend);
            for r in names.values().chain(dirs.values()) {
                if let Some(v) = b.version(r) {
                    recorder.push(HistoryEvent::Commit {
                        resource: *r,
                        version: v,
                        writer: None,
                        at: recorder.now(),
                    });
                }
            }
        }

        let chaos_net = self.chaos.as_ref().map(|p| {
            Arc::new(ChaosNet::new(
                p.clone(),
                truth.clone(),
                self.clients as usize,
            ))
        });
        let server_clock: Arc<dyn Clock> =
            match self.chaos.as_ref().and_then(|p| p.server_clock.clone()) {
                Some(model) => Arc::new(ModelClock::new(truth.clone(), model)),
                None => Arc::new(truth.clone()),
            };
        let hooks = SvcHooks {
            persist_max_term: Some(Arc::new({
                let backend = backend.clone();
                move |d: Dur| {
                    lock_backend(&backend)
                        .store
                        .put_slot("max_lease_term", d.as_nanos().to_le_bytes().to_vec());
                }
            })),
            recover_max_term: Some(Arc::new({
                let backend = backend.clone();
                move || {
                    lock_backend(&backend)
                        .store
                        .get_slot("max_lease_term")
                        .and_then(|b| <[u8; 8]>::try_from(b).ok())
                        .map(|b| Dur(u64::from_le_bytes(b)))
                }
            })),
            on_restart: None,
            clock: Some(server_clock),
        };
        let shards = self.shards;
        let term = self.term;
        let installed_tick = self.installed_tick;
        let installed_group: Vec<ClientId> = (0..self.clients).map(ClientId).collect();
        let factory_backend = backend.clone();
        let overload = self.overload;
        let service = LeaseService::spawn(
            SvcConfig {
                shards,
                mailbox,
                admission: self.admission,
                slow_shard: self.chaos.as_ref().and_then(|p| p.slow_shard),
                ..base_cfg
            },
            Arc::new(RtSink {
                links,
                chaos: chaos_net.clone(),
                fence: None,
                egress: Some(egress.clone()),
                delay: DelayPool::new(),
            }),
            hooks,
            move |i| {
                let mut sc: ServerConfig<Res> = ServerConfig::fixed(term);
                // §5: a restarted server also refuses *grants* until the
                // recovery window passes, not just writes.
                sc.defer_grants_in_recovery = true;
                sc.overload = overload;
                let mine: Vec<Res> = installed_resources
                    .iter()
                    .copied()
                    .filter(|r| shard_of(r, shards) == i)
                    .collect();
                if let Some((tick, iterm)) = installed_tick {
                    if !mine.is_empty() {
                        sc.installed_tick = tick;
                        sc.installed_term = iterm;
                    }
                }
                let mut server: LeaseServer<Res, Bytes> = LeaseServer::new(sc);
                if installed_tick.is_some() {
                    for r in &mine {
                        server.add_installed(*r);
                    }
                    server.set_installed_group(installed_group.clone());
                }
                (
                    server,
                    Box::new(SharedBackend(factory_backend.clone()))
                        as Box<dyn Storage<Res, Bytes> + Send>,
                )
            },
        );
        let svc = service.handle();

        // The chaos driver replays the plan's shard kills at their
        // plan-relative instants on the true clock.
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        let mut chaos_stop = None;
        if let Some(plan) = &self.chaos {
            if !plan.kills.is_empty() {
                let mut kills = plan.kills.clone();
                kills.sort_by_key(|(at, _)| *at);
                let (stop_tx, stop_rx) = bounded::<()>(0);
                chaos_stop = Some(stop_tx);
                let svc = svc.clone();
                let truth = truth.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name("lease-chaos".into())
                        .spawn(move || {
                            for (at, shard) in kills {
                                let elapsed = truth.now().saturating_since(Time::ZERO);
                                let wait = std::time::Duration::from(at.saturating_sub(elapsed));
                                match stop_rx.recv_timeout(wait) {
                                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                        let _ = svc.kill_shard(shard);
                                    }
                                    _ => return, // Shutdown.
                                }
                            }
                        })
                        .expect("spawn chaos driver"),
                );
            }
        }

        // Client threads submit through the service handle. Each thread
        // gets its own port (and so its own handle clone — one SPSC lane
        // per shard): the handle is a per-producer object, not a shared
        // one.
        let port = ServerPort {
            svc: svc.clone(),
            cuts: Arc::new(cuts.clone()),
            chaos: chaos_net,
        };
        let mut client_handles = Vec::new();
        let mut client_cmd_txs: Vec<Sender<ClientCmd>> = Vec::new();
        for (i, net_rx) in net_rxs.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            let cache = LeaseClient::new(
                ClientId(i as u32),
                ClientConfig {
                    epsilon: self.epsilon,
                    retry_interval: self.retry_interval,
                    max_retries: self.max_retries,
                    backoff: self.backoff,
                    op_deadline: self.op_deadline,
                    batch_extensions: true,
                    anticipatory: None,
                    capacity: 0,
                    retry_budget: self.retry_budget,
                },
            );
            let client_clock: Arc<dyn Clock> =
                match self.chaos.as_ref().and_then(|p| p.client_clock(i)) {
                    Some(model) => Arc::new(ModelClock::new(truth.clone(), model)),
                    None => Arc::new(truth.clone()),
                };
            threads.push(spawn_client(
                cache,
                cmd_rx,
                net_rx,
                egress.rx(i),
                Box::new(port.clone()),
                client_clock,
                Some(recorder.clone()),
                self.backoff,
                self.op_deadline,
                self.breaker
                    .map_or_else(CircuitBreaker::disabled, |(t, c)| CircuitBreaker::new(t, c)),
            ));
            client_handles.push(RtClientHandle {
                tx: cmd_tx.clone(),
                inbox: egress.inbox(i),
            });
            client_cmd_txs.push(cmd_tx);
        }

        RtSystem {
            service: Some(service),
            svc,
            backend,
            recorder,
            client_handles,
            client_cmd_txs,
            cuts,
            names,
            dirs,
            threads,
            chaos_stop,
        }
    }
}

/// A running real-time lease system: N shard workers under the
/// `lease-svc` runtime, M client threads, and (optionally) a chaos driver
/// replaying a seeded fault plan.
pub struct RtSystem {
    service: Option<LeaseService<Res, Bytes>>,
    svc: SvcHandle<Res, Bytes>,
    backend: Arc<Mutex<StoreBackend>>,
    recorder: Arc<Recorder>,
    client_handles: Vec<RtClientHandle>,
    client_cmd_txs: Vec<Sender<ClientCmd>>,
    cuts: Vec<Arc<AtomicBool>>,
    names: HashMap<String, Res>,
    dirs: HashMap<String, Res>,
    threads: Vec<JoinHandle<()>>,
    chaos_stop: Option<Sender<()>>,
}

impl RtSystem {
    /// Starts building a system.
    pub fn builder() -> RtSystemBuilder {
        RtSystemBuilder {
            term: Dur::from_millis(500),
            epsilon: Dur::from_millis(10),
            retry_interval: Dur::from_millis(50),
            max_retries: 40,
            backoff: Backoff::default(),
            op_deadline: None,
            retry_budget: None,
            breaker: None,
            admission: None,
            overload: None,
            mailbox: None,
            clients: 1,
            shards: 1,
            files: Vec::new(),
            installed_tick: None,
            chaos: None,
        }
    }

    /// Resolves a pre-created path to its resource id.
    pub fn lookup(&self, path: &str) -> Option<Res> {
        self.names.get(path).copied()
    }

    /// Resolves a pre-created directory path to its (leasable) resource.
    pub fn dir(&self, path: &str) -> Option<Res> {
        self.dirs.get(path).copied()
    }

    /// Renames an entry within a directory: a write to the name binding,
    /// run through the full lease protocol (§2: "renaming the file would
    /// constitute a write").
    pub fn rename(&self, dir: Res, from: &str, to: &str) {
        let op = crate::naming::NameOp::Rename {
            from: from.into(),
            to: to.into(),
        };
        let _ = self.svc.local_write(dir, op.encode());
    }

    /// Removes a file entry from a directory (a name-binding write).
    pub fn unlink(&self, dir: Res, name: &str) {
        let op = crate::naming::NameOp::Unlink { name: name.into() };
        let _ = self.svc.local_write(dir, op.encode());
    }

    /// Creates an empty regular file in a directory (a name-binding write).
    pub fn create(&self, dir: Res, name: &str) {
        let op = crate::naming::NameOp::Create { name: name.into() };
        let _ = self.svc.local_write(dir, op.encode());
    }

    /// The handle for client `i`.
    pub fn client(&self, i: usize) -> RtClientHandle {
        self.client_handles[i].clone()
    }

    /// Cuts (or restores) all traffic to and from client `i` — the
    /// partition / crashed-client fault.
    pub fn set_cut(&self, i: usize, cut: bool) {
        self.cuts[i].store(cut, Ordering::Relaxed);
    }

    /// Kills shard `shard`'s worker (a supervised crash): it restarts
    /// through §5 MaxTerm recovery, refusing grants and deferring writes
    /// for the persisted maximum term.
    pub fn kill_shard(&self, shard: usize) {
        silence_injected_kills();
        let _ = self.svc.kill_shard(shard);
    }

    /// Performs an administrative write (installing a new version, §4).
    pub fn install(&self, resource: Res, data: impl Into<Bytes>) {
        let _ = self.svc.local_write(resource, data.into());
    }

    /// Server statistics snapshot, merged across shards. `None` when a
    /// shard is down or unresponsive.
    pub fn server_stats(&self) -> Option<ServerStats> {
        let stats = self.service.as_ref()?.stats().ok()?;
        Some(ServerStats {
            counters: stats.counters,
            writes_committed: lock_backend(&self.backend).store.writes_committed(),
            shard_restarts: stats.restarts,
        })
    }

    /// Everything the perfect observer saw so far: operation starts and
    /// completions from every client, commits from the store, all on one
    /// true-time axis. Feed it to `lease_faults::check_history`.
    pub fn history(&self) -> History {
        self.recorder.snapshot()
    }

    /// Stops every thread and waits for them.
    pub fn shutdown(mut self) {
        self.chaos_stop.take(); // Dropping it stops the chaos driver.
        for (tx, h) in self.client_cmd_txs.iter().zip(&self.client_handles) {
            let _ = tx.send(ClientCmd::Shutdown);
            h.inbox.bell().ring();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(service) = self.service.take() {
            service.shutdown();
        }
    }
}
