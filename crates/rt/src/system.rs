//! Assembling a real-time lease system on the `lease-svc` runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use lease_clock::{Clock, Dur, WallClock};
use lease_core::{ClientConfig, ClientId, LeaseClient, LeaseServer, ServerConfig, Storage};
use lease_store::{DirId, FileKind, Perms, Store};
use lease_svc::{shard_of, LeaseService, SvcConfig, SvcHandle, SvcHooks};

use crate::client::{spawn_client, ClientCmd, RtClientHandle};
use crate::server::{
    ClientLink, Res, RtSink, ServerPort, ServerStats, SharedBackend, StoreBackend,
};

/// Builder for an [`RtSystem`].
pub struct RtSystemBuilder {
    term: Dur,
    epsilon: Dur,
    retry_interval: Dur,
    max_retries: u32,
    clients: u32,
    shards: usize,
    files: Vec<(String, Bytes, FileKind)>,
    installed_tick: Option<(Dur, Dur)>,
}

impl RtSystemBuilder {
    /// The lease term the server grants.
    pub fn term(mut self, term: Dur) -> Self {
        self.term = term;
        self
    }

    /// The client's clock allowance ε.
    pub fn epsilon(mut self, epsilon: Dur) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Client retransmission interval.
    pub fn retry_interval(mut self, d: Dur) -> Self {
        self.retry_interval = d;
        self
    }

    /// Client retry budget.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Number of client caches.
    pub fn clients(mut self, n: u32) -> Self {
        self.clients = n;
        self
    }

    /// Lease-service shard count (default 1). Resources are partitioned
    /// by file-id hash; the protocol is per-datum, so any count preserves
    /// semantics.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Pre-creates a file (path must be absolute; directories are made).
    pub fn file(mut self, path: &str, data: impl Into<Bytes>) -> Self {
        self.files
            .push((path.to_owned(), data.into(), FileKind::Regular));
        self
    }

    /// Pre-creates an installed (read-mostly system) file.
    pub fn installed_file(mut self, path: &str, data: impl Into<Bytes>) -> Self {
        self.files
            .push((path.to_owned(), data.into(), FileKind::Installed));
        self
    }

    /// Enables the §4 installed-file multicast with (tick, term).
    pub fn installed_multicast(mut self, tick: Dur, term: Dur) -> Self {
        self.installed_tick = Some((tick, term));
        self
    }

    /// Builds and starts every thread.
    pub fn start(self) -> RtSystem {
        let clock = WallClock::new();
        let mut store = Store::new();
        let mut names = HashMap::new();
        let mut dirs: HashMap<String, u64> = HashMap::new();
        dirs.insert("/".to_string(), DirId::ROOT.0);
        let mut installed_resources = Vec::new();
        for (path, data, kind) in &self.files {
            let (dir_path, name) = match path.rfind('/') {
                Some(0) => ("/".to_string(), &path[1..]),
                Some(i) => (path[..i].to_string(), &path[i + 1..]),
                None => panic!("file path must be absolute: {path}"),
            };
            let dir = if dir_path == "/" {
                DirId::ROOT
            } else {
                store.mkdir_p(&dir_path).unwrap()
            };
            dirs.insert(dir_path.clone(), dir.0);
            let perms = if *kind == FileKind::Installed {
                Perms::rx()
            } else {
                Perms::rw()
            };
            let id = store
                .create_file(dir, name, *kind, perms, clock.now())
                .unwrap();
            store.write(id, data.clone(), clock.now()).unwrap();
            names.insert(path.clone(), id.0);
            if *kind == FileKind::Installed {
                installed_resources.push(id.0);
            }
        }

        // Per-client links first: the service's sink needs every one.
        let mut links = Vec::new();
        let mut cuts = Vec::new();
        let mut net_rxs = Vec::new();
        for _ in 0..self.clients {
            let (net_tx, net_rx) = unbounded();
            let cut = Arc::new(AtomicBool::new(false));
            links.push(ClientLink {
                tx: net_tx,
                cut: cut.clone(),
            });
            cuts.push(cut);
            net_rxs.push(net_rx);
        }

        // The sharded lease service, every shard sharing the one durable
        // backend (resources are partitioned, so writers never collide).
        let backend = Arc::new(Mutex::new(StoreBackend::new(store, clock.clone())));
        let hooks = SvcHooks {
            persist_max_term: Some(Arc::new({
                let backend = backend.clone();
                move |d: Dur| {
                    backend
                        .lock()
                        .unwrap()
                        .store
                        .put_slot("max_lease_term", d.as_nanos().to_le_bytes().to_vec());
                }
            })),
        };
        let shards = self.shards;
        let installed_group: Vec<ClientId> = (0..self.clients).map(ClientId).collect();
        let service = LeaseService::spawn(
            SvcConfig {
                shards,
                ..SvcConfig::default()
            },
            Arc::new(RtSink { links }),
            hooks,
            |i| {
                let mut sc: ServerConfig<Res> = ServerConfig::fixed(self.term);
                let mine: Vec<Res> = installed_resources
                    .iter()
                    .copied()
                    .filter(|r| shard_of(r, shards) == i)
                    .collect();
                if let Some((tick, term)) = self.installed_tick {
                    if !mine.is_empty() {
                        sc.installed_tick = tick;
                        sc.installed_term = term;
                    }
                }
                let mut server: LeaseServer<Res, Bytes> = LeaseServer::new(sc);
                if self.installed_tick.is_some() {
                    for r in &mine {
                        server.add_installed(*r);
                    }
                    server.set_installed_group(installed_group.clone());
                }
                (
                    server,
                    Box::new(SharedBackend(backend.clone())) as Box<dyn Storage<Res, Bytes> + Send>,
                )
            },
        );
        let svc = service.handle();

        // Client threads submit through the service handle.
        let port = ServerPort {
            svc: svc.clone(),
            cuts: Arc::new(cuts.clone()),
        };
        let mut client_handles = Vec::new();
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        let mut client_cmd_txs: Vec<Sender<ClientCmd>> = Vec::new();
        for (i, net_rx) in net_rxs.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            let cache = LeaseClient::new(
                ClientId(i as u32),
                ClientConfig {
                    epsilon: self.epsilon,
                    retry_interval: self.retry_interval,
                    max_retries: self.max_retries,
                    batch_extensions: true,
                    anticipatory: None,
                    capacity: 0,
                },
            );
            threads.push(spawn_client(
                cache,
                cmd_rx,
                net_rx,
                port.clone(),
                clock.clone(),
            ));
            client_handles.push(RtClientHandle { tx: cmd_tx.clone() });
            client_cmd_txs.push(cmd_tx);
        }

        RtSystem {
            service: Some(service),
            svc,
            backend,
            client_handles,
            client_cmd_txs,
            cuts,
            names,
            dirs,
            threads,
        }
    }
}

/// A running real-time lease system: N shard workers under the
/// `lease-svc` runtime, M client threads.
pub struct RtSystem {
    service: Option<LeaseService<Res, Bytes>>,
    svc: SvcHandle<Res, Bytes>,
    backend: Arc<Mutex<StoreBackend>>,
    client_handles: Vec<RtClientHandle>,
    client_cmd_txs: Vec<Sender<ClientCmd>>,
    cuts: Vec<Arc<AtomicBool>>,
    names: HashMap<String, Res>,
    dirs: HashMap<String, Res>,
    threads: Vec<JoinHandle<()>>,
}

impl RtSystem {
    /// Starts building a system.
    pub fn builder() -> RtSystemBuilder {
        RtSystemBuilder {
            term: Dur::from_millis(500),
            epsilon: Dur::from_millis(10),
            retry_interval: Dur::from_millis(50),
            max_retries: 40,
            clients: 1,
            shards: 1,
            files: Vec::new(),
            installed_tick: None,
        }
    }

    /// Resolves a pre-created path to its resource id.
    pub fn lookup(&self, path: &str) -> Option<Res> {
        self.names.get(path).copied()
    }

    /// Resolves a pre-created directory path to its (leasable) resource.
    pub fn dir(&self, path: &str) -> Option<Res> {
        self.dirs.get(path).copied()
    }

    /// Renames an entry within a directory: a write to the name binding,
    /// run through the full lease protocol (§2: "renaming the file would
    /// constitute a write").
    pub fn rename(&self, dir: Res, from: &str, to: &str) {
        let op = crate::naming::NameOp::Rename {
            from: from.into(),
            to: to.into(),
        };
        let _ = self.svc.local_write(dir, op.encode());
    }

    /// Removes a file entry from a directory (a name-binding write).
    pub fn unlink(&self, dir: Res, name: &str) {
        let op = crate::naming::NameOp::Unlink { name: name.into() };
        let _ = self.svc.local_write(dir, op.encode());
    }

    /// Creates an empty regular file in a directory (a name-binding write).
    pub fn create(&self, dir: Res, name: &str) {
        let op = crate::naming::NameOp::Create { name: name.into() };
        let _ = self.svc.local_write(dir, op.encode());
    }

    /// The handle for client `i`.
    pub fn client(&self, i: usize) -> RtClientHandle {
        self.client_handles[i].clone()
    }

    /// Cuts (or restores) all traffic to and from client `i` — the
    /// partition / crashed-client fault.
    pub fn set_cut(&self, i: usize, cut: bool) {
        self.cuts[i].store(cut, Ordering::Relaxed);
    }

    /// Performs an administrative write (installing a new version, §4).
    pub fn install(&self, resource: Res, data: impl Into<Bytes>) {
        let _ = self.svc.local_write(resource, data.into());
    }

    /// Server statistics snapshot, merged across shards.
    pub fn server_stats(&self) -> Option<ServerStats> {
        let stats = self.service.as_ref()?.stats()?;
        Some(ServerStats {
            counters: stats.counters,
            writes_committed: self.backend.lock().unwrap().store.writes_committed(),
        })
    }

    /// Stops every thread and waits for them.
    pub fn shutdown(mut self) {
        for tx in &self.client_cmd_txs {
            let _ = tx.send(ClientCmd::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(service) = self.service.take() {
            service.shutdown();
        }
    }
}
