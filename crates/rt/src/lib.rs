#![warn(missing_docs)]

//! Real-time deployment of the lease protocol.
//!
//! The state machines in `lease-core` are sans-IO, so the same code that
//! runs under the deterministic simulator runs here under wall clocks: the
//! server side runs on the sharded `lease-svc` runtime (the lease table
//! partitioned by file-id hash across worker threads, expirations driven
//! by its timer wheel), each client cache is an OS thread, the "network"
//! is a pair of crossbeam channels per host, and the primary copies live
//! in a real `lease-store` file store shared by every shard.
//!
//! This is the deployment a downstream user would embed: short leases over
//! real time, write-through to a durable store, approval callbacks between
//! live threads, and fault injection (drop a client's traffic) to watch a
//! write stall for exactly one lease term and then proceed.
//!
//! # Examples
//!
//! ```
//! use bytes::Bytes;
//! use lease_clock::Dur;
//! use lease_rt::RtSystem;
//!
//! let mut sys = RtSystem::builder()
//!     .term(Dur::from_millis(200))
//!     .file("/etc/motd", b"hello".as_ref())
//!     .clients(2)
//!     .start();
//! let motd = sys.lookup("/etc/motd").unwrap();
//! let c0 = sys.client(0);
//! assert_eq!(c0.read(motd).unwrap(), Bytes::from_static(b"hello"));
//! // A second read inside the term is served from the local cache.
//! assert_eq!(c0.read(motd).unwrap(), Bytes::from_static(b"hello"));
//! sys.shutdown();
//! ```

pub mod breaker;
pub mod client;
pub mod naming;
pub mod net;
pub mod record;
pub mod replicated;
pub mod server;
pub mod system;

pub use breaker::CircuitBreaker;
pub use client::{RtClientHandle, RtError};
pub use lease_quorum::QuorumConfig;
pub use lease_svc::chaos::FaultPlan;
pub use naming::{Binding, NameOp};
pub use net::{NetClient, NetClientConfig, TcpPort};
pub use record::Recorder;
pub use replicated::{ReplicatedSystem, ReplicatedSystemBuilder};
pub use server::{Port, PortVerdict, ServerStats, RETRY_AFTER};
pub use system::{RtSystem, RtSystemBuilder};
