//! The replicated deployment: N grantor replicas instead of *the* server.
//!
//! The paper's single lease server is the availability ceiling of the
//! whole design — §5 rides out every fault by waiting for it to come
//! back. This topology removes the ceiling: each replica runs its own
//! sharded lease service over the one durable store, a `lease-quorum`
//! grantor election decides which replica may grant, and clients fail
//! over to whichever replica currently holds the grantor lease.
//!
//! The safety chain, layer by layer:
//!
//! * **Ingress fencing** — [`ReplicaPort`](self) submits a client message
//!   only to a replica whose [`GrantorGate`] is open, rotating through
//!   the candidates at most once per submission. With no grantor visible
//!   the message is dropped and the client's retransmission backoff
//!   provides the retry schedule (failover is *free*: the next
//!   retransmission simply lands on the new grantor).
//! * **Egress fencing** — each replica's sink drops every reply while its
//!   gate is closed, so a grantor whose lease lapsed mid-batch cannot
//!   leak grants or write approvals (see `RtFence` in the server module).
//! * **Commit fencing** — the storage each service writes through is
//!   gated too: a stale grantor's deferred write is refused at the store,
//!   not just silenced on the wire.
//! * **Takeover recovery** — a *fresh* grantor acquisition (not a
//!   renewal) crash-restarts the new grantor's own service shards, which
//!   re-enter §5 MaxTerm recovery: grants are deferred and writes held
//!   until every lease the previous grantor could have granted has
//!   expired, and the epoch bump fences that incarnation's write-approval
//!   ids — the exact machinery single-server restart already uses, reused
//!   for succession.
//!
//! Lease state is never replicated or persisted: the old grantor's grants
//! die by expiry, exactly as §5 argues for crash recovery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Sender};
use lease_clock::{Clock, Dur, ModelClock, Time, WallClock};
use lease_core::{
    Backoff, ClientConfig, ClientId, LeaseClient, LeaseServer, ServerConfig, Storage, ToServer,
    Version,
};
use lease_quorum::{GrantorGate, KillHandle, QuorumConfig, QuorumHooks, QuorumRuntime};
use lease_store::{DirId, FileKind, Perms, Store};
use lease_svc::{
    chaos::silence_injected_kills, chaos::Delivery, Egress, FaultPlan, LeaseService, SvcConfig,
    SvcError, SvcHandle, SvcHooks,
};
use lease_vsys::{History, HistoryEvent};

use crate::breaker::CircuitBreaker;
use crate::client::{spawn_client, ClientCmd, RtClientHandle};
use crate::record::Recorder;
use crate::server::{
    lock_backend, ChaosNet, ClientLink, DelayPool, Port, PortVerdict, Res, RtFence, RtSink,
    SharedBackend, StoreBackend,
};

/// The service registry the takeover hook reads: one handle slot per
/// replica, filled once the services spawn.
type ServiceSlots = Arc<Mutex<Vec<Option<SvcHandle<Res, Bytes>>>>>;

/// Storage wrapper that refuses commits while the replica's gate is
/// closed: a stale grantor's deferred write must not mutate the shared
/// store after its lease lapsed. A refused write returns the current
/// version; the reply built from it is dropped by the egress fence
/// anyway, so the client retries against the live grantor.
struct GatedBackend {
    inner: SharedBackend,
    gate: Arc<GrantorGate>,
}

impl Storage<Res, Bytes> for GatedBackend {
    fn read(&self, resource: &Res) -> Option<(Bytes, Version)> {
        self.inner.read(resource)
    }

    fn version(&self, resource: &Res) -> Option<Version> {
        self.inner.version(resource)
    }

    fn write(&mut self, resource: &Res, data: Bytes) -> Version {
        if self.gate.is_open() {
            self.inner.write(resource, data)
        } else {
            self.inner.version(resource).unwrap_or(Version(0))
        }
    }
}

/// One replica as the failover port sees it.
///
/// The handle sits behind a mutex because the failover routing core is
/// *shared* state — the current-grantor hint is a property of the whole
/// cluster, and chaos-delay threads re-resolve it at delivery time — so
/// it cannot hold per-producer ring lanes the way the single-server
/// port does. A lock per submission is the pre-ring ingress cost; the
/// replicated topology is the fault-tolerance subsystem, not the
/// throughput path, and keeps it.
struct ReplicaTarget {
    svc: Mutex<SvcHandle<Res, Bytes>>,
    gate: Arc<GrantorGate>,
}

/// The routing core of the failover port, shared with chaos-delay threads.
struct PortState {
    replicas: Vec<ReplicaTarget>,
    /// The last replica that accepted traffic. Shared across clients:
    /// grantorship is a property of the cluster, not of one cache.
    current: AtomicUsize,
    chaos: Option<Arc<ChaosNet>>,
}

impl PortState {
    /// Routes one message to the first willing replica, starting from the
    /// last success; at most one full rotation.
    fn route(
        &self,
        from: ClientId,
        msg: ToServer<Res, Bytes>,
        deadline: Option<Time>,
    ) -> PortVerdict {
        let n = self.replicas.len();
        let start = self.current.load(Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % n;
            let r = &self.replicas[i];
            // A closed gate is a refusal (not the grantor); a cut replica
            // is unreachable; a dead shard fails the send. All three move
            // on to the next candidate.
            if !r.gate.is_open() {
                continue;
            }
            if self.chaos.as_ref().is_some_and(|c| c.replica_cut(i)) {
                continue;
            }
            match r
                .svc
                .lock()
                .unwrap()
                .try_send_at(from, msg.clone(), deadline)
            {
                Ok(()) => {
                    self.current.store(i, Ordering::Relaxed);
                    return PortVerdict::Sent;
                }
                Err(SvcError::Backpressure) => {
                    self.current.store(i, Ordering::Relaxed);
                    return PortVerdict::RetryAfter(msg);
                }
                Err(_) => continue,
            }
        }
        PortVerdict::Dropped
    }
}

/// The client-side failover port of the replicated topology. Cloned
/// per client thread (both fields are shared `Arc`s — the routing core
/// really is cluster-wide state).
#[derive(Clone)]
pub(crate) struct ReplicaPort {
    state: Arc<PortState>,
    cuts: Arc<Vec<Arc<AtomicBool>>>,
}

impl Port for ReplicaPort {
    fn send(
        &self,
        from: ClientId,
        msg: ToServer<Res, Bytes>,
        deadline: Option<Time>,
    ) -> PortVerdict {
        if self.cuts[from.0 as usize].load(Ordering::Relaxed) {
            return PortVerdict::Dropped;
        }
        if let Some(chaos) = &self.state.chaos {
            if chaos.cut(from.0 as usize) {
                return PortVerdict::Dropped;
            }
            // The uplink dice roll once per submission, not per candidate:
            // the fault lives on the client's link, not on the rotation.
            match chaos.c2s(from.0 as usize) {
                Delivery::Drop => return PortVerdict::Dropped,
                Delivery::Deliver { delay, copies } => {
                    if !delay.is_zero() || copies != 1 {
                        // Late (or duplicated) submissions re-resolve the
                        // grantor at delivery time, off the client thread.
                        let state = Arc::clone(&self.state);
                        std::thread::spawn(move || {
                            std::thread::sleep(std::time::Duration::from(delay));
                            for _ in 0..copies {
                                let _ = state.route(from, msg.clone(), deadline);
                            }
                        });
                        return PortVerdict::Sent;
                    }
                }
            }
        }
        self.state.route(from, msg, deadline)
    }
}

/// Builder for a [`ReplicatedSystem`].
pub struct ReplicatedSystemBuilder {
    term: Dur,
    epsilon: Dur,
    retry_interval: Dur,
    max_retries: u32,
    backoff: Backoff,
    op_deadline: Option<Dur>,
    clients: u32,
    shards: usize,
    quorum: QuorumConfig,
    files: Vec<(String, Bytes)>,
    chaos: Option<FaultPlan>,
}

impl ReplicatedSystemBuilder {
    /// The file-lease term every replica's service grants.
    pub fn term(mut self, term: Dur) -> Self {
        self.term = term;
        self
    }

    /// The client's clock allowance ε.
    pub fn epsilon(mut self, epsilon: Dur) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Client retransmission interval (the backoff base) — also the
    /// failover probe cadence while no grantor is reachable.
    pub fn retry_interval(mut self, d: Dur) -> Self {
        self.retry_interval = d;
        self
    }

    /// Client retry budget.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Retransmission backoff policy.
    pub fn backoff(mut self, b: Backoff) -> Self {
        self.backoff = b;
        self
    }

    /// Per-operation deadline.
    pub fn op_deadline(mut self, d: Dur) -> Self {
        self.op_deadline = Some(d);
        self
    }

    /// Number of client caches.
    pub fn clients(mut self, n: u32) -> Self {
        self.clients = n;
        self
    }

    /// Lease-service shard count *per replica* (default 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// The grantor-quorum tuning; `quorum.replicas` is the replica count.
    pub fn quorum(mut self, q: QuorumConfig) -> Self {
        self.quorum = q;
        self
    }

    /// Pre-creates a file (path must be absolute; directories are made).
    pub fn file(mut self, path: &str, data: impl Into<Bytes>) -> Self {
        self.files.push((path.to_owned(), data.into()));
        self
    }

    /// Installs a seeded chaos plan. Replica-level faults (`kill_replica`,
    /// `cut_replica`, `with_replica_clock`) apply to grantor replicas and
    /// their services; client-level faults behave as in the single-server
    /// topology.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Builds and starts every thread: the quorum, one service per
    /// replica, the clients, and (if chaos is configured) the fault
    /// driver.
    pub fn start(self) -> ReplicatedSystem {
        let truth = WallClock::new();
        let recorder = Arc::new(Recorder::new(truth.clone()));
        // Takeovers crash-restart shards as a matter of course here, so
        // the injected-kill panics are always silenced.
        silence_injected_kills();
        let replicas = self.quorum.replicas as usize;
        let plan = self.chaos.clone().unwrap_or_else(|| FaultPlan::new(0));

        // The one durable store, pre-populated.
        let mut store = Store::new();
        let mut names = HashMap::new();
        let mut dirs: HashMap<String, u64> = HashMap::new();
        dirs.insert("/".to_string(), DirId::ROOT.0);
        for (path, data) in &self.files {
            let (dir_path, name) = match path.rfind('/') {
                Some(0) => ("/".to_string(), &path[1..]),
                Some(i) => (path[..i].to_string(), &path[i + 1..]),
                None => panic!("file path must be absolute: {path}"),
            };
            let dir = if dir_path == "/" {
                DirId::ROOT
            } else {
                store.mkdir_p(&dir_path).unwrap()
            };
            dirs.insert(dir_path.clone(), dir.0);
            let id = store
                .create_file(dir, name, FileKind::Regular, Perms::rw(), truth.now())
                .unwrap();
            store.write(id, data.clone(), truth.now()).unwrap();
            names.insert(path.clone(), id.0);
        }
        let mut raw_backend = StoreBackend::new(store, truth.clone());
        raw_backend.recorder = Some(recorder.clone());
        let backend = Arc::new(Mutex::new(raw_backend));
        {
            // Seed the oracle's commit timeline (see RtSystemBuilder).
            let b = lock_backend(&backend);
            for r in names.values().chain(dirs.values()) {
                if let Some(v) = b.version(r) {
                    recorder.push(HistoryEvent::Commit {
                        resource: *r,
                        version: v,
                        writer: None,
                        at: recorder.now(),
                    });
                }
            }
        }

        // Per-client inbound channels, shared by every replica's sink.
        // Data stays on the channels here (replies must pass the fence's
        // per-message gate recheck); the egress registry exists only so
        // each client thread has the one doorbell it parks on.
        let egress: Egress<Res, Bytes> =
            Egress::new(self.clients as usize, SvcConfig::default().mailbox);
        let mut link_protos = Vec::new();
        let mut cuts = Vec::new();
        let mut net_rxs = Vec::new();
        for _ in 0..self.clients {
            let (net_tx, net_rx) = unbounded();
            let cut = Arc::new(AtomicBool::new(false));
            link_protos.push((net_tx, cut.clone()));
            cuts.push(cut);
            net_rxs.push(net_rx);
        }
        let chaos_net = self.chaos.as_ref().map(|p| {
            Arc::new(ChaosNet::new(
                p.clone(),
                truth.clone(),
                self.clients as usize,
            ))
        });

        // The quorum spawns first (services need its gates). Its takeover
        // hook reads the service registry, filled in below; an acquisition
        // racing the fill is harmless — a service that has not started yet
        // has no stale lease state to recover from.
        let services: ServiceSlots = Arc::new(Mutex::new(vec![None; replicas]));
        let shards = self.shards;
        let on_acquire = {
            let services = Arc::clone(&services);
            Arc::new(move |replica: u32, fresh: bool| {
                if !fresh {
                    return;
                }
                // A fresh grantor session cannot trust any file-lease
                // state its service accumulated earlier — and knows
                // nothing of what the previous grantor granted. Crash-
                // restart every shard so it re-enters §5 MaxTerm recovery:
                // grants deferred, writes held, epoch bumped (stale
                // write-approval ids fenced).
                let svc = services.lock().unwrap()[replica as usize].clone();
                if let Some(svc) = svc {
                    for s in 0..shards {
                        let _ = svc.kill_shard(s);
                    }
                }
            })
        };
        let observer = {
            let rec = recorder.clone();
            Arc::new(move |e: HistoryEvent| rec.push(e))
        };
        let quorum = QuorumRuntime::spawn(
            self.quorum.clone(),
            plan.clone(),
            Arc::new(truth.clone()),
            QuorumHooks {
                on_acquire: Some(on_acquire),
                observer: Some(observer),
            },
        );
        let kill = quorum.kill_handle();

        // One sharded lease service per replica, on the replica's own
        // (possibly skewed) clock, writing through its gated view of the
        // shared store.
        let mut service_objs = Vec::with_capacity(replicas);
        let mut service_handles = Vec::with_capacity(replicas);
        for r in 0..replicas {
            let gate = quorum.gate(r);
            let replica_clock: Arc<dyn Clock> = match plan.replica_clock(r) {
                Some(model) => Arc::new(ModelClock::new(truth.clone(), model)),
                None => Arc::new(truth.clone()),
            };
            let hooks = SvcHooks {
                persist_max_term: Some(Arc::new({
                    let backend = backend.clone();
                    move |d: Dur| {
                        lock_backend(&backend)
                            .store
                            .put_slot("max_lease_term", d.as_nanos().to_le_bytes().to_vec());
                    }
                })),
                recover_max_term: Some(Arc::new({
                    let backend = backend.clone();
                    move || {
                        lock_backend(&backend)
                            .store
                            .get_slot("max_lease_term")
                            .and_then(|b| <[u8; 8]>::try_from(b).ok())
                            .map(|b| Dur(u64::from_le_bytes(b)))
                    }
                })),
                on_restart: None,
                clock: Some(replica_clock),
            };
            let links: Vec<ClientLink> = link_protos
                .iter()
                .enumerate()
                .map(|(i, (tx, cut))| ClientLink {
                    tx: tx.clone(),
                    inbox: egress.inbox(i),
                    cut: cut.clone(),
                })
                .collect();
            let sink = Arc::new(RtSink {
                links,
                chaos: chaos_net.clone(),
                fence: Some(RtFence {
                    replica: r,
                    gate: Arc::clone(&gate),
                }),
                // The fence declines ring egress; leave the registry out.
                egress: None,
                delay: DelayPool::new(),
            });
            let term = self.term;
            let factory_backend = backend.clone();
            let factory_gate = Arc::clone(&gate);
            let service = LeaseService::spawn(
                SvcConfig {
                    shards,
                    ..SvcConfig::default()
                },
                sink,
                hooks,
                move |_| {
                    let mut sc: ServerConfig<Res> = ServerConfig::fixed(term);
                    sc.defer_grants_in_recovery = true;
                    let server: LeaseServer<Res, Bytes> = LeaseServer::new(sc);
                    (
                        server,
                        Box::new(GatedBackend {
                            inner: SharedBackend(factory_backend.clone()),
                            gate: Arc::clone(&factory_gate),
                        }) as Box<dyn Storage<Res, Bytes> + Send>,
                    )
                },
            );
            service_handles.push(service.handle());
            service_objs.push(service);
        }
        *services.lock().unwrap() = service_handles.iter().cloned().map(Some).collect();

        // The chaos driver replays replica kills: quorum node and service
        // shards die together — a replica kill is a whole-host crash.
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        let mut chaos_stop = None;
        if !plan.replica_kills.is_empty() {
            let mut kills = plan.replica_kills.clone();
            kills.sort_by_key(|(at, _)| *at);
            let (stop_tx, stop_rx) = bounded::<()>(0);
            chaos_stop = Some(stop_tx);
            let kill = kill.clone();
            let handles = service_handles.clone();
            let truth2 = truth.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("lease-replica-chaos".into())
                    .spawn(move || {
                        for (at, replica) in kills {
                            let elapsed = truth2.now().saturating_since(Time::ZERO);
                            let wait = std::time::Duration::from(at.saturating_sub(elapsed));
                            match stop_rx.recv_timeout(wait) {
                                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                    if replica < handles.len() {
                                        kill.kill(replica);
                                        for s in 0..shards {
                                            let _ = handles[replica].kill_shard(s);
                                        }
                                    }
                                }
                                _ => return, // Shutdown.
                            }
                        }
                    })
                    .expect("spawn replica chaos driver"),
            );
        }

        // Clients, submitting through the failover port.
        let port = ReplicaPort {
            state: Arc::new(PortState {
                replicas: service_handles
                    .iter()
                    .enumerate()
                    .map(|(r, svc)| ReplicaTarget {
                        svc: Mutex::new(svc.clone()),
                        gate: quorum.gate(r),
                    })
                    .collect(),
                current: AtomicUsize::new(0),
                chaos: chaos_net,
            }),
            cuts: Arc::new(cuts.clone()),
        };
        let mut client_handles = Vec::new();
        let mut client_cmd_txs: Vec<Sender<ClientCmd>> = Vec::new();
        for (i, net_rx) in net_rxs.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            let cache = LeaseClient::new(
                ClientId(i as u32),
                ClientConfig {
                    epsilon: self.epsilon,
                    retry_interval: self.retry_interval,
                    max_retries: self.max_retries,
                    backoff: self.backoff,
                    op_deadline: self.op_deadline,
                    batch_extensions: true,
                    anticipatory: None,
                    capacity: 0,
                    retry_budget: None,
                },
            );
            let client_clock: Arc<dyn Clock> =
                match self.chaos.as_ref().and_then(|p| p.client_clock(i)) {
                    Some(model) => Arc::new(ModelClock::new(truth.clone(), model)),
                    None => Arc::new(truth.clone()),
                };
            threads.push(spawn_client(
                cache,
                cmd_rx,
                net_rx,
                egress.rx(i),
                Box::new(port.clone()),
                client_clock,
                Some(recorder.clone()),
                self.backoff,
                self.op_deadline,
                CircuitBreaker::disabled(),
            ));
            client_handles.push(RtClientHandle {
                tx: cmd_tx.clone(),
                inbox: egress.inbox(i),
            });
            client_cmd_txs.push(cmd_tx);
        }

        ReplicatedSystem {
            services: service_objs,
            service_handles,
            quorum: Some(quorum),
            kill,
            shards,
            recorder,
            client_handles,
            client_cmd_txs,
            cuts,
            names,
            dirs,
            threads,
            chaos_stop,
        }
    }
}

/// A running replicated lease system: a grantor quorum, one sharded lease
/// service per replica over a shared durable store, and client caches
/// that fail over to the current grantor.
pub struct ReplicatedSystem {
    services: Vec<LeaseService<Res, Bytes>>,
    service_handles: Vec<SvcHandle<Res, Bytes>>,
    quorum: Option<QuorumRuntime>,
    kill: KillHandle,
    shards: usize,
    recorder: Arc<Recorder>,
    client_handles: Vec<RtClientHandle>,
    client_cmd_txs: Vec<Sender<ClientCmd>>,
    cuts: Vec<Arc<AtomicBool>>,
    names: HashMap<String, Res>,
    dirs: HashMap<String, Res>,
    threads: Vec<JoinHandle<()>>,
    chaos_stop: Option<Sender<()>>,
}

impl ReplicatedSystem {
    /// Starts building a system (3 replicas by default).
    pub fn builder() -> ReplicatedSystemBuilder {
        ReplicatedSystemBuilder {
            term: Dur::from_millis(500),
            epsilon: Dur::from_millis(10),
            retry_interval: Dur::from_millis(50),
            max_retries: 40,
            backoff: Backoff::default(),
            op_deadline: None,
            clients: 1,
            shards: 1,
            quorum: QuorumConfig::default(),
            files: Vec::new(),
            chaos: None,
        }
    }

    /// Resolves a pre-created path to its resource id.
    pub fn lookup(&self, path: &str) -> Option<Res> {
        self.names.get(path).copied()
    }

    /// Resolves a pre-created directory path to its (leasable) resource.
    pub fn dir(&self, path: &str) -> Option<Res> {
        self.dirs.get(path).copied()
    }

    /// The handle for client `i`.
    pub fn client(&self, i: usize) -> RtClientHandle {
        self.client_handles[i].clone()
    }

    /// Number of grantor replicas.
    pub fn replicas(&self) -> usize {
        self.service_handles.len()
    }

    /// The replica currently claiming grantorship, if any is visible.
    pub fn current_grantor(&self) -> Option<usize> {
        self.quorum
            .as_ref()
            .and_then(|q| q.current_grantor())
            .map(|(r, _)| r as usize)
    }

    /// Cuts (or restores) all traffic to and from client `i`.
    pub fn set_cut(&self, i: usize, cut: bool) {
        self.cuts[i].store(cut, Ordering::Relaxed);
    }

    /// Crash-restarts replica `i` — its grantor node (volatile state
    /// lost, MaxTerm silence) and every service shard it fronts, together,
    /// as one host failure.
    pub fn kill_replica(&self, i: usize) {
        self.kill.kill(i);
        for s in 0..self.shards {
            let _ = self.service_handles[i].kill_shard(s);
        }
    }

    /// Everything the perfect observer saw: client operations, store
    /// commits, and grantor claims, on one true-time axis. Feed it to
    /// `lease_faults::check_history`.
    pub fn history(&self) -> History {
        self.recorder.snapshot()
    }

    /// Stops every thread and waits for them.
    pub fn shutdown(mut self) {
        self.chaos_stop.take(); // Dropping it stops the chaos driver.
        for (tx, h) in self.client_cmd_txs.iter().zip(&self.client_handles) {
            let _ = tx.send(ClientCmd::Shutdown);
            h.inbox.bell().ring();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(q) = self.quorum.take() {
            q.shutdown();
        }
        for s in self.services.drain(..) {
            s.shutdown();
        }
    }
}
