//! A half-open circuit breaker for a client's path to the server.
//!
//! Retry budgets bound how much *extra* load one client adds under
//! failure; the breaker bounds how long a client keeps probing a target
//! that is refusing everything. After `threshold` consecutive failures
//! (backpressure verdicts and observed `Shed` replies) the circuit opens:
//! submissions are dropped locally — costing the server nothing — until
//! `cooldown` elapses, at which point exactly one probe is let through.
//! A successful probe closes the circuit; a failed one re-opens it for
//! another cooldown.
//!
//! Dropping a submission is always safe in this protocol: every request
//! is driven by the sans-IO client's retransmission schedule, so a
//! locally-dropped send is indistinguishable from a lost message and the
//! next retry (or the op deadline) resolves it.

use lease_clock::{Dur, Time};

/// Breaker state: closed (normal), open (refusing), or half-open (one
/// probe in flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { until: Time },
    HalfOpen,
}

/// A consecutive-failure circuit breaker (see the module docs).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    /// Consecutive failures that trip the circuit; `0` disables the
    /// breaker entirely (every submission is allowed).
    threshold: u32,
    /// How long the circuit stays open before the half-open probe.
    cooldown: Dur,
    consec: u32,
    state: State,
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures and
    /// cooling down for `cooldown`. `threshold == 0` disables it.
    pub fn new(threshold: u32, cooldown: Dur) -> CircuitBreaker {
        CircuitBreaker {
            threshold,
            cooldown,
            consec: 0,
            state: State::Closed,
        }
    }

    /// A breaker that never trips.
    pub fn disabled() -> CircuitBreaker {
        CircuitBreaker::new(0, Dur::ZERO)
    }

    /// Whether a submission may go out now. In the open state this flips
    /// to half-open once the cooldown elapses, admitting exactly one
    /// probe until its outcome is reported.
    pub fn allow(&mut self, now: Time) -> bool {
        if self.threshold == 0 {
            return true;
        }
        match self.state {
            State::Closed => true,
            State::Open { until } => {
                if now >= until {
                    self.state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
            State::HalfOpen => false,
        }
    }

    /// Reports a successful submission: the circuit closes.
    pub fn on_success(&mut self) {
        self.consec = 0;
        self.state = State::Closed;
    }

    /// Reports a failed submission or an observed overload signal
    /// (backpressure, `Shed`): in the closed state this counts toward the
    /// threshold; a failed half-open probe re-opens immediately.
    pub fn on_failure(&mut self, now: Time) {
        if self.threshold == 0 {
            return;
        }
        match self.state {
            State::Closed => {
                self.consec += 1;
                if self.consec >= self.threshold {
                    self.state = State::Open {
                        until: now + self.cooldown,
                    };
                }
            }
            State::HalfOpen => {
                self.state = State::Open {
                    until: now + self.cooldown,
                };
            }
            State::Open { .. } => {}
        }
    }

    /// Whether the circuit is currently refusing submissions outright
    /// (open and still cooling down).
    pub fn is_open(&self, now: Time) -> bool {
        matches!(self.state, State::Open { until } if now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_probes_after_cooldown() {
        let mut b = CircuitBreaker::new(3, Dur::from_millis(100));
        let t0 = Time::ZERO;
        assert!(b.allow(t0));
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.allow(t0), "below threshold stays closed");
        b.on_failure(t0);
        assert!(!b.allow(t0), "third consecutive failure trips it");
        assert!(b.is_open(t0));
        assert!(!b.allow(t0 + Dur::from_millis(99)), "still cooling down");
        // Cooldown over: exactly one probe goes through.
        let t1 = t0 + Dur::from_millis(100);
        assert!(b.allow(t1), "half-open admits the probe");
        assert!(!b.allow(t1), "but only one");
        // A failed probe re-opens for another full cooldown.
        b.on_failure(t1);
        assert!(!b.allow(t1 + Dur::from_millis(99)));
        let t2 = t1 + Dur::from_millis(100);
        assert!(b.allow(t2));
        b.on_success();
        assert!(b.allow(t2), "a successful probe closes the circuit");
        // Closed again: the consecutive count restarted from zero.
        b.on_failure(t2);
        b.on_failure(t2);
        assert!(b.allow(t2));
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = CircuitBreaker::disabled();
        for _ in 0..1000 {
            b.on_failure(Time::ZERO);
            assert!(b.allow(Time::ZERO));
        }
        assert!(!b.is_open(Time::ZERO));
    }
}
