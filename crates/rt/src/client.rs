//! The client-cache thread and its application-facing handle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use lease_clock::{Clock, Time};
use lease_core::{
    ClientCounters, ClientId, ClientInput, ClientOutput, ClientTimer, LeaseClient, Op, OpError,
    OpId, OpOutcome, ToClient, ToServer, Version,
};
use lease_vsys::HistoryEvent;

use crate::record::Recorder;
use crate::server::{Port, PortVerdict, Res, RETRY_AFTER};

/// An error from a real-time cache operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtError {
    /// The resource does not exist at the server.
    NoSuchResource,
    /// The server was unreachable until the retry budget (or the per-op
    /// deadline) ran out. For a write, the outcome is unknown.
    Timeout,
    /// The system has shut down.
    Closed,
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::NoSuchResource => write!(f, "no such resource"),
            RtError::Timeout => write!(f, "timed out"),
            RtError::Closed => write!(f, "system closed"),
        }
    }
}

impl std::error::Error for RtError {}

type OpReply = Result<(Bytes, Version, bool), RtError>;

pub(crate) enum ClientCmd {
    Read(Res, Sender<OpReply>),
    Write(Res, Bytes, Sender<OpReply>),
    Stats(Sender<ClientCounters>),
    Shutdown,
}

/// The application-facing handle to one client cache.
///
/// Cloneable and cheap; operations block the calling thread until the
/// cache completes them (immediately on a cache hit).
#[derive(Clone)]
pub struct RtClientHandle {
    pub(crate) tx: Sender<ClientCmd>,
}

impl RtClientHandle {
    /// Reads a file through the cache.
    pub fn read(&self, resource: Res) -> Result<Bytes, RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Read(resource, tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv()
            .map_err(|_| RtError::Closed)?
            .map(|(data, _, _)| data)
    }

    /// Reads and also reports the version and whether the cache served it.
    pub fn read_detailed(&self, resource: Res) -> Result<(Bytes, Version, bool), RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Read(resource, tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv().map_err(|_| RtError::Closed)?
    }

    /// Write-through write; returns the committed version.
    pub fn write(&self, resource: Res, data: impl Into<Bytes>) -> Result<Version, RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Write(resource, data.into(), tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv().map_err(|_| RtError::Closed)?.map(|(_, v, _)| v)
    }

    /// Opens `name` in a leased directory: reads the directory's bindings
    /// (a cache hit on repeated opens, §2) and resolves the name. Returns
    /// `Ok(None)` when the name is not bound.
    pub fn open(&self, dir: Res, name: &str) -> Result<Option<Res>, RtError> {
        let listing = self.read(dir)?;
        Ok(crate::naming::parse_listing(&listing)
            .into_iter()
            .find(|b| b.name == name)
            .map(|b| b.id))
    }

    /// Snapshot of the cache's counters.
    pub fn stats(&self) -> Result<ClientCounters, RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Stats(tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv().map_err(|_| RtError::Closed)
    }
}

/// Timer-key encoding: timers live in one heap keyed by u64.
fn key(t: ClientTimer) -> u64 {
    match t {
        ClientTimer::Renewal => 1u64,
        ClientTimer::Retry(r) => r.0 + 2,
    }
}

fn timer_of(k: u64) -> ClientTimer {
    if k == 1 {
        ClientTimer::Renewal
    } else {
        ClientTimer::Retry(lease_core::ReqId(k - 2))
    }
}

/// What the worker remembers about an operation in flight, so the reply
/// can be routed and the completion recorded.
struct Waiting {
    reply: Sender<OpReply>,
    resource: Res,
    is_write: bool,
}

/// One client cache's event loop state.
struct Worker {
    id: ClientId,
    cache: LeaseClient<Res, Bytes>,
    port: Arc<dyn Port>,
    /// This host's clock — possibly a skewed chaos model.
    clock: Arc<dyn Clock>,
    /// The perfect observer (true time), if history is being recorded.
    recorder: Option<Arc<Recorder>>,
    timers: BinaryHeap<Reverse<(Time, u64)>>,
    live_timers: HashMap<u64, Time>,
    waiting: HashMap<OpId, Waiting>,
    /// Messages the service refused under backpressure, with the true
    /// time at which to resubmit them.
    resend: VecDeque<(Time, ToServer<Res, Bytes>)>,
    next_op: u64,
}

impl Worker {
    fn record(&self, ev: HistoryEvent) {
        if let Some(rec) = &self.recorder {
            rec.push(ev);
        }
    }

    /// True time for history stamps; falls back to the local clock when
    /// nothing records (the value is then never read).
    fn true_now(&self) -> Time {
        self.recorder
            .as_ref()
            .map_or_else(|| self.clock.now(), |r| r.now())
    }

    fn submit(&mut self, msg: ToServer<Res, Bytes>) {
        match self.port.send(self.id, msg) {
            PortVerdict::Sent | PortVerdict::Dropped => {}
            PortVerdict::RetryAfter(msg) => {
                self.resend.push_back((self.true_now() + RETRY_AFTER, msg));
            }
        }
    }

    /// Resubmits backpressured messages whose pause has elapsed.
    fn flush_resend(&mut self) {
        for _ in 0..self.resend.len() {
            match self.resend.front() {
                Some((at, _)) if *at <= self.true_now() => {
                    let (_, msg) = self.resend.pop_front().expect("front exists");
                    self.submit(msg);
                }
                _ => break,
            }
        }
    }

    fn apply(&mut self, outs: Vec<ClientOutput<Res, Bytes>>) {
        for o in outs {
            match o {
                ClientOutput::Send(msg) => self.submit(msg),
                ClientOutput::SetTimer { at, timer } => {
                    let k = key(timer);
                    self.live_timers.insert(k, at);
                    self.timers.push(Reverse((at, k)));
                }
                ClientOutput::CancelTimer(timer) => {
                    self.live_timers.remove(&key(timer));
                }
                ClientOutput::Done { op, result } => {
                    let Some(w) = self.waiting.remove(&op) else {
                        continue;
                    };
                    let mapped = match result {
                        Ok(OpOutcome::Read {
                            data,
                            version,
                            from_cache,
                        }) => {
                            self.record(HistoryEvent::ReadDone {
                                client: self.id,
                                op,
                                resource: w.resource,
                                version,
                                at: self.true_now(),
                                from_cache,
                            });
                            Ok((data, version, from_cache))
                        }
                        Ok(OpOutcome::Write { version }) => {
                            self.record(HistoryEvent::WriteDone {
                                client: self.id,
                                op,
                                resource: w.resource,
                                version,
                                at: self.true_now(),
                            });
                            Ok((Bytes::new(), version, false))
                        }
                        Err(OpError::NoSuchResource) => Err(RtError::NoSuchResource),
                        Err(OpError::Timeout) => Err(RtError::Timeout),
                    };
                    debug_assert_eq!(
                        matches!(mapped, Ok((_, _, false)) if w.is_write),
                        w.is_write && mapped.is_ok()
                    );
                    let _ = w.reply.send(mapped);
                }
            }
        }
    }

    fn start_op(&mut self, resource: Res, data: Option<Bytes>, reply: Sender<OpReply>) {
        let op = OpId(self.next_op);
        self.next_op += 1;
        let is_write = data.is_some();
        self.waiting.insert(
            op,
            Waiting {
                reply,
                resource,
                is_write,
            },
        );
        let ev_at = self.true_now();
        let kind = match data {
            Some(d) => {
                self.record(HistoryEvent::WriteStart {
                    client: self.id,
                    op,
                    resource,
                    at: ev_at,
                });
                Op::Write(resource, d)
            }
            None => {
                self.record(HistoryEvent::ReadStart {
                    client: self.id,
                    op,
                    resource,
                    at: ev_at,
                });
                Op::Read(resource)
            }
        };
        let outs = self
            .cache
            .handle(self.clock.now(), ClientInput::Op { op, kind });
        self.apply(outs);
    }

    /// Fires due timers (skipping cancelled ones) and returns how long to
    /// wait for the next one.
    fn run_timers(&mut self) -> std::time::Duration {
        let now = self.clock.now();
        while let Some(Reverse((at, k))) = self.timers.peek().copied() {
            if at > now {
                break;
            }
            self.timers.pop();
            if self.live_timers.get(&k) != Some(&at) {
                continue; // Cancelled or superseded.
            }
            self.live_timers.remove(&k);
            let outs = self
                .cache
                .handle(self.clock.now(), ClientInput::Timer(timer_of(k)));
            self.apply(outs);
        }
        let mut wait = self
            .timers
            .peek()
            .map(|Reverse((at, _))| {
                std::time::Duration::from(at.saturating_since(self.clock.now()))
            })
            .unwrap_or(std::time::Duration::from_millis(20));
        if !self.resend.is_empty() {
            // Wake in time for the next backpressure resubmission.
            wait = wait.min(std::time::Duration::from(RETRY_AFTER));
        }
        wait
    }
}

pub(crate) fn spawn_client(
    cache: LeaseClient<Res, Bytes>,
    cmd_rx: Receiver<ClientCmd>,
    net_rx: Receiver<ToClient<Res, Bytes>>,
    port: Arc<dyn Port>,
    clock: Arc<dyn Clock>,
    recorder: Option<Arc<Recorder>>,
) -> JoinHandle<()> {
    let id = cache.id();
    std::thread::Builder::new()
        .name(format!("lease-client-{}", id.0))
        .spawn(move || {
            let mut w = Worker {
                id,
                cache,
                port,
                clock,
                recorder,
                timers: BinaryHeap::new(),
                live_timers: HashMap::new(),
                waiting: HashMap::new(),
                resend: VecDeque::new(),
                next_op: 0,
            };
            let outs = w.cache.start(w.clock.now());
            w.apply(outs);

            loop {
                w.flush_resend();
                let wait = w.run_timers();

                crossbeam::channel::select! {
                    recv(cmd_rx) -> cmd => match cmd {
                        Ok(ClientCmd::Read(r, reply)) => w.start_op(r, None, reply),
                        Ok(ClientCmd::Write(r, data, reply)) => {
                            w.start_op(r, Some(data), reply);
                        }
                        Ok(ClientCmd::Stats(reply)) => {
                            let _ = reply.send(w.cache.counters);
                        }
                        Ok(ClientCmd::Shutdown) | Err(_) => break,
                    },
                    recv(net_rx) -> msg => match msg {
                        Ok(m) => {
                            let now = w.clock.now();
                            let outs = w.cache.handle(now, ClientInput::Msg(m));
                            w.apply(outs);
                        }
                        Err(_) => break,
                    },
                    default(wait) => {}
                }
            }
        })
        .expect("spawn client thread")
}
