//! The client-cache thread and its application-facing handle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use lease_clock::{Clock, Dur, Time};
use lease_core::ring::Inbox;
use lease_core::{
    Backoff, ClientCounters, ClientId, ClientInput, ClientOutput, ClientTimer, ErrorReason,
    LeaseClient, Op, OpError, OpId, OpOutcome, ReqId, ToClient, ToServer, Version,
};
use lease_svc::EgressRx;
use lease_vsys::HistoryEvent;

use crate::breaker::CircuitBreaker;
use crate::record::Recorder;
use crate::server::{Port, PortVerdict, Res, RETRY_AFTER};

/// An error from a real-time cache operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtError {
    /// The resource does not exist at the server.
    NoSuchResource,
    /// The server was unreachable until the retry budget (or the per-op
    /// deadline) ran out. For a write, the outcome is unknown.
    Timeout,
    /// The system has shut down.
    Closed,
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::NoSuchResource => write!(f, "no such resource"),
            RtError::Timeout => write!(f, "timed out"),
            RtError::Closed => write!(f, "system closed"),
        }
    }
}

impl std::error::Error for RtError {}

type OpReply = Result<(Bytes, Version, bool), RtError>;

pub(crate) enum ClientCmd {
    Read(Res, Sender<OpReply>),
    Write(Res, Bytes, Sender<OpReply>),
    Stats(Sender<ClientCounters>),
    Shutdown,
}

/// The application-facing handle to one client cache.
///
/// Cloneable and cheap; operations block the calling thread until the
/// cache completes them (immediately on a cache hit).
#[derive(Clone)]
pub struct RtClientHandle {
    pub(crate) tx: Sender<ClientCmd>,
    /// The client thread parks on its egress inbox's one doorbell for
    /// *all* inputs; every command send must ring it.
    pub(crate) inbox: Arc<Inbox<ToClient<Res, Bytes>>>,
}

impl RtClientHandle {
    fn cmd(&self, cmd: ClientCmd) -> Result<(), RtError> {
        self.tx.send(cmd).map_err(|_| RtError::Closed)?;
        self.inbox.bell().ring();
        Ok(())
    }

    /// Reads a file through the cache.
    pub fn read(&self, resource: Res) -> Result<Bytes, RtError> {
        let (tx, rx) = bounded(1);
        self.cmd(ClientCmd::Read(resource, tx))?;
        rx.recv()
            .map_err(|_| RtError::Closed)?
            .map(|(data, _, _)| data)
    }

    /// Reads and also reports the version and whether the cache served it.
    pub fn read_detailed(&self, resource: Res) -> Result<(Bytes, Version, bool), RtError> {
        let (tx, rx) = bounded(1);
        self.cmd(ClientCmd::Read(resource, tx))?;
        rx.recv().map_err(|_| RtError::Closed)?
    }

    /// Write-through write; returns the committed version.
    pub fn write(&self, resource: Res, data: impl Into<Bytes>) -> Result<Version, RtError> {
        let (tx, rx) = bounded(1);
        self.cmd(ClientCmd::Write(resource, data.into(), tx))?;
        rx.recv().map_err(|_| RtError::Closed)?.map(|(_, v, _)| v)
    }

    /// Opens `name` in a leased directory: reads the directory's bindings
    /// (a cache hit on repeated opens, §2) and resolves the name. Returns
    /// `Ok(None)` when the name is not bound.
    pub fn open(&self, dir: Res, name: &str) -> Result<Option<Res>, RtError> {
        let listing = self.read(dir)?;
        Ok(crate::naming::parse_listing(&listing)
            .into_iter()
            .find(|b| b.name == name)
            .map(|b| b.id))
    }

    /// Snapshot of the cache's counters.
    pub fn stats(&self) -> Result<ClientCounters, RtError> {
        let (tx, rx) = bounded(1);
        self.cmd(ClientCmd::Stats(tx))?;
        rx.recv().map_err(|_| RtError::Closed)
    }
}

/// Timer-key encoding: timers live in one heap keyed by u64.
fn key(t: ClientTimer) -> u64 {
    match t {
        ClientTimer::Renewal => 1u64,
        ClientTimer::Retry(r) => r.0 + 2,
    }
}

fn timer_of(k: u64) -> ClientTimer {
    if k == 1 {
        ClientTimer::Renewal
    } else {
        ClientTimer::Retry(lease_core::ReqId(k - 2))
    }
}

/// What the worker remembers about an operation in flight, so the reply
/// can be routed and the completion recorded.
struct Waiting {
    reply: Sender<OpReply>,
    resource: Res,
    is_write: bool,
}

/// One backpressure-paced message awaiting resubmission.
struct Resend {
    /// True time at which to resubmit.
    due: Time,
    /// The originating op's deadline; once passed, the message is dropped
    /// and the op is failed fast instead of resubmitted.
    deadline: Option<Time>,
    /// How many times this message has been refused so far (the backoff
    /// attempt number).
    attempt: u32,
    msg: ToServer<Res, Bytes>,
}

/// The request id a wire message answers to, if it carries one.
fn req_of(msg: &ToServer<Res, Bytes>) -> Option<ReqId> {
    match msg {
        ToServer::Fetch { req, .. } | ToServer::Renew { req, .. } | ToServer::Write { req, .. } => {
            Some(*req)
        }
        ToServer::Approve { .. } | ToServer::Relinquish { .. } => None,
    }
}

/// One client cache's event loop state.
struct Worker {
    id: ClientId,
    cache: LeaseClient<Res, Bytes>,
    port: Box<dyn Port>,
    /// This host's clock — possibly a skewed chaos model.
    clock: Arc<dyn Clock>,
    /// The perfect observer (true time), if history is being recorded.
    recorder: Option<Arc<Recorder>>,
    timers: BinaryHeap<Reverse<(Time, u64)>>,
    live_timers: HashMap<u64, Time>,
    waiting: HashMap<OpId, Waiting>,
    /// Messages the service refused under backpressure, awaiting their
    /// backoff-paced resubmission instants.
    resend: VecDeque<Resend>,
    /// Backoff policy pacing those resubmissions (base [`RETRY_AFTER`]) —
    /// the same `lease_core::Backoff` that paces retransmissions, so
    /// repeated refusals spread out instead of hammering a fixed cadence.
    pacing: Backoff,
    /// Per-op deadline; also propagated with every submission so the
    /// service can drop work whose caller has already timed out.
    op_deadline: Option<Dur>,
    /// First-transmission deadline per request id, anchoring paced
    /// resubmissions and the propagated deadline to the op's start rather
    /// than to each retry.
    deadlines: HashMap<u64, Time>,
    /// Half-open circuit breaker on this client's path to the server.
    breaker: CircuitBreaker,
    next_op: u64,
}

impl Worker {
    fn record(&self, ev: HistoryEvent) {
        if let Some(rec) = &self.recorder {
            rec.push(ev);
        }
    }

    /// True time for history stamps; falls back to the local clock when
    /// nothing records (the value is then never read).
    fn true_now(&self) -> Time {
        self.recorder
            .as_ref()
            .map_or_else(|| self.clock.now(), |r| r.now())
    }

    /// The deadline riding with `msg`: the op's first-transmission time
    /// plus the configured per-op deadline, remembered per request id so
    /// retransmissions and paced resubmissions keep the original anchor.
    fn deadline_of(&mut self, msg: &ToServer<Res, Bytes>) -> Option<Time> {
        let req = req_of(msg)?;
        if let Some(&d) = self.deadlines.get(&req.0) {
            return Some(d);
        }
        let d = self.true_now() + self.op_deadline?;
        if self.deadlines.len() >= 1024 {
            // Requests that never saw a reply (e.g. abandoned renewals)
            // leave entries behind; sweep the dead ones.
            let now = self.true_now();
            self.deadlines.retain(|_, d| *d > now);
        }
        self.deadlines.insert(req.0, d);
        Some(d)
    }

    fn submit(&mut self, msg: ToServer<Res, Bytes>) {
        self.submit_paced(msg, 0);
    }

    fn submit_paced(&mut self, msg: ToServer<Res, Bytes>, attempt: u32) {
        let deadline = self.deadline_of(&msg);
        let now = self.true_now();
        if !self.breaker.allow(now) {
            // Circuit open: drop locally, costing the server nothing.
            // The cache's retransmission timer is the retry schedule, and
            // each firing re-probes the breaker.
            return;
        }
        let salt = (u64::from(self.id.0) << 48) ^ req_of(&msg).map_or(0, |r| r.0 << 8);
        match self.port.send(self.id, msg, deadline) {
            PortVerdict::Sent => self.breaker.on_success(),
            PortVerdict::Dropped => {}
            PortVerdict::RetryAfter(msg) => {
                self.breaker.on_failure(now);
                let attempt = attempt.saturating_add(1);
                let pause = self
                    .pacing
                    .interval(RETRY_AFTER, attempt, salt ^ u64::from(attempt));
                self.resend.push_back(Resend {
                    due: now + pause,
                    deadline,
                    attempt,
                    msg,
                });
            }
        }
    }

    /// Resubmits backpressured messages whose pause has elapsed. A
    /// message whose op deadline has passed is *never* resubmitted:
    /// instead its retry timer is fired early so the cache fails the op
    /// now (`Timeout`) rather than after more dead retries.
    fn flush_resend(&mut self) {
        for _ in 0..self.resend.len() {
            let Some(r) = self.resend.pop_front() else {
                break;
            };
            let now = self.true_now();
            if r.deadline.is_some_and(|d| now > d) {
                if let Some(req) = req_of(&r.msg) {
                    let outs = self.cache.handle(
                        self.clock.now(),
                        ClientInput::Timer(ClientTimer::Retry(req)),
                    );
                    self.apply(outs);
                }
                continue;
            }
            if r.due <= now {
                self.submit_paced(r.msg, r.attempt);
            } else {
                self.resend.push_back(r);
            }
        }
    }

    fn apply(&mut self, outs: Vec<ClientOutput<Res, Bytes>>) {
        for o in outs {
            match o {
                ClientOutput::Send(msg) => self.submit(msg),
                ClientOutput::SetTimer { at, timer } => {
                    let k = key(timer);
                    self.live_timers.insert(k, at);
                    self.timers.push(Reverse((at, k)));
                }
                ClientOutput::CancelTimer(timer) => {
                    if let ClientTimer::Retry(r) = timer {
                        // The request resolved; its deadline anchor dies
                        // with it.
                        self.deadlines.remove(&r.0);
                    }
                    self.live_timers.remove(&key(timer));
                }
                ClientOutput::Done { op, result } => {
                    let Some(w) = self.waiting.remove(&op) else {
                        continue;
                    };
                    let mapped = match result {
                        Ok(OpOutcome::Read {
                            data,
                            version,
                            from_cache,
                        }) => {
                            self.record(HistoryEvent::ReadDone {
                                client: self.id,
                                op,
                                resource: w.resource,
                                version,
                                at: self.true_now(),
                                from_cache,
                            });
                            Ok((data, version, from_cache))
                        }
                        Ok(OpOutcome::Write { version }) => {
                            self.record(HistoryEvent::WriteDone {
                                client: self.id,
                                op,
                                resource: w.resource,
                                version,
                                at: self.true_now(),
                            });
                            Ok((Bytes::new(), version, false))
                        }
                        Err(OpError::NoSuchResource) => Err(RtError::NoSuchResource),
                        Err(OpError::Timeout) => Err(RtError::Timeout),
                    };
                    debug_assert_eq!(
                        matches!(mapped, Ok((_, _, false)) if w.is_write),
                        w.is_write && mapped.is_ok()
                    );
                    let _ = w.reply.send(mapped);
                }
            }
        }
    }

    fn start_op(&mut self, resource: Res, data: Option<Bytes>, reply: Sender<OpReply>) {
        let op = OpId(self.next_op);
        self.next_op += 1;
        let is_write = data.is_some();
        self.waiting.insert(
            op,
            Waiting {
                reply,
                resource,
                is_write,
            },
        );
        let ev_at = self.true_now();
        let kind = match data {
            Some(d) => {
                self.record(HistoryEvent::WriteStart {
                    client: self.id,
                    op,
                    resource,
                    at: ev_at,
                });
                Op::Write(resource, d)
            }
            None => {
                self.record(HistoryEvent::ReadStart {
                    client: self.id,
                    op,
                    resource,
                    at: ev_at,
                });
                Op::Read(resource)
            }
        };
        let outs = self
            .cache
            .handle(self.clock.now(), ClientInput::Op { op, kind });
        self.apply(outs);
    }

    /// Fires due timers (skipping cancelled ones) and returns how long to
    /// wait for the next one.
    fn run_timers(&mut self) -> std::time::Duration {
        let now = self.clock.now();
        while let Some(Reverse((at, k))) = self.timers.peek().copied() {
            if at > now {
                break;
            }
            self.timers.pop();
            if self.live_timers.get(&k) != Some(&at) {
                continue; // Cancelled or superseded.
            }
            self.live_timers.remove(&k);
            let outs = self
                .cache
                .handle(self.clock.now(), ClientInput::Timer(timer_of(k)));
            self.apply(outs);
        }
        let mut wait = self
            .timers
            .peek()
            .map(|Reverse((at, _))| {
                std::time::Duration::from(at.saturating_since(self.clock.now()))
            })
            .unwrap_or(std::time::Duration::from_millis(20));
        if let Some(due) = self
            .resend
            .iter()
            .map(|r| r.deadline.map_or(r.due, |d| r.due.min(d)))
            .min()
        {
            // Wake in time for the next backpressure resubmission (or the
            // fail-fast instant of an entry whose deadline lands first).
            wait = wait.min(std::time::Duration::from(
                due.saturating_since(self.true_now()),
            ));
        }
        wait
    }

    /// Feeds one server message to the cache.
    fn handle_msg(&mut self, m: ToClient<Res, Bytes>) {
        if let ToClient::Error {
            reason: ErrorReason::Shed { .. },
            ..
        } = &m
        {
            // An explicit shed is an overload signal for the breaker,
            // same as backpressure.
            self.breaker.on_failure(self.true_now());
        }
        let now = self.clock.now();
        let outs = self.cache.handle(now, ClientInput::Msg(m));
        self.apply(outs);
    }
}

/// How many lane messages one poll drains before re-checking commands
/// and timers.
const LANE_BATCH: usize = 64;

#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_client(
    cache: LeaseClient<Res, Bytes>,
    cmd_rx: Receiver<ClientCmd>,
    net_rx: Receiver<ToClient<Res, Bytes>>,
    mut lanes: EgressRx<Res, Bytes>,
    port: Box<dyn Port>,
    clock: Arc<dyn Clock>,
    recorder: Option<Arc<Recorder>>,
    pacing: Backoff,
    op_deadline: Option<Dur>,
    breaker: CircuitBreaker,
) -> JoinHandle<()> {
    let id = cache.id();
    std::thread::Builder::new()
        .name(format!("lease-client-{}", id.0))
        .spawn(move || {
            let mut w = Worker {
                id,
                cache,
                port,
                clock,
                recorder,
                timers: BinaryHeap::new(),
                live_timers: HashMap::new(),
                waiting: HashMap::new(),
                resend: VecDeque::new(),
                pacing,
                op_deadline,
                deadlines: HashMap::new(),
                breaker,
                next_op: 0,
            };
            let outs = w.cache.start(w.clock.now());
            w.apply(outs);

            // The client parks on its egress inbox's one doorbell for
            // all three inputs: every command send, channel send, and
            // lane publish rings it. Ticket-before-final-poll makes the
            // park race-free, and a short spin after a hot iteration
            // catches back-to-back replies without a futex round trip
            // (skipped on a single core, where spinning only steals the
            // producer's timeslice).
            let spin: u32 = if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
                128
            } else {
                0
            };
            let mut net_buf: Vec<ToClient<Res, Bytes>> = Vec::new();
            let mut chan_open = true;
            let mut hot = false;
            'main: loop {
                w.flush_resend();
                let wait = w.run_timers();
                let ticket = lanes.bell().ticket();
                let mut did = false;
                loop {
                    match cmd_rx.try_recv() {
                        Ok(ClientCmd::Read(r, reply)) => {
                            did = true;
                            w.start_op(r, None, reply);
                        }
                        Ok(ClientCmd::Write(r, data, reply)) => {
                            did = true;
                            w.start_op(r, Some(data), reply);
                        }
                        Ok(ClientCmd::Stats(reply)) => {
                            did = true;
                            let _ = reply.send(w.cache.counters);
                        }
                        Ok(ClientCmd::Shutdown) | Err(TryRecvError::Disconnected) => break 'main,
                        Err(TryRecvError::Empty) => break,
                    }
                }
                if chan_open {
                    // The cold/chaos/fence channel path.
                    loop {
                        match net_rx.try_recv() {
                            Ok(m) => {
                                did = true;
                                w.handle_msg(m);
                            }
                            Err(TryRecvError::Empty) => break,
                            Err(TryRecvError::Disconnected) => {
                                chan_open = false;
                                break;
                            }
                        }
                    }
                }
                if lanes.drain_into(&mut net_buf, LANE_BATCH) > 0 {
                    did = true;
                    for m in net_buf.drain(..) {
                        w.handle_msg(m);
                    }
                }
                if did {
                    hot = true;
                    continue;
                }
                if hot && spin > 0 {
                    let mut found = false;
                    for _ in 0..spin {
                        if lanes.drain_into(&mut net_buf, LANE_BATCH) > 0 {
                            found = true;
                            break;
                        }
                        if !cmd_rx.is_empty() || (chan_open && !net_rx.is_empty()) {
                            found = true;
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    if found {
                        for m in net_buf.drain(..) {
                            w.handle_msg(m);
                        }
                        continue;
                    }
                }
                hot = false;
                lanes.bell().wait(ticket, wait);
            }
        })
        .expect("spawn client thread")
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use lease_clock::ManualClock;
    use lease_core::ClientConfig;

    use super::*;

    /// A port that refuses every submission with backpressure, recording
    /// the (manual) clock reading of each attempt.
    struct JamPort {
        clock: Arc<ManualClock>,
        sends: Mutex<Vec<Time>>,
    }

    impl Port for Arc<JamPort> {
        fn send(
            &self,
            _from: ClientId,
            msg: ToServer<Res, Bytes>,
            _deadline: Option<Time>,
        ) -> PortVerdict {
            self.sends.lock().unwrap().push(self.clock.now());
            PortVerdict::RetryAfter(msg)
        }
    }

    /// Pins the backpressure-pacing contract: a message parked for paced
    /// resubmission is never resubmitted past its op deadline — the op
    /// fails fast with `Timeout` instead, and no submission reaches the
    /// port at or after the deadline instant.
    #[test]
    fn paced_resubmission_respects_op_deadline() {
        let clock = Arc::new(ManualClock::new(Time::ZERO));
        let port = Arc::new(JamPort {
            clock: clock.clone(),
            sends: Mutex::new(Vec::new()),
        });
        let deadline = Dur::from_millis(50);
        let cache = LeaseClient::new(
            ClientId(0),
            ClientConfig {
                op_deadline: Some(deadline),
                retry_interval: Dur::from_millis(5),
                ..ClientConfig::default()
            },
        );
        let mut w = Worker {
            id: ClientId(0),
            cache,
            port: Box::new(port.clone()),
            clock: clock.clone(),
            recorder: None,
            timers: BinaryHeap::new(),
            live_timers: HashMap::new(),
            waiting: HashMap::new(),
            resend: VecDeque::new(),
            pacing: Backoff::default(),
            op_deadline: Some(deadline),
            deadlines: HashMap::new(),
            breaker: CircuitBreaker::disabled(),
            next_op: 0,
        };
        let outs = w.cache.start(clock.now());
        w.apply(outs);

        let (tx, rx) = bounded(1);
        w.start_op(7, None, tx);
        assert_eq!(port.sends.lock().unwrap().len(), 1, "first transmission");
        assert_eq!(w.resend.len(), 1, "refused and parked for pacing");

        // Inside the deadline the paced resubmissions keep coming (and
        // keep being refused).
        clock.advance(Dur::from_millis(10));
        w.flush_resend();
        assert_eq!(port.sends.lock().unwrap().len(), 2);
        assert_eq!(w.resend.len(), 1);

        // Past the deadline: the parked message must not be resubmitted —
        // the op fails fast instead.
        clock.advance(Dur::from_millis(41));
        w.flush_resend();
        assert_eq!(
            rx.try_recv().expect("op resolved"),
            Err(RtError::Timeout),
            "fail fast once the deadline passed"
        );
        assert!(w.resend.is_empty(), "nothing left parked");
        let sends = port.sends.lock().unwrap();
        assert_eq!(sends.len(), 2, "no resubmission past the deadline");
        assert!(sends.iter().all(|t| *t < Time::ZERO + deadline));
    }
}
