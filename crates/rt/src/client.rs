//! The client-cache thread and its application-facing handle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use lease_clock::{Clock, Time, WallClock};
use lease_core::{
    ClientCounters, ClientInput, ClientOutput, ClientTimer, LeaseClient, Op, OpError, OpId,
    OpOutcome, ToClient, Version,
};

use crate::server::{Res, ServerPort};

/// An error from a real-time cache operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtError {
    /// The resource does not exist at the server.
    NoSuchResource,
    /// The server was unreachable until the retry budget ran out. For a
    /// write, the outcome is unknown.
    Timeout,
    /// The system has shut down.
    Closed,
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::NoSuchResource => write!(f, "no such resource"),
            RtError::Timeout => write!(f, "timed out"),
            RtError::Closed => write!(f, "system closed"),
        }
    }
}

impl std::error::Error for RtError {}

type OpReply = Result<(Bytes, Version, bool), RtError>;

pub(crate) enum ClientCmd {
    Read(Res, Sender<OpReply>),
    Write(Res, Bytes, Sender<OpReply>),
    Stats(Sender<ClientCounters>),
    Shutdown,
}

/// The application-facing handle to one client cache.
///
/// Cloneable and cheap; operations block the calling thread until the
/// cache completes them (immediately on a cache hit).
#[derive(Clone)]
pub struct RtClientHandle {
    pub(crate) tx: Sender<ClientCmd>,
}

impl RtClientHandle {
    /// Reads a file through the cache.
    pub fn read(&self, resource: Res) -> Result<Bytes, RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Read(resource, tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv()
            .map_err(|_| RtError::Closed)?
            .map(|(data, _, _)| data)
    }

    /// Reads and also reports the version and whether the cache served it.
    pub fn read_detailed(&self, resource: Res) -> Result<(Bytes, Version, bool), RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Read(resource, tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv().map_err(|_| RtError::Closed)?
    }

    /// Write-through write; returns the committed version.
    pub fn write(&self, resource: Res, data: impl Into<Bytes>) -> Result<Version, RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Write(resource, data.into(), tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv().map_err(|_| RtError::Closed)?.map(|(_, v, _)| v)
    }

    /// Opens `name` in a leased directory: reads the directory's bindings
    /// (a cache hit on repeated opens, §2) and resolves the name. Returns
    /// `Ok(None)` when the name is not bound.
    pub fn open(&self, dir: Res, name: &str) -> Result<Option<Res>, RtError> {
        let listing = self.read(dir)?;
        Ok(crate::naming::parse_listing(&listing)
            .into_iter()
            .find(|b| b.name == name)
            .map(|b| b.id))
    }

    /// Snapshot of the cache's counters.
    pub fn stats(&self) -> Result<ClientCounters, RtError> {
        let (tx, rx) = bounded(1);
        self.tx
            .send(ClientCmd::Stats(tx))
            .map_err(|_| RtError::Closed)?;
        rx.recv().map_err(|_| RtError::Closed)
    }
}

pub(crate) fn spawn_client(
    mut cache: LeaseClient<Res, Bytes>,
    cmd_rx: Receiver<ClientCmd>,
    net_rx: Receiver<ToClient<Res, Bytes>>,
    port: ServerPort,
    clock: WallClock,
) -> JoinHandle<()> {
    let id = cache.id();
    std::thread::Builder::new()
        .name(format!("lease-client-{}", id.0))
        .spawn(move || {
            let mut timers: BinaryHeap<Reverse<(Time, u64)>> = BinaryHeap::new();
            let mut live_timers: HashMap<u64, Time> = HashMap::new();
            let mut waiting: HashMap<OpId, Sender<OpReply>> = HashMap::new();
            let mut next_op = 0u64;
            let key = |t: ClientTimer| match t {
                ClientTimer::Renewal => 1u64,
                ClientTimer::Retry(r) => r.0 + 2,
            };
            let timer_of = |k: u64| {
                if k == 1 {
                    ClientTimer::Renewal
                } else {
                    ClientTimer::Retry(lease_core::ReqId(k - 2))
                }
            };

            fn apply(
                outs: Vec<ClientOutput<Res, Bytes>>,
                timers: &mut BinaryHeap<Reverse<(Time, u64)>>,
                live: &mut HashMap<u64, Time>,
                waiting: &mut HashMap<OpId, Sender<OpReply>>,
                port: &ServerPort,
                id: lease_core::ClientId,
                key: &impl Fn(ClientTimer) -> u64,
            ) {
                for o in outs {
                    match o {
                        ClientOutput::Send(msg) => {
                            port.send(id, msg);
                        }
                        ClientOutput::SetTimer { at, timer } => {
                            let k = key(timer);
                            live.insert(k, at);
                            timers.push(Reverse((at, k)));
                        }
                        ClientOutput::CancelTimer(timer) => {
                            live.remove(&key(timer));
                        }
                        ClientOutput::Done { op, result } => {
                            if let Some(reply) = waiting.remove(&op) {
                                let mapped = match result {
                                    Ok(OpOutcome::Read { data, version, from_cache }) => {
                                        Ok((data, version, from_cache))
                                    }
                                    Ok(OpOutcome::Write { version }) => {
                                        Ok((Bytes::new(), version, false))
                                    }
                                    Err(OpError::NoSuchResource) => Err(RtError::NoSuchResource),
                                    Err(OpError::Timeout) => Err(RtError::Timeout),
                                };
                                let _ = reply.send(mapped);
                            }
                        }
                    }
                }
            }

            let outs = cache.start(clock.now());
            apply(outs, &mut timers, &mut live_timers, &mut waiting, &port, id, &key);

            loop {
                // Fire due timers (skipping cancelled ones).
                let now = clock.now();
                while let Some(Reverse((at, k))) = timers.peek().copied() {
                    if at > now {
                        break;
                    }
                    timers.pop();
                    if live_timers.get(&k) != Some(&at) {
                        continue; // Cancelled or superseded.
                    }
                    live_timers.remove(&k);
                    let outs = cache.handle(clock.now(), ClientInput::Timer(timer_of(k)));
                    apply(outs, &mut timers, &mut live_timers, &mut waiting, &port, id, &key);
                }
                let wait = timers
                    .peek()
                    .map(|Reverse((at, _))| {
                        std::time::Duration::from(at.saturating_since(clock.now()))
                    })
                    .unwrap_or(std::time::Duration::from_millis(20));

                crossbeam::channel::select! {
                    recv(cmd_rx) -> cmd => match cmd {
                        Ok(ClientCmd::Read(r, reply)) => {
                            let op = OpId(next_op);
                            next_op += 1;
                            waiting.insert(op, reply);
                            let outs = cache.handle(
                                clock.now(),
                                ClientInput::Op { op, kind: Op::Read(r) },
                            );
                            apply(outs, &mut timers, &mut live_timers, &mut waiting, &port, id, &key);
                        }
                        Ok(ClientCmd::Write(r, data, reply)) => {
                            let op = OpId(next_op);
                            next_op += 1;
                            waiting.insert(op, reply);
                            let outs = cache.handle(
                                clock.now(),
                                ClientInput::Op { op, kind: Op::Write(r, data) },
                            );
                            apply(outs, &mut timers, &mut live_timers, &mut waiting, &port, id, &key);
                        }
                        Ok(ClientCmd::Stats(reply)) => {
                            let _ = reply.send(cache.counters);
                        }
                        Ok(ClientCmd::Shutdown) | Err(_) => break,
                    },
                    recv(net_rx) -> msg => match msg {
                        Ok(m) => {
                            let outs = cache.handle(clock.now(), ClientInput::Msg(m));
                            apply(outs, &mut timers, &mut live_timers, &mut waiting, &port, id, &key);
                        }
                        Err(_) => break,
                    },
                    default(wait) => {}
                }
            }
        })
        .expect("spawn client thread")
}
