//! Real caching clients over real sockets.
//!
//! [`NetClient`] runs N of this crate's client workers — the same
//! `spawn_client` event loop the in-process [`RtSystem`] uses, with its
//! retransmission backoff, retry budgets, per-op deadlines, circuit
//! breakers, and Shed handling **unchanged** — against a remote
//! `lease_net::NetServer` instead of an in-process service handle. The
//! only moving parts added here are the transport edges:
//!
//! * [`TcpPort`] implements the client transport seam ([`Port`]): a
//!   submission encodes one `lease-wire` frame and writes it to the
//!   socket. Deadlines cross as *remaining* time-to-live, computed
//!   against this client's clock at send time — the T-Lease rule: no
//!   absolute clock reading of ours means anything to the server.
//!   An unwritable socket is [`PortVerdict::Dropped`] — exactly the
//!   lost-datagram case §2's retransmission machinery already recovers,
//!   so a server crash needs no client-side handling at all.
//! * A reader thread per client decodes reply frames and feeds the
//!   worker's doorbell, reconnecting (with the hello handshake) whenever
//!   the connection dies. Reconnection is invisible to the worker: its
//!   pending ops simply retransmit into the new connection.
//!
//! [`RtSystem`]: crate::system::RtSystem

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use lease_clock::{Clock, Dur, Time, WallClock};
use lease_core::ring::Inbox;
use lease_core::{Backoff, ClientConfig, ClientId, LeaseClient, RetryBudget, ToClient, ToServer};
use lease_net::connect_as;
use lease_net::tcp::FrameAccum;
use lease_svc::Egress;
use lease_wire::{frame_len, frame_messages, Dir, FrameBuilder};

use crate::breaker::CircuitBreaker;
use crate::client::{spawn_client, ClientCmd, RtClientHandle};
use crate::record::Recorder;
use crate::server::{Port, PortVerdict, Res};

/// How often parked socket reads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(100);

/// Pause before a reconnection attempt after a refused/dead connection.
const RECONNECT_PAUSE: Duration = Duration::from_millis(50);

/// Configuration for a [`NetClient`] fleet.
pub struct NetClientConfig {
    /// The server's address.
    pub addr: SocketAddr,
    /// How many client workers to run ([`ClientId`]s `0..clients`).
    pub clients: u32,
    /// The client's clock allowance ε.
    pub epsilon: Dur,
    /// Retransmission interval (backoff base).
    pub retry_interval: Dur,
    /// Retransmission budget per op.
    pub max_retries: u32,
    /// Backoff policy on top of the interval.
    pub backoff: Backoff,
    /// Per-op deadline, propagated to the server with every submission.
    pub op_deadline: Option<Dur>,
    /// Token-bucket retry budget.
    pub retry_budget: Option<RetryBudget>,
    /// Circuit breaker `(threshold, cooldown)`.
    pub breaker: Option<(u32, Dur)>,
    /// The true-time clock operations are recorded against (and that
    /// deadlines are computed with). `None` uses a fresh process-local
    /// [`WallClock`]; the multi-process harness passes a
    /// [`SysClock`](lease_clock::SysClock) sharing the parent's epoch.
    pub clock: Option<Arc<dyn Clock>>,
}

impl NetClientConfig {
    /// Defaults matching `RtSystemBuilder`'s: 5s epsilon-free clients,
    /// 100ms retransmission, 10 retries.
    pub fn new(addr: SocketAddr, clients: u32) -> NetClientConfig {
        NetClientConfig {
            addr,
            clients,
            epsilon: Dur::from_millis(50),
            retry_interval: Dur::from_millis(100),
            max_retries: 10,
            backoff: Backoff::default(),
            op_deadline: None,
            retry_budget: None,
            breaker: None,
            clock: None,
        }
    }
}

/// N real client workers talking to a remote lease server over TCP.
pub struct NetClient {
    handles: Vec<RtClientHandle>,
    cmd_txs: Vec<Sender<ClientCmd>>,
    recorder: Arc<Recorder>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl NetClient {
    /// Spawns the workers and their reader threads. Connections are
    /// established (and re-established) in the background; nothing here
    /// blocks on the server being up — a client whose socket is down
    /// simply retransmits until it isn't.
    pub fn connect(cfg: NetClientConfig) -> NetClient {
        let clock: Arc<dyn Clock> = cfg.clock.unwrap_or_else(|| Arc::new(WallClock::new()));
        let recorder = Arc::new(Recorder::with_clock(Arc::clone(&clock)));
        let stop = Arc::new(AtomicBool::new(false));
        // A local egress registry supplies each worker's lanes+doorbell;
        // the reader threads publish over the channel half and ring the
        // bell, so the worker's one-bell park loop works unchanged.
        let egress: Egress<Res, Bytes> = Egress::new(cfg.clients as usize, 1024);
        let mut handles = Vec::new();
        let mut cmd_txs = Vec::new();
        let mut threads = Vec::new();

        for i in 0..cfg.clients {
            let (cmd_tx, cmd_rx) = unbounded();
            let (net_tx, net_rx) = unbounded();
            let slot: Arc<Mutex<Option<TcpStream>>> = Arc::new(Mutex::new(None));

            threads.push(spawn_reader(
                cfg.addr,
                ClientId(i),
                Arc::clone(&slot),
                net_tx,
                egress.inbox(i as usize),
                Arc::clone(&stop),
            ));

            let cache = LeaseClient::new(
                ClientId(i),
                ClientConfig {
                    epsilon: cfg.epsilon,
                    retry_interval: cfg.retry_interval,
                    max_retries: cfg.max_retries,
                    backoff: cfg.backoff,
                    op_deadline: cfg.op_deadline,
                    batch_extensions: true,
                    anticipatory: None,
                    capacity: 0,
                    retry_budget: cfg.retry_budget,
                },
            );
            let port = TcpPort {
                slot,
                clock: Arc::clone(&clock),
                buf: Mutex::new(Vec::new()),
                who: ClientId(i),
            };
            threads.push(spawn_client(
                cache,
                cmd_rx,
                net_rx,
                egress.rx(i as usize),
                Box::new(port),
                Arc::clone(&clock),
                Some(Arc::clone(&recorder)),
                cfg.backoff,
                cfg.op_deadline,
                cfg.breaker
                    .map_or_else(CircuitBreaker::disabled, |(t, c)| CircuitBreaker::new(t, c)),
            ));
            handles.push(RtClientHandle {
                tx: cmd_tx.clone(),
                inbox: egress.inbox(i as usize),
            });
            cmd_txs.push(cmd_tx);
        }

        NetClient {
            handles,
            cmd_txs,
            recorder,
            stop,
            threads,
        }
    }

    /// Client `i`'s handle (blocking read/write/open operations).
    pub fn client(&self, i: usize) -> &RtClientHandle {
        &self.handles[i]
    }

    /// The shared operation recorder (true-time history for the oracle).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Stops every worker and reader and joins them.
    pub fn shutdown(mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(ClientCmd::Shutdown);
        }
        for h in &self.handles {
            h.inbox.bell().ring();
        }
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The TCP-backed client transport: one frame per submission, written
/// synchronously on the worker thread.
pub struct TcpPort {
    slot: Arc<Mutex<Option<TcpStream>>>,
    clock: Arc<dyn Clock>,
    /// Reusable encode buffer (a port is owned by one worker thread; the
    /// mutex is uncontended and only satisfies `&self`).
    buf: Mutex<Vec<u8>>,
    who: ClientId,
}

impl Port for TcpPort {
    fn send(
        &self,
        from: ClientId,
        msg: ToServer<Res, Bytes>,
        deadline: Option<Time>,
    ) -> PortVerdict {
        debug_assert_eq!(from, self.who);
        // Absolute deadline → remaining time-to-live at this send. An
        // already-dead op still crosses (remaining 0): the server drops
        // and counts it, keeping the two sides' books consistent.
        let remaining = deadline.map(|d| d.saturating_since(self.clock.now()));
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        buf.clear();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::C2s, from);
        fb.push_c2s(&mut buf, &msg, remaining);
        fb.finish(&mut buf);

        let mut guard = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(stream) = guard.as_mut() else {
            return PortVerdict::Dropped; // disconnected: retransmission recovers
        };
        match std::io::Write::write_all(stream, &buf) {
            Ok(()) => PortVerdict::Sent,
            Err(_) => {
                *guard = None; // dead socket; the reader reconnects
                PortVerdict::Dropped
            }
        }
    }
}

/// The per-client reader: owns the connect/reconnect loop, decodes reply
/// frames, and feeds the worker through its channel + doorbell.
fn spawn_reader(
    addr: SocketAddr,
    who: ClientId,
    slot: Arc<Mutex<Option<TcpStream>>>,
    net_tx: crossbeam::channel::Sender<ToClient<Res, Bytes>>,
    inbox: Arc<Inbox<ToClient<Res, Bytes>>>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("lease-net-reader-{}", who.0))
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                // (Re)connect, with the hello handshake that names us.
                let mut stream = match connect_as(&addr, who) {
                    Ok(s) => s,
                    Err(_) => {
                        std::thread::sleep(RECONNECT_PAUSE);
                        continue;
                    }
                };
                if stream.set_read_timeout(Some(POLL)).is_err() {
                    continue;
                }
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = stream.try_clone().ok();
                // A fresh byte stream gets a fresh accumulator: no stale
                // prefix from the previous connection.
                let mut accum = FrameAccum::new();

                'read: while !stop.load(Ordering::SeqCst) {
                    // Decode every buffered complete frame.
                    loop {
                        let len = match frame_len(accum.bytes()) {
                            Ok(Some(len)) if accum.bytes().len() >= len => len,
                            Ok(_) => break,
                            Err(_) => break 'read, // corrupt stream: reconnect
                        };
                        let mut delivered = false;
                        {
                            let frame = &accum.bytes()[..len];
                            let Ok((h, mut it)) = frame_messages(frame) else {
                                break 'read;
                            };
                            if h.dir == Dir::S2c {
                                while let Ok(Some(m)) = it.next_s2c::<Res, Bytes>() {
                                    let _ = net_tx.send(m);
                                    delivered = true;
                                }
                            }
                        }
                        accum.consume(len);
                        if delivered {
                            inbox.bell().ring();
                        }
                    }
                    match accum.fill(&mut stream) {
                        Ok(0) => break, // server closed: reconnect
                        Ok(_) => {}
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut => {}
                        Err(_) => break,
                    }
                }
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
                if !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(RECONNECT_PAUSE);
                }
            }
        })
        .expect("spawn net reader")
}
