//! Real client workers against a real TCP server: the full rt client
//! loop (retransmission, deadlines, approvals) crossing loopback sockets.

use std::sync::Arc;

use bytes::Bytes;
use lease_clock::{Clock, Dur, WallClock};
use lease_core::{LeaseServer, MemStorage, ServerConfig, Storage};
use lease_net::NetServer;
use lease_rt::{NetClient, NetClientConfig};
use lease_svc::{Egress, EgressSink, LeaseService, SvcConfig, SvcHooks};
use lease_vsys::HistoryEvent;

type R = u64;
type D = Bytes;

fn start_server(
    shards: usize,
    clients: usize,
    files: u64,
) -> (LeaseService<R, D>, NetServer, Arc<dyn Clock>) {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let egress: Egress<R, D> = Egress::new(clients, 1024);
    let sink = Arc::new(EgressSink::new(egress.clone()));
    let service = LeaseService::spawn(
        SvcConfig {
            shards,
            ..SvcConfig::default()
        },
        sink,
        SvcHooks {
            clock: Some(Arc::clone(&clock)),
            ..SvcHooks::default()
        },
        move |_| {
            let mut store: MemStorage<R, D> = MemStorage::new();
            for r in 0..files {
                store.insert(r, Bytes::from(r.to_le_bytes().to_vec()));
            }
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(5))),
                Box::new(store) as Box<dyn Storage<R, D> + Send>,
            )
        },
    );
    let net = NetServer::bind("127.0.0.1:0", service.handle(), &egress, Arc::clone(&clock))
        .expect("bind");
    (service, net, clock)
}

#[test]
fn reads_and_writes_over_loopback() {
    let (service, net, _clock) = start_server(2, 2, 16);
    let fleet = NetClient::connect(NetClientConfig::new(net.local_addr(), 2));

    // Cold read: fetch over the wire, grant comes back with data.
    let got = fleet.client(0).read(3).expect("read file 3");
    assert_eq!(&got[..], &3u64.to_le_bytes());

    // Cached read: served locally under the lease (no server round trip
    // needed, but correctness is what we assert here).
    let again = fleet.client(0).read(3).expect("cached read");
    assert_eq!(&again[..], &3u64.to_le_bytes());

    // A write from the other client: approval machinery (client 0 holds
    // a read lease on 3) must run over the sockets.
    let v = fleet
        .client(1)
        .write(3, Bytes::from(&b"updated"[..]))
        .expect("write file 3");
    assert!(v.0 >= 1);

    // Client 0 reads again: must observe the new version, not its
    // now-invalid cache entry.
    let fresh = fleet.client(0).read(3).expect("read after write");
    assert_eq!(&fresh[..], b"updated");

    // The recorder captured the ops on one timeline.
    let hist = fleet.recorder().snapshot();
    assert!(
        hist.events
            .iter()
            .any(|e| matches!(e, HistoryEvent::ReadDone { .. })),
        "recorder must log reads"
    );

    fleet.shutdown();
    net.shutdown();
    service.shutdown();
}

#[test]
fn client_survives_server_silence_by_retransmission() {
    // Connect the fleet *before* the server exists: every op must park
    // in retransmission until a server appears... which is the same code
    // path as a server crash mid-op. Here we just verify the bounded
    // failure mode: with a finite retry budget and no server, the op
    // fails cleanly (Timeout/Unreachable), it does not hang or panic.
    let addr: std::net::SocketAddr = "127.0.0.1:1".parse().expect("addr"); // port 1: refused
    let mut cfg = NetClientConfig::new(addr, 1);
    cfg.retry_interval = Dur::from_millis(10);
    cfg.max_retries = 3;
    cfg.op_deadline = Some(Dur::from_millis(500));
    let fleet = NetClient::connect(cfg);
    let err = fleet.client(0).read(1);
    assert!(err.is_err(), "no server: the op must fail, got {err:?}");
    fleet.shutdown();
}
