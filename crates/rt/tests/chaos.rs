//! Chaos tests: supervised shard crashes and seeded fault plans against
//! the real-time deployment, judged by the consistency oracle.
//!
//! These are the rt analogues of the simulator's fault-plan tests: the
//! recorded true-time history must satisfy `lease_faults::check_history`
//! under every injected fault the protocol claims to tolerate — and must
//! *fail* it when a fault the protocol does NOT tolerate (a fast server
//! clock breaking §5's assumptions) is injected.

use std::time::{Duration, Instant};

use bytes::Bytes;
use lease_clock::{ClockModel, Dur};
use lease_faults::{check_history, Violation};
use lease_rt::{FaultPlan, RtSystem};

/// Tentpole acceptance: kill the (only) shard mid-workload. The
/// supervisor restarts it through §5 MaxTerm recovery; during the
/// recovery window grants are refused and writes stall, and afterwards
/// everything proceeds — with a history the oracle accepts.
#[test]
fn shard_crash_recovers_within_max_term_and_history_is_consistent() {
    let term = 300u64;
    let sys = RtSystem::builder()
        .term(Dur::from_millis(term))
        .epsilon(Dur::from_millis(5))
        .retry_interval(Dur::from_millis(20))
        .max_retries(200)
        .file("/data/a", b"alpha".as_ref())
        .clients(2)
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    // Warm up: a grant makes the max term durable, and both clients hold
    // leases the crash will wipe.
    assert_eq!(c0.read(a).unwrap(), Bytes::from_static(b"alpha"));
    c1.read(a).unwrap();

    sys.kill_shard(0);
    std::thread::sleep(Duration::from_millis(30)); // Let the supervisor restart it.

    // A fetch during the recovery window is refused (silently — the
    // client's retransmission machinery rides it out), and a write
    // stalls until the window passes, then completes.
    let reader = {
        let c1 = c1.clone();
        std::thread::spawn(move || {
            // c1's lease is still live on its own clock, so force a fresh
            // fetch by asking for a resource state only the server knows.
            c1.write(a, b"from-c1".as_ref()).unwrap();
        })
    };
    let start = Instant::now();
    let v = c0.write(a, b"post-crash".as_ref()).unwrap();
    let waited = start.elapsed();
    // c0's and c1's writes serialize in either order: versions {2, 3}.
    assert!(v.0 >= 2, "write must commit a fresh version, got {v:?}");
    assert!(
        waited >= Duration::from_millis(term / 2),
        "write must stall for the §5 recovery window, waited {waited:?}"
    );
    assert!(
        waited < Duration::from_millis(3 * term),
        "recovery stall must be bounded by the max term, waited {waited:?}"
    );
    reader.join().unwrap();

    // Post-recovery reads see the latest committed data.
    let (data, _, _) = c0.read_detailed(a).unwrap();
    assert!(
        data == Bytes::from_static(b"post-crash") || data == Bytes::from_static(b"from-c1"),
        "read must return a committed post-crash value, got {data:?}"
    );

    let stats = sys.server_stats().expect("restarted shard answers stats");
    assert_eq!(
        stats.shard_restarts,
        vec![1],
        "exactly one supervised restart"
    );

    let history = sys.history();
    sys.shutdown();
    assert!(!history.is_empty());
    check_history(&history).expect("crash/restart must not break consistency");
}

/// Grants are refused (not just writes deferred) during the recovery
/// window when the deployment asks for it.
#[test]
fn recovery_window_refuses_grants() {
    let term = 250u64;
    let sys = RtSystem::builder()
        .term(Dur::from_millis(term))
        .retry_interval(Dur::from_millis(15))
        .max_retries(200)
        .file("/data/a", b"alpha".as_ref())
        .clients(2)
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));
    c0.read(a).unwrap(); // Persist the max term.

    sys.kill_shard(0);
    std::thread::sleep(Duration::from_millis(30));

    // c1 never held a lease, so this read needs a fresh grant — which the
    // recovering server refuses until the window passes.
    let start = Instant::now();
    assert_eq!(c1.read(a).unwrap(), Bytes::from_static(b"alpha"));
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(term / 3),
        "grant should have been deferred by recovery, waited {waited:?}"
    );

    let stats = sys.server_stats().unwrap();
    assert!(
        stats.counters.recovery_refusals >= 1,
        "the recovering shard must have refused at least one grant, got {}",
        stats.counters.recovery_refusals
    );
    let history = sys.history();
    sys.shutdown();
    check_history(&history).expect("recovery refusals must not break consistency");
}

/// A seeded plan of message drops, duplicates and delays: the protocol's
/// retransmission and approval machinery must keep the history clean.
#[test]
fn seeded_message_chaos_preserves_consistency() {
    let plan = FaultPlan::new(0xC0FFEE)
        .drop_messages(0.05)
        .duplicate_messages(0.05)
        .delay_messages(Dur::from_millis(5));
    let sys = RtSystem::builder()
        .term(Dur::from_millis(250))
        .epsilon(Dur::from_millis(10))
        .retry_interval(Dur::from_millis(20))
        .max_retries(400)
        .file("/data/a", b"a0".as_ref())
        .file("/data/b", b"b0".as_ref())
        .clients(2)
        .chaos(plan)
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let b = sys.lookup("/data/b").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    for k in 0..6 {
        c0.read(a).unwrap();
        c1.read(b).unwrap();
        c0.write(b, format!("b{}", k + 1).into_bytes()).unwrap();
        c1.read(b).unwrap();
        c1.write(a, format!("a{}", k + 1).into_bytes()).unwrap();
        c0.read(a).unwrap();
    }

    let history = sys.history();
    sys.shutdown();
    check_history(&history).expect("drop/dup/delay chaos must not break consistency");
}

/// Companion negative test: a server clock running 2x fast breaks §5's
/// clock assumption — the server expires leases early and commits writes
/// while a (truthfully timed) client still serves its cache. The perfect
/// observer must catch the resulting stale read even though the protocol
/// participants never notice.
#[test]
fn fast_server_clock_is_caught_by_the_oracle() {
    let term = 400u64;
    let plan = FaultPlan::new(7).with_server_clock(ClockModel::drifting(1_000_000.0)); // 2x speed
    let sys = RtSystem::builder()
        .term(Dur::from_millis(term))
        .epsilon(Dur::from_millis(5))
        .retry_interval(Dur::from_millis(20))
        .max_retries(100)
        .file("/data/a", b"v-old".as_ref())
        .clients(2)
        .chaos(plan)
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    // c1 takes a lease it will (correctly, on true time) hold for ~400 ms.
    // The fast server clock expires the grant after only ~200 ms of true
    // time, so the write below commits without c1's approval.
    let (_, v_old, _) = c1.read_detailed(a).unwrap();
    std::thread::sleep(Duration::from_millis(term * 5 / 8));
    c0.write(a, b"v-new".as_ref()).unwrap();

    // Still inside c1's true-time lease: a cache hit serving stale data.
    let (_, v_seen, from_cache) = c1.read_detailed(a).unwrap();
    assert!(from_cache, "c1's lease must still be live on its own clock");
    assert_eq!(
        v_seen, v_old,
        "the stale cache still serves the old version"
    );

    let history = sys.history();
    sys.shutdown();
    let violations = check_history(&history).expect_err("the oracle must flag the stale read");
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::StaleRead { .. })),
        "expected a StaleRead violation, got {violations:?}"
    );
}
