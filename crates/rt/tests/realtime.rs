//! End-to-end tests of the real-time (threads + wall clock) deployment.
//!
//! Terms are hundreds of milliseconds so the suite stays fast while still
//! exercising genuine timer expiry.

use std::time::{Duration, Instant};

use bytes::Bytes;
use lease_clock::Dur;
use lease_rt::RtSystem;

fn two_client_system(term_ms: u64) -> RtSystem {
    RtSystem::builder()
        .term(Dur::from_millis(term_ms))
        .epsilon(Dur::from_millis(5))
        .retry_interval(Dur::from_millis(30))
        .max_retries(100)
        .file("/data/a", b"alpha".as_ref())
        .file("/data/b", b"beta".as_ref())
        .clients(2)
        .start()
}

#[test]
fn read_write_roundtrip() {
    let sys = two_client_system(300);
    let a = sys.lookup("/data/a").unwrap();
    let c0 = sys.client(0);
    assert_eq!(c0.read(a).unwrap(), Bytes::from_static(b"alpha"));
    let v = c0.write(a, b"alpha2".as_ref()).unwrap();
    assert_eq!(v.0, 2);
    assert_eq!(c0.read(a).unwrap(), Bytes::from_static(b"alpha2"));
    sys.shutdown();
}

#[test]
fn second_read_is_a_cache_hit() {
    let sys = two_client_system(500);
    let a = sys.lookup("/data/a").unwrap();
    let c0 = sys.client(0);
    let (_, _, from_cache) = c0.read_detailed(a).unwrap();
    assert!(!from_cache, "first read fetches");
    let (_, _, from_cache) = c0.read_detailed(a).unwrap();
    assert!(from_cache, "second read inside the term is local");
    let stats = c0.stats().unwrap();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses_cold, 1);
    sys.shutdown();
}

#[test]
fn lease_expires_in_real_time() {
    let sys = two_client_system(150);
    let a = sys.lookup("/data/a").unwrap();
    let c0 = sys.client(0);
    c0.read(a).unwrap();
    std::thread::sleep(Duration::from_millis(250));
    let (_, _, from_cache) = c0.read_detailed(a).unwrap();
    assert!(!from_cache, "lease must have expired after 250 ms");
    let stats = c0.stats().unwrap();
    assert_eq!(stats.misses_extend, 1);
    sys.shutdown();
}

#[test]
fn write_invalidates_the_other_cache() {
    let sys = two_client_system(5_000);
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));
    assert_eq!(c1.read(a).unwrap(), Bytes::from_static(b"alpha"));
    // c0 writes; the server collects c1's approval (which invalidates).
    c0.write(a, b"new".as_ref()).unwrap();
    let (data, v, _) = c1.read_detailed(a).unwrap();
    assert_eq!(data, Bytes::from_static(b"new"));
    assert_eq!(v.0, 2);
    let stats = c1.stats().unwrap();
    assert_eq!(stats.approvals, 1);
    assert_eq!(stats.invalidations, 1);
    sys.shutdown();
}

#[test]
fn unreachable_leaseholder_delays_write_by_one_term() {
    let term = 400u64;
    let sys = two_client_system(term);
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));
    c1.read(a).unwrap(); // c1 holds a 400 ms lease
    sys.set_cut(1, true); // c1 vanishes
    let start = Instant::now();
    c0.write(a, b"new".as_ref()).unwrap();
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(150),
        "write should stall for the remaining term, waited {waited:?}"
    );
    assert!(
        waited < Duration::from_millis(term + 300),
        "stall must be bounded by the term, waited {waited:?}"
    );
    sys.set_cut(1, false);
    sys.shutdown();
}

#[test]
fn cut_client_recovers_and_reads_fresh_data() {
    let sys = two_client_system(200);
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));
    c1.read(a).unwrap();
    sys.set_cut(1, true);
    c0.write(a, b"v2".as_ref()).unwrap();
    sys.set_cut(1, false);
    // After healing, c1's lease has expired; its next read revalidates.
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(c1.read(a).unwrap(), Bytes::from_static(b"v2"));
    sys.shutdown();
}

#[test]
fn missing_resource_errors() {
    let sys = two_client_system(300);
    let c0 = sys.client(0);
    assert_eq!(
        c0.read(9999).unwrap_err(),
        lease_rt::RtError::NoSuchResource
    );
    sys.shutdown();
}

#[test]
fn installed_files_stay_fresh_via_multicast() {
    let sys = RtSystem::builder()
        .term(Dur::from_millis(200))
        .installed_file("/bin/latex", b"v1".as_ref())
        .installed_multicast(Dur::from_millis(100), Dur::from_millis(400))
        .clients(2)
        .start();
    let latex = sys.lookup("/bin/latex").unwrap();
    let c0 = sys.client(0);
    c0.read(latex).unwrap();
    // Multicast extensions keep the lease alive well past the base term.
    std::thread::sleep(Duration::from_millis(500));
    let (_, _, from_cache) = c0.read_detailed(latex).unwrap();
    assert!(
        from_cache,
        "installed lease should have been extended by multicast"
    );

    // Install a new version: delayed update, then clients see v2.
    sys.install(latex, b"v2".as_ref());
    std::thread::sleep(Duration::from_millis(700));
    assert_eq!(c0.read(latex).unwrap(), Bytes::from_static(b"v2"));
    sys.shutdown();
}

#[test]
fn concurrent_writers_serialize() {
    let sys = two_client_system(300);
    let a = sys.lookup("/data/a").unwrap();
    let mut handles = Vec::new();
    for i in 0..2 {
        let c = sys.client(i);
        handles.push(std::thread::spawn(move || {
            let mut versions = Vec::new();
            for k in 0..10 {
                let v = c.write(a, format!("w{i}-{k}").into_bytes()).unwrap();
                versions.push(v.0);
            }
            versions
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    // 20 writes, each a distinct version 2..=21: no lost updates.
    assert_eq!(all, (2..=21).collect::<Vec<u64>>());
    let stats = sys.server_stats().unwrap();
    assert_eq!(
        stats.writes_committed, 22,
        "20 client writes + 2 initial loads"
    );
    sys.shutdown();
}

#[test]
fn stats_reflect_protocol_activity() {
    let sys = two_client_system(300);
    let a = sys.lookup("/data/a").unwrap();
    let c0 = sys.client(0);
    c0.read(a).unwrap();
    c0.read(a).unwrap();
    c0.write(a, b"x".as_ref()).unwrap();
    let s = sys.server_stats().unwrap();
    assert!(s.counters.fetch_rx >= 1);
    assert!(s.counters.writes_rx >= 1);
    sys.shutdown();
}

#[test]
fn repeated_opens_hit_the_name_lease() {
    // §2: "In order to support a repeated open, the cache must also hold
    // the name-to-file binding... and it needs a lease over this
    // information in order to use that information to perform the open."
    let sys = RtSystem::builder()
        .term(Dur::from_millis(2000))
        .file("/doc/paper.tex", b"contents".as_ref())
        .clients(1)
        .start();
    let dir = sys.dir("/doc").unwrap();
    let c = sys.client(0);

    // First open fetches the directory bindings and takes a name lease.
    let id = c.open(dir, "paper.tex").unwrap().expect("bound");
    assert_eq!(id, sys.lookup("/doc/paper.tex").unwrap());
    let before = c.stats().unwrap();

    // Repeated opens are pure cache hits: no further server contact.
    for _ in 0..5 {
        assert_eq!(c.open(dir, "paper.tex").unwrap(), Some(id));
    }
    let after = c.stats().unwrap();
    assert_eq!(after.hits, before.hits + 5, "repeated opens must be local");
    assert_eq!(after.misses_cold, before.misses_cold);

    // The file itself reads normally through its own lease.
    assert_eq!(&c.read(id).unwrap()[..], b"contents");
    sys.shutdown();
}

#[test]
fn rename_invalidates_cached_name_bindings() {
    // §2: "modification of this information, such as renaming the file,
    // would constitute a write" — so it collects the binding-holder's
    // approval and invalidates its cached listing.
    let sys = RtSystem::builder()
        .term(Dur::from_secs(10)) // long leases: only the callback can update
        .file("/doc/draft.tex", b"x".as_ref())
        .clients(2)
        .start();
    let dir = sys.dir("/doc").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    assert!(c0.open(dir, "draft.tex").unwrap().is_some());
    assert!(c1.open(dir, "draft.tex").unwrap().is_some());

    sys.rename(dir, "draft.tex", "final.tex");
    // The rename needs both caches' approvals; once it lands, the old
    // binding is gone and the new one resolves on the next open.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let old = c0.open(dir, "draft.tex").unwrap();
        let new = c0.open(dir, "final.tex").unwrap();
        if old.is_none() && new.is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "rename did not become visible");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(c1.open(dir, "final.tex").unwrap().is_some());
    let s = c1.stats().unwrap();
    assert!(
        s.invalidations >= 1,
        "the name lease must have been invalidated"
    );
    sys.shutdown();
}

#[test]
fn create_and_unlink_flow_through_name_leases() {
    let sys = RtSystem::builder()
        .term(Dur::from_secs(5))
        .file("/data/seed", b"s".as_ref())
        .clients(1)
        .start();
    let dir = sys.dir("/data").unwrap();
    let c = sys.client(0);
    assert!(c.open(dir, "ghost").unwrap().is_none());

    sys.create(dir, "ghost");
    let deadline = Instant::now() + Duration::from_secs(5);
    let id = loop {
        if let Some(id) = c.open(dir, "ghost").unwrap() {
            break id;
        }
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    };
    // The fresh file is readable (empty).
    assert_eq!(c.read(id).unwrap().len(), 0);

    sys.unlink(dir, "ghost");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if c.open(dir, "ghost").unwrap().is_none() {
            break;
        }
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(20));
    }
    sys.shutdown();
}

#[test]
fn sharded_runtime_preserves_cross_client_consistency() {
    // Many files spread across 4 shard workers: invalidation of another
    // client's cache must work wherever each file's lease lives, and the
    // merged stats must see every shard's traffic.
    let mut b = RtSystem::builder()
        .term(Dur::from_millis(400))
        .retry_interval(Dur::from_millis(30))
        .max_retries(100)
        .clients(2)
        .shards(4);
    for i in 0..12 {
        b = b.file(&format!("/data/f{i}"), format!("v{i}").into_bytes());
    }
    let sys = b.start();
    let (c0, c1) = (sys.client(0), sys.client(1));
    for i in 0..12 {
        let f = sys.lookup(&format!("/data/f{i}")).unwrap();
        assert_eq!(c1.read(f).unwrap(), Bytes::from(format!("v{i}")));
        c0.write(f, format!("w{i}").into_bytes()).unwrap();
        assert_eq!(
            c1.read(f).unwrap(),
            Bytes::from(format!("w{i}")),
            "client 1 must see client 0's write through shard {i}'s lease"
        );
    }
    let s = sys.server_stats().unwrap();
    // 12 writes seeding the files at startup plus the 12 written here.
    assert_eq!(s.writes_committed, 24);
    assert!(
        s.counters.fetch_rx >= 12,
        "merged counters cover all shards"
    );
    sys.shutdown();
}
