//! End-to-end tests of the replicated topology: N grantor replicas over
//! one durable store, clients failing over to the current grantor.
//!
//! The acceptance bar is the satellite requirement: killing the grantor
//! produces zero oracle violations and a bounded added delay — the next
//! retransmission simply lands on the successor once its takeover
//! recovery completes.

use std::time::{Duration, Instant};

use bytes::Bytes;
use lease_clock::Dur;
use lease_faults::check_history;
use lease_quorum::QuorumConfig;
use lease_rt::ReplicatedSystem;

/// Fast quorum tuning so takeovers land well inside the test budget.
fn quick_quorum() -> QuorumConfig {
    QuorumConfig {
        term: Dur::from_millis(250),
        max_term: Dur::from_millis(550),
        op_timeout: Dur::from_millis(60),
        retry_base: Dur::from_millis(10),
        stagger: Dur::from_millis(15),
        ..QuorumConfig::default()
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, timeout: Duration, f: F) {
    let start = Instant::now();
    while !f() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The quiet path: one replica wins the election and serves reads and
/// writes exactly like the single server, cache hits included.
#[test]
fn replicated_system_serves_reads_and_writes() {
    let sys = ReplicatedSystem::builder()
        .term(Dur::from_millis(200))
        .retry_interval(Dur::from_millis(20))
        .max_retries(100)
        .quorum(quick_quorum())
        .clients(2)
        .file("/data/a", b"v0".as_ref())
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    assert_eq!(c0.read(a).unwrap(), Bytes::from_static(b"v0"));
    let (_, _, from_cache) = c0.read_detailed(a).unwrap();
    assert!(
        from_cache,
        "second read inside the term must be a cache hit"
    );

    c1.write(a, b"v1".as_ref()).unwrap();
    assert_eq!(c0.read(a).unwrap(), Bytes::from_static(b"v1"));
    assert!(sys.current_grantor().is_some());

    let history = sys.history();
    sys.shutdown();
    let res = check_history(&history);
    assert!(res.is_ok(), "violations: {:?}", res.err());
}

/// Satellite acceptance: kill the grantor mid-workload. A successor takes
/// over, clients fail over through retransmission alone, the post-kill
/// write completes within a bounded delay, and the oracle accepts the
/// whole history.
#[test]
fn killed_grantor_fails_over_with_no_violations_and_bounded_delay() {
    let sys = ReplicatedSystem::builder()
        .term(Dur::from_millis(150))
        .retry_interval(Dur::from_millis(20))
        .max_retries(200)
        .quorum(quick_quorum())
        .clients(2)
        .file("/data/a", b"v0".as_ref())
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    // Warm up through the first grantor: both clients hold leases its
    // death will orphan.
    assert_eq!(c0.read(a).unwrap(), Bytes::from_static(b"v0"));
    c1.write(a, b"v1".as_ref()).unwrap();
    let first = sys.current_grantor().expect("a grantor served the warmup");

    sys.kill_replica(first);

    // The write straddling the takeover: it must reach the successor via
    // ordinary retransmission and commit once §5 recovery lets writes
    // through. Budget = grantor-lease expiry on the surviving acceptors
    // (~250 ms) + election + the successor's recovery window (~150 ms
    // file term), with generous headroom for load.
    let t0 = Instant::now();
    c0.write(a, b"v2".as_ref()).unwrap();
    let delay = t0.elapsed();
    assert!(
        delay < Duration::from_secs(4),
        "failover took {delay:?}, expected bounded takeover"
    );

    wait_for(
        "successor grantor",
        Duration::from_secs(5),
        || matches!(sys.current_grantor(), Some(g) if g != first),
    );

    // Post-takeover reads see the committed write (the successor granted
    // nothing until every lease of its predecessor could have expired).
    assert_eq!(c1.read(a).unwrap(), Bytes::from_static(b"v2"));

    let history = sys.history();
    sys.shutdown();
    let res = check_history(&history);
    assert!(res.is_ok(), "violations: {:?}", res.err());
}

/// Killing grantors repeatedly — every replica in turn — never corrupts
/// the history: each successor defers until its predecessor's grants are
/// dead, and clients just keep retrying.
#[test]
fn rolling_grantor_kills_keep_history_consistent() {
    let sys = ReplicatedSystem::builder()
        .term(Dur::from_millis(120))
        .retry_interval(Dur::from_millis(15))
        .max_retries(300)
        .quorum(quick_quorum())
        .clients(2)
        .file("/data/a", b"r0".as_ref())
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    assert_eq!(c0.read(a).unwrap(), Bytes::from_static(b"r0"));
    for round in 1..=3u32 {
        if let Some(g) = sys.current_grantor() {
            sys.kill_replica(g);
        }
        let data = format!("r{round}");
        c1.write(a, data.clone().into_bytes()).unwrap();
        assert_eq!(c0.read(a).unwrap(), Bytes::from(data.into_bytes()));
    }

    let history = sys.history();
    sys.shutdown();
    let res = check_history(&history);
    assert!(res.is_ok(), "violations: {:?}", res.err());
}
