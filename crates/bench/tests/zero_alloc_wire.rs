//! Acceptance check for the wire codec's receive path: zero heap
//! allocations on the decode → stage → publish round trip once the
//! buffers are warm.
//!
//! This is the tentpole claim of the socket transport: a frame that
//! arrives in a reused receive buffer is decoded **in place**
//! (`frame_messages` borrows the buffer; `next_c2s` slices it), each
//! message's deadline is re-anchored on the local clock (the T-Lease
//! rule: the wire carries remaining durations, never remote absolute
//! times), the burst is staged into a reused buffer, and published into
//! the same SPSC ring the in-process path uses. After warm-up, a full
//! round performs **zero** heap allocations — the socket boundary adds
//! syscalls, not allocator traffic.
//!
//! Only built with `--features alloc-count` (which swaps in the counting
//! global allocator); run it as
//!
//! ```text
//! cargo test -p lease-bench --features alloc-count --test zero_alloc_wire
//! ```
//!
//! The test lives alone in this file on purpose: integration tests in
//! one file share a process, and a concurrently running test allocating
//! on another thread would charge its allocations to our window. For the
//! same reason decode and drain run on this one thread.

#![cfg(feature = "alloc-count")]

use lease_bench::allocations;
use lease_clock::{Clock, Dur, Time, WallClock};
use lease_core::ring::{spsc, Consumer, Doorbell, Producer};
use lease_core::{ClientId, ReqId, ToServer, Version};
use lease_wire::{frame_messages, Dir, FrameBuilder};

const BURST: usize = 256;
const CAPACITY: usize = 1024;

type Msg = ToServer<u64, u64>;
/// What the transport stages per message: sender, message, re-anchored
/// deadline — the same triple `BatchBuf::push_deadline` carries.
type Staged = (ClientId, Msg, Option<Time>);

/// Encode one C2S frame the way a generator would: a burst of fetches
/// and writes, most carrying a propagated deadline.
fn encode_frame() -> Vec<u8> {
    let mut wire = Vec::new();
    let mut fb = FrameBuilder::begin(&mut wire, Dir::C2s, ClientId(7));
    for i in 0..BURST as u64 {
        let deadline = if i % 4 == 0 {
            None
        } else {
            Some(Dur::from_millis(250 + i))
        };
        if i % 8 == 0 {
            fb.push_c2s(
                &mut wire,
                &Msg::Write {
                    req: ReqId(i),
                    resource: i % 32,
                    data: i,
                },
                deadline,
            );
        } else {
            fb.push_c2s(
                &mut wire,
                &Msg::Fetch {
                    req: ReqId(i),
                    resource: i % 32,
                    cached: Some(Version(1)),
                    also_extend: Vec::new(),
                },
                deadline,
            );
        }
    }
    fb.finish(&mut wire);
    wire
}

/// One steady-state round: decode the frame in place, re-anchor every
/// deadline on the local clock, stage the burst, publish it through the
/// ring with `push_from`, ring the doorbell, and drain it back. Returns
/// the heap allocations the round performed.
fn round(
    frame: &[u8],
    clock: &WallClock,
    tx: &mut Producer<Staged>,
    rx: &mut Consumer<Staged>,
    bell: &Doorbell,
    stage: &mut Vec<Staged>,
    batch: &mut Vec<Staged>,
) -> u64 {
    let before = allocations().expect("alloc-count feature is on");
    let (h, mut it) = frame_messages(frame).expect("well-formed frame");
    assert_eq!(h.dir, Dir::C2s);
    let now = clock.now();
    stage.clear();
    while let Some((msg, remaining)) = it.next_c2s::<u64, u64>().expect("decode") {
        let deadline = remaining.map(|rem| now.saturating_add(rem));
        stage.push((h.from, msg, deadline));
    }
    let mut sent = 0usize;
    while !stage.is_empty() {
        let pushed = tx.push_from(stage);
        assert!(pushed > 0, "ring full with an empty consumer side");
        sent += pushed;
        bell.ring();
    }
    let ticket = bell.ticket();
    batch.clear();
    let mut got = 0usize;
    while got < sent {
        got += rx.drain_into(batch, BURST);
    }
    assert!(
        !bell.wait(ticket, std::time::Duration::ZERO) || true,
        "wait() must return without parking once the seq advanced"
    );
    assert_eq!(got, BURST);
    allocations().expect("alloc-count feature is on") - before
}

#[test]
fn steady_state_decode_stage_publish_is_allocation_free() {
    let frame = encode_frame();
    let clock = WallClock::new();
    let (mut tx, mut rx) = spsc::<Staged>(CAPACITY);
    let bell = Doorbell::new();
    let mut stage: Vec<Staged> = Vec::new();
    let mut batch: Vec<Staged> = Vec::new();

    // Warm-up rounds grow the stage and drain buffers to their
    // high-water marks (the ring preallocates every slot up front; the
    // decode itself borrows the frame and owns nothing).
    let mut per_round = Vec::new();
    for _ in 0..16 {
        per_round.push(round(
            &frame, &clock, &mut tx, &mut rx, &bell, &mut stage, &mut batch,
        ));
    }
    // ...after which the hot loop must not touch the allocator at all.
    let tail = &per_round[per_round.len() - 8..];
    assert!(
        tail.iter().all(|&a| a == 0),
        "steady-state decode rounds still allocate: {per_round:?}"
    );

    // The staged deadlines really were re-anchored: every deadline the
    // wire carried as "remaining" is now an absolute local time at or
    // after `now`.
    let (_, mut it) = frame_messages(&frame).expect("frame");
    let mut wire_deadlines = 0usize;
    while let Some((_, rem)) = it.next_c2s::<u64, u64>().expect("decode") {
        wire_deadlines += usize::from(rem.is_some());
    }
    let staged_deadlines = batch.iter().filter(|(_, _, d)| d.is_some()).count();
    assert_eq!(staged_deadlines, wire_deadlines);
    assert!(rx.is_empty() && tx.is_empty());
}
