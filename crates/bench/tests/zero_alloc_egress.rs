//! Acceptance check for the SPSC ring *egress*: zero heap allocations
//! on the outbox → publish → doorbell → client-drain round trip once
//! the lanes are warm.
//!
//! The egress mirror of `zero_alloc_ring`: a shard worker's reply flush
//! — grouping an outbox into same-client runs, publishing each run with
//! one `push_from` through [`EgressWorker::deliver_batch`], ringing
//! each touched client's doorbell once — and the client side's
//! round-robin [`EgressRx::drain_into`] must together perform **zero**
//! heap allocations after warm-up. The payload is `ToClient::WriteDone`
//! with `D = u64`, which owns no heap data.
//!
//! Only built with `--features alloc-count` (which swaps in the
//! counting global allocator); run it as
//!
//! ```text
//! cargo test -p lease-bench --features alloc-count --test zero_alloc_egress
//! ```
//!
//! The test lives alone in this file on purpose: integration tests in
//! one file share a process, and a concurrently running test allocating
//! on another thread would charge its allocations to our window. Both
//! ends run on this one thread for the same reason.

#![cfg(feature = "alloc-count")]

use lease_bench::allocations;
use lease_clock::Dur;
use lease_core::{ClientId, ReqId, ToClient, Version};
use lease_svc::{Egress, EgressRx, EgressWorker};

const CLIENTS: usize = 4;
const BURST: usize = 256;
const CAPACITY: usize = 1024;

type Msg = ToClient<u64, u64>;

/// One steady-state flush: stage a burst of replies spread over every
/// client in run-clustered order (exactly how a shard outbox looks),
/// deliver the whole flush, then drain each client's lanes. Returns
/// the heap allocations the round performed.
fn round(
    worker: &mut EgressWorker<u64, u64>,
    rxs: &mut [EgressRx<u64, u64>],
    outbox: &mut Vec<(ClientId, Msg)>,
    batch: &mut Vec<Msg>,
    epoch: u64,
) -> u64 {
    let before = allocations().expect("alloc-count feature is on");
    outbox.clear();
    for c in 0..CLIENTS {
        for i in 0..(BURST / CLIENTS) as u64 {
            outbox.push((
                ClientId(c as u32),
                ToClient::WriteDone {
                    req: ReqId(epoch * BURST as u64 + i),
                    resource: i % 32,
                    version: Version(epoch),
                    term: Dur::from_secs(1),
                },
            ));
        }
    }
    worker.deliver_batch(outbox);
    let mut got = 0usize;
    for rx in rxs.iter_mut() {
        // The client's park path: take a ticket, observe the publish,
        // skip the sleep. (A real client parks only on an empty poll.)
        let ticket = rx.bell().ticket();
        batch.clear();
        loop {
            let n = rx.drain_into(batch, BURST);
            got += n;
            if n == 0 {
                break;
            }
        }
        assert!(
            !rx.bell().wait(ticket, std::time::Duration::ZERO) || true,
            "wait() must return without parking once the seq advanced"
        );
    }
    assert_eq!(got, BURST);
    allocations().expect("alloc-count feature is on") - before
}

#[test]
fn steady_state_egress_flush_and_drain_is_allocation_free() {
    let egress: Egress<u64, u64> = Egress::new(CLIENTS, CAPACITY);
    let mut worker = egress.worker();
    let mut rxs: Vec<EgressRx<u64, u64>> = (0..CLIENTS).map(|c| egress.rx(c)).collect();
    let mut outbox: Vec<(ClientId, Msg)> = Vec::new();
    let mut batch: Vec<Msg> = Vec::new();

    // Warm-up rounds create and adopt the lanes and grow the scratch
    // buffers to their high-water marks...
    let mut per_round = Vec::new();
    for epoch in 0..16u64 {
        per_round.push(round(&mut worker, &mut rxs, &mut outbox, &mut batch, epoch));
    }
    // ...after which a full flush + drain must not touch the allocator.
    let tail = &per_round[per_round.len() - 8..];
    assert!(
        tail.iter().all(|&a| a == 0),
        "steady-state egress rounds still allocate: {per_round:?}"
    );
}
