//! The sweep runner's central promise: parallelism changes wall-clock,
//! never results. Each task is a self-contained deterministic simulation,
//! results merge in task order, so any thread count serializes to the
//! same bytes.

use lease_bench::{run_at_term_with, run_sim_sweep, sweep_digest};
use lease_clock::Dur;
use lease_sim::QueueKind;
use lease_workload::VTrace;

#[test]
fn sweep_output_is_byte_identical_across_thread_counts() {
    let trace = VTrace::calibrated(1989).generate();
    let seeds = [7u64, 8];
    let terms = [0.0, 1.0, 10.0];
    let serial = run_sim_sweep(&trace, &seeds, &terms, 1);
    for threads in [2, 4] {
        let parallel = run_sim_sweep(&trace, &seeds, &terms, threads);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "threads={threads} must serialize to the same bytes as serial"
        );
        assert_eq!(sweep_digest(&serial), sweep_digest(&parallel));
    }
}

#[test]
fn sweep_rows_are_seed_major_grid_order() {
    let trace = VTrace::calibrated(1989).generate();
    let rows = run_sim_sweep(&trace, &[7, 8], &[0.0, 10.0], 4);
    let grid: Vec<(u64, f64)> = rows.iter().map(|r| (r.seed, r.term_s)).collect();
    assert_eq!(grid, vec![(7, 0.0), (7, 10.0), (8, 0.0), (8, 10.0)]);
}

/// The wheel-backed queue must be invisible at the experiment level: a
/// full simulated run reports identical results on either backend.
#[test]
fn full_run_reports_match_across_queue_backends() {
    let trace = VTrace::calibrated(1989).generate();
    for term_s in [0.0, 10.0] {
        let term = Dur::from_secs_f64(term_s);
        let wheel = run_at_term_with(&trace, term, 7, QueueKind::Wheel);
        let heap = run_at_term_with(&trace, term, 7, QueueKind::Heap);
        assert_eq!(
            serde_json::to_string(&wheel).unwrap(),
            serde_json::to_string(&heap).unwrap(),
            "term={term_s}s: wheel and heap runs must be observationally identical"
        );
    }
}
