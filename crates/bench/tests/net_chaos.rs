//! The §2/§5 fault-tolerance claim over a *real* process boundary:
//! `kill -9` the server process mid-load, restart it on the same port,
//! and the single-copy oracle must stay silent while clients recover by
//! plain retransmission — no client-side failover code, no session
//! state, exactly the paper's argument that leases make crash recovery
//! a server-local affair.
//!
//! Topology: this test drives a real `lease-rt` [`NetClient`] fleet
//! (retransmission, deadlines, approvals — unchanged from the
//! in-process path) against the `svc_load --net-server` role in a child
//! process. The server persists its maximum granted term to a file
//! (§5: the restarted server defers writes that long) and appends every
//! commit to a per-line-flushed log; a `SIGKILL` can lose nothing a
//! client may have been told about. Client ops are recorded on a
//! [`SysClock`] sharing the server's unix epoch, so the recorder's
//! history and the replayed commit log sit on one true-time axis and
//! `lease_faults::check_history` judges the merged run.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use bytes::Bytes;
use lease_clock::{Clock, Dur, SysClock, Time};
use lease_core::Version;
use lease_faults::check_history;
use lease_rt::{NetClient, NetClientConfig};
use lease_vsys::{History, HistoryEvent};

const BIN: &str = env!("CARGO_BIN_EXE_svc_load");
const TERM_MS: u64 = 300;
const FILES: u64 = 8;
const CLIENTS: u32 = 2;

struct Server {
    child: Child,
    port: u16,
}

fn spawn_server(dir: &std::path::Path, epoch: u64, port: u16) -> Server {
    let mut child = Command::new(BIN)
        .args([
            "--net-server",
            "--data",
            "bytes",
            "--shards",
            "1",
            "--clients",
            &CLIENTS.to_string(),
            "--files",
            &FILES.to_string(),
            "--term-ms",
            &TERM_MS.to_string(),
            "--port",
            &port.to_string(),
            "--term-file",
            dir.join("max_term").to_str().unwrap(),
            "--commit-log",
            dir.join("commits.log").to_str().unwrap(),
            "--epoch-unix-ns",
            &epoch.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn --net-server");
    let stdout = child.stdout.as_mut().expect("server stdout");
    let mut line = String::new();
    let mut rd = BufReader::new(stdout);
    let port = loop {
        line.clear();
        assert!(
            rd.read_line(&mut line).expect("read server stdout") > 0,
            "server exited before printing PORT"
        );
        if let Some(p) = line.strip_prefix("PORT ") {
            break p.trim().parse::<u16>().expect("port number");
        }
    };
    Server { child, port }
}

/// Merge the recorder's client-side history with the server's commit
/// log (one `{resource} {version} {at_ns} x{hex}` line per commit,
/// across both incarnations).
fn merged_history(recorder_history: History, commit_log: &std::path::Path) -> History {
    let mut history = recorder_history;
    let text = std::fs::read_to_string(commit_log).expect("read commit log");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.split_whitespace();
        let resource: u64 = parts.next().unwrap().parse().expect("resource");
        let version: u64 = parts.next().unwrap().parse().expect("version");
        let at_ns: u64 = parts.next().unwrap().parse().expect("at_ns");
        history.push(HistoryEvent::Commit {
            resource,
            version: Version(version),
            writer: None, // the log records the commit, not who asked
            at: Time(at_ns),
        });
    }
    history
}

#[test]
fn sigkill_and_restart_mid_load_keeps_the_oracle_silent() {
    let dir = std::env::temp_dir().join(format!(
        "lease-net-chaos-{}-{}",
        std::process::id(),
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let epoch = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;

    let first = spawn_server(&dir, epoch, 0);
    let port = first.port;

    let clock: Arc<dyn Clock> = Arc::new(SysClock::new(epoch));
    let mut cfg = NetClientConfig::new(format!("127.0.0.1:{port}").parse().unwrap(), CLIENTS);
    // Tight retransmission and a deep retry budget: the client must ride
    // out a dead server plus the §5 write-deferral window (one max term)
    // on plain resends, not client smarts.
    cfg.retry_interval = Dur::from_millis(25);
    cfg.max_retries = 400;
    cfg.clock = Some(Arc::clone(&clock));
    let fleet = NetClient::connect(cfg);

    let stop = AtomicBool::new(false);
    let restarted = AtomicBool::new(false);
    let post_restart_reads = AtomicU64::new(0);
    let post_restart_writes = AtomicU64::new(0);

    let second = std::thread::scope(|s| {
        for i in 0..CLIENTS as usize {
            let client = fleet.client(i);
            let (stop, restarted) = (&stop, &restarted);
            let (reads, writes) = (&post_restart_reads, &post_restart_writes);
            s.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    n += 1;
                    let resource = (n * 7 + i as u64) % FILES;
                    if n.is_multiple_of(8) {
                        let payload = Bytes::from(format!("c{i}-op{n}"));
                        if client.write(resource, payload).is_ok()
                            && restarted.load(Ordering::Relaxed)
                        {
                            writes.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if client.read(resource).is_ok() && restarted.load(Ordering::Relaxed) {
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                    // A breather keeps some ops in flight at kill time
                    // without saturating one core.
                    if n.is_multiple_of(16) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            });
        }

        // Load for a while, then SIGKILL mid-flight: no shutdown
        // handshake, no flush beyond the per-line commit log.
        std::thread::sleep(Duration::from_millis(600));
        let mut victim = first;
        victim.child.kill().expect("SIGKILL server");
        let _ = victim.child.wait();

        std::thread::sleep(Duration::from_millis(200));
        let second = spawn_server(&dir, epoch, port);
        restarted.store(true, Ordering::Relaxed);

        // Clients must come back through retransmission alone. Give them
        // the recovery window (one max term of deferred writes) and a
        // little steady state on top.
        std::thread::sleep(Duration::from_millis(1_500));
        stop.store(true, Ordering::Relaxed);
        second
    });

    // Ops must have completed against the restarted server.
    assert!(
        post_restart_reads.load(Ordering::Relaxed) > 0,
        "no read completed after the restart: clients did not recover"
    );
    assert!(
        post_restart_writes.load(Ordering::Relaxed) > 0,
        "no write completed after the restart: clients did not recover"
    );

    let history = fleet.recorder().snapshot();
    fleet.shutdown();

    // Clean shutdown of the second incarnation: closing stdin asks it to
    // exit (and flush); reap it.
    let mut second = second;
    drop(second.child.stdin.take());
    let started = Instant::now();
    while started.elapsed() < Duration::from_secs(5) {
        if second.child.try_wait().expect("try_wait").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = second.child.kill();
    let _ = second.child.wait();

    let merged = merged_history(history, &dir.join("commits.log"));
    assert!(!merged.events.is_empty(), "nothing was recorded");
    if let Err(violations) = check_history(&merged) {
        panic!(
            "kill -9 + restart broke single-copy semantics: {} violation(s), first: {:?}",
            violations.len(),
            violations[0]
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
