//! Acceptance check for the SPSC ring ingress: zero heap allocations on
//! the stage → publish → drain round trip once the buffers are warm.
//!
//! The ring is the per-producer hot path into a shard worker; its whole
//! point is that a steady-state send costs two atomic stores and no
//! allocator traffic. This pins that: after warm-up, a full round —
//! staging a burst of protocol messages into a reused buffer, publishing
//! them with one `push_from`, ringing the doorbell, and draining them
//! with one `drain_into` — performs **zero** heap allocations.
//!
//! Only built with `--features alloc-count` (which swaps in the counting
//! global allocator); run it as
//!
//! ```text
//! cargo test -p lease-bench --features alloc-count --test zero_alloc_ring
//! ```
//!
//! The test lives alone in this file on purpose: integration tests in one
//! file share a process, and a concurrently running test allocating on
//! another thread would charge its allocations to our window. For the
//! same reason both ends of the ring run on this one thread — a real
//! shard worker would drain from its own core, but its allocations would
//! be indistinguishable from ours.

#![cfg(feature = "alloc-count")]

use lease_bench::allocations;
use lease_core::ring::{spsc, Consumer, Doorbell, Producer};
use lease_core::{ReqId, ToServer};

const BURST: usize = 256;
const CAPACITY: usize = 1024;

type Msg = ToServer<u64, u64>;

/// One steady-state round: stage a burst of writes (heap-free payloads —
/// `Write` carries no owned data for `D = u64`), publish the whole burst
/// through the ring, signal the doorbell, and drain it back. Returns the
/// heap allocations the round performed.
fn round(
    tx: &mut Producer<Msg>,
    rx: &mut Consumer<Msg>,
    bell: &Doorbell,
    stage: &mut Vec<Msg>,
    batch: &mut Vec<Msg>,
    epoch: u64,
) -> u64 {
    let before = allocations().expect("alloc-count feature is on");
    stage.clear();
    for i in 0..BURST as u64 {
        stage.push(ToServer::Write {
            req: ReqId(epoch * BURST as u64 + i),
            resource: i % 32,
            data: epoch,
        });
    }
    let mut sent = 0usize;
    while !stage.is_empty() {
        let pushed = tx.push_from(stage);
        assert!(pushed > 0, "ring full with an empty consumer side");
        sent += pushed;
        bell.ring();
    }
    // The consumer's park path: take a ticket, observe the publish, skip
    // the sleep. (A real worker parks only when the poll finds nothing.)
    let ticket = bell.ticket();
    batch.clear();
    let mut got = 0usize;
    while got < sent {
        got += rx.drain_into(batch, BURST);
    }
    assert!(
        !bell.wait(ticket, std::time::Duration::ZERO) || true,
        "wait() must return without parking once the seq advanced"
    );
    assert_eq!(got, BURST);
    allocations().expect("alloc-count feature is on") - before
}

#[test]
fn steady_state_ring_publish_and_drain_is_allocation_free() {
    let (mut tx, mut rx) = spsc::<Msg>(CAPACITY);
    let bell = Doorbell::new();
    let mut stage: Vec<Msg> = Vec::new();
    let mut batch: Vec<Msg> = Vec::new();

    // Warm-up rounds grow the stage and drain buffers to their high-water
    // marks (the ring itself preallocates every slot at construction).
    let mut per_round = Vec::new();
    for epoch in 0..16u64 {
        per_round.push(round(
            &mut tx, &mut rx, &bell, &mut stage, &mut batch, epoch,
        ));
    }
    // ...after which the hot loop must not touch the allocator at all.
    let tail = &per_round[per_round.len() - 8..];
    assert!(
        tail.iter().all(|&a| a == 0),
        "steady-state ring rounds still allocate: {per_round:?}"
    );
    assert!(rx.is_empty() && tx.is_empty());
}
