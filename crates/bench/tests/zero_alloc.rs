//! Acceptance check for the slab lease table: zero heap allocations on
//! grant / extend / release / prune once the table is warm.
//!
//! Only built with `--features alloc-count` (which swaps in the counting
//! global allocator); run it as
//!
//! ```text
//! cargo test -p lease-bench --features alloc-count --test zero_alloc
//! ```
//!
//! The test lives alone in this file on purpose: integration tests in one
//! file share a process, and a concurrently running test allocating on
//! another thread would charge its allocations to our window.
#![cfg(feature = "alloc-count")]

use lease_bench::allocations;
use lease_clock::Time;
use lease_core::table::{LeaseHandle, SlabTable};
use lease_core::ClientId;

const RESOURCES: u64 = 64;
const CLIENTS: u32 = 8;
const STEP: u64 = 1_000_000; // one slab tick (1 ms) in ns

/// One steady-state round: every lease renewed to a later deadline, a
/// subset released and re-granted (free-list churn), then a prune that
/// advances past the superseded deadlines so the wheel drains its stale
/// entries. Returns the heap allocations the round performed.
fn round(table: &mut SlabTable<u64>, handles: &mut [LeaseHandle], epoch: u64) -> u64 {
    let before = allocations().expect("alloc-count feature is on");
    let expiry = Time((epoch + 2) * STEP);
    for r in 0..RESOURCES {
        for c in 0..CLIENTS {
            let i = (r * u64::from(CLIENTS) + u64::from(c)) as usize;
            handles[i] = table.extend(handles[i], r, ClientId(c), expiry);
        }
    }
    // Release one client per resource and grant it back: exercises
    // unlink, free-list push, free-list pop, and relink.
    for r in 0..RESOURCES {
        let c = ClientId((epoch % u64::from(CLIENTS)) as u32);
        table.release(r, c);
        let i = (r * u64::from(CLIENTS) + u64::from(c.0)) as usize;
        handles[i] = table.grant(r, c, expiry);
    }
    table.prune(Time((epoch + 1) * STEP + STEP / 2));
    allocations().expect("alloc-count feature is on") - before
}

#[test]
fn steady_state_grant_extend_release_prune_is_allocation_free() {
    let mut table: SlabTable<u64> = SlabTable::new();
    let mut handles = vec![LeaseHandle::NULL; (RESOURCES * u64::from(CLIENTS)) as usize];
    for r in 0..RESOURCES {
        for c in 0..CLIENTS {
            let i = (r * u64::from(CLIENTS) + u64::from(c)) as usize;
            handles[i] = table.grant(r, ClientId(c), Time(2 * STEP));
        }
    }

    // Warm-up rounds grow slab, wheel slots, and scratch buffers to their
    // steady-state high-water marks. One round advances one wheel tick, so
    // a full revolution of the 64-slot innermost ring is needed before
    // every slot Vec has seen its high-water occupancy.
    let mut per_round = Vec::new();
    for epoch in 1..=80u64 {
        per_round.push(round(&mut table, &mut handles, epoch));
    }
    // ...after which the hot loop must not touch the allocator at all.
    let tail = &per_round[per_round.len() - 8..];
    assert!(
        tail.iter().all(|&a| a == 0),
        "steady-state rounds still allocate: {per_round:?}"
    );
    assert_eq!(table.len(), (RESOURCES * u64::from(CLIENTS)) as usize);
}
