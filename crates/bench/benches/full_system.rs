//! End-to-end benchmark: simulated seconds per wall second for the full
//! V-style system, the number that determines how long the figure
//! regenerators take.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lease_clock::Dur;
use lease_vsys::{run_trace, SystemConfig, TermSpec};
use lease_workload::{PoissonWorkload, VTrace};

fn compile_trace(c: &mut Criterion) {
    let trace = VTrace::calibrated(1989).generate();
    let mut group = c.benchmark_group("full_system/v_compile_trace_17min");
    group.sample_size(10);
    for term in [0u64, 10] {
        group.bench_function(format!("term_{term}s"), |b| {
            b.iter(|| {
                let cfg = SystemConfig {
                    term: TermSpec::Fixed(Dur::from_secs(term)),
                    seed: 7,
                    ..SystemConfig::default()
                };
                black_box(run_trace(&cfg, &trace).consistency_msgs)
            });
        });
    }
    group.finish();
}

fn poisson_multi_client(c: &mut Criterion) {
    let trace = PoissonWorkload::v_rates(20, 5, Dur::from_secs(120), 3).generate();
    let mut group = c.benchmark_group("full_system/poisson_20_clients_2min");
    group.sample_size(10);
    group.bench_function("term_10s", |b| {
        b.iter(|| {
            let cfg = SystemConfig {
                term: TermSpec::Fixed(Dur::from_secs(10)),
                seed: 7,
                ..SystemConfig::default()
            };
            black_box(run_trace(&cfg, &trace).consistency_msgs)
        });
    });
    group.finish();
}

criterion_group!(benches, compile_trace, poisson_multi_client);
criterion_main!(benches);
