//! Benchmarks of the discrete-event kernel: event throughput bounds how
//! large an experiment the harness can run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lease_clock::Time;
use lease_sim::{Actor, ActorId, Ctx, EventQueue, PerfectMedium, World};

fn event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(Time(i * 7919 % 65_536), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

struct Pinger {
    peer: ActorId,
    left: u32,
}

impl Actor<u32> for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        if self.left > 0 {
            ctx.send(self.peer, self.left);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: ActorId, msg: u32) {
        if msg > 1 {
            ctx.send(from, msg - 1);
        } else {
            ctx.stop();
        }
    }
}

fn actor_messaging(c: &mut Criterion) {
    c.bench_function("sim/ping_pong_20k_msgs", |b| {
        b.iter(|| {
            let mut w = World::new(1, PerfectMedium);
            let a = w.add_actor(Pinger {
                peer: ActorId(1),
                left: 20_000,
            });
            let _b = w.add_actor(Pinger { peer: a, left: 0 });
            w.run(1_000_000);
            black_box(w.events_processed())
        });
    });
}

criterion_group!(benches, event_queue, actor_messaging);
criterion_main!(benches);
