//! Micro-benchmarks of the server's lease table — the soft state the
//! paper sizes at "a couple of pointers" per lease (§2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lease_clock::Time;
use lease_core::{ClientId, LeaseTable};

fn grant(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_table/grant");
    for &n in &[100u64, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                LeaseTable::<u64>::new,
                |mut table| {
                    for i in 0..n {
                        table.grant(i % 256, ClientId((i % 64) as u32), Time(i + 1_000_000));
                    }
                    black_box(table.len())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn holders_query(c: &mut Criterion) {
    let mut table = LeaseTable::<u64>::new();
    for i in 0..10_000u64 {
        table.grant(
            i % 128,
            ClientId((i % 100) as u32),
            Time::from_secs(10 + i % 50),
        );
    }
    c.bench_function("lease_table/holders_at", |b| {
        b.iter(|| black_box(table.holders_at(black_box(64), Time::from_secs(30)).len()));
    });
    c.bench_function("lease_table/max_expiry", |b| {
        b.iter(|| black_box(table.max_expiry(black_box(64), Time::from_secs(30))));
    });
}

fn prune(c: &mut Criterion) {
    c.bench_function("lease_table/prune_half", |b| {
        b.iter_batched(
            || {
                let mut t = LeaseTable::<u64>::new();
                for i in 0..10_000u64 {
                    t.grant(
                        i,
                        ClientId(0),
                        Time::from_secs(if i % 2 == 0 { 1 } else { 100 }),
                    );
                }
                t
            },
            |mut t| black_box(t.prune(Time::from_secs(50))),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn svc(c: &mut Criterion) {
    use lease_clock::Dur;
    use lease_svc::{shard_of, TimerWheel};

    // Sharded vs single-table grant throughput: the same 10k grants routed
    // by file-id hash into k independent tables — what the sharded service
    // does — against one monolithic table.
    let mut group = c.benchmark_group("svc/sharded_grant");
    for &k in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter_batched(
                || (0..k).map(|_| LeaseTable::<u64>::new()).collect::<Vec<_>>(),
                |mut tables| {
                    for i in 0..10_000u64 {
                        let r = i % 512;
                        tables[shard_of(&r, k)].grant(
                            r,
                            ClientId((i % 64) as u32),
                            Time(i + 1_000_000),
                        );
                    }
                    black_box(tables.iter().map(|t| t.len()).sum::<usize>())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // Expiry dispatch: advancing the hierarchical timer wheel through 10k
    // scattered deadlines vs repeatedly pruning the table's expiry index.
    c.bench_function("svc/expiry/wheel_advance", |b| {
        b.iter_batched(
            || {
                let mut w = TimerWheel::new(Dur(1_000), Time::ZERO);
                for i in 0..10_000u64 {
                    w.schedule(Time(1_000 + i * 7_919), i);
                }
                w
            },
            |mut w| {
                let mut fired = 0usize;
                let mut now = 0u64;
                while !w.is_empty() {
                    now += 1_000_000;
                    fired += w.advance(Time(now)).len();
                }
                black_box(fired)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    c.bench_function("svc/expiry/table_scan_prune", |b| {
        b.iter_batched(
            || {
                let mut t = LeaseTable::<u64>::new();
                for i in 0..10_000u64 {
                    t.grant(i, ClientId(0), Time(1_000 + i * 7_919));
                }
                t
            },
            |mut t| {
                let mut fired = 0usize;
                let mut now = 0u64;
                while !t.is_empty() {
                    now += 1_000_000;
                    fired += t.prune(Time(now));
                }
                black_box(fired)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, grant, holders_query, prune, svc);
criterion_main!(benches);
