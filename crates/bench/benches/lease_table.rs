//! Micro-benchmarks of the server's lease table — the soft state the
//! paper sizes at "a couple of pointers" per lease (§2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lease_clock::Time;
use lease_core::{ClientId, LeaseTable};

fn grant(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_table/grant");
    for &n in &[100u64, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                LeaseTable::<u64>::new,
                |mut table| {
                    for i in 0..n {
                        table.grant(i % 256, ClientId((i % 64) as u32), Time(i + 1_000_000));
                    }
                    black_box(table.len())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn holders_query(c: &mut Criterion) {
    let mut table = LeaseTable::<u64>::new();
    for i in 0..10_000u64 {
        table.grant(
            i % 128,
            ClientId((i % 100) as u32),
            Time::from_secs(10 + i % 50),
        );
    }
    c.bench_function("lease_table/holders_at", |b| {
        b.iter(|| black_box(table.holders_at(black_box(64), Time::from_secs(30)).len()));
    });
    c.bench_function("lease_table/max_expiry", |b| {
        b.iter(|| black_box(table.max_expiry(black_box(64), Time::from_secs(30))));
    });
}

fn prune(c: &mut Criterion) {
    c.bench_function("lease_table/prune_half", |b| {
        b.iter_batched(
            || {
                let mut t = LeaseTable::<u64>::new();
                for i in 0..10_000u64 {
                    t.grant(
                        i,
                        ClientId(0),
                        Time::from_secs(if i % 2 == 0 { 1 } else { 100 }),
                    );
                }
                t
            },
            |mut t| black_box(t.prune(Time::from_secs(50))),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, grant, holders_query, prune);
criterion_main!(benches);
