//! Micro-benchmarks of the server's lease table — the soft state the
//! paper sizes at "a couple of pointers" per lease (§2).
//!
//! Every group runs the shipping slab table (`table::slab`) against the
//! map+`BTreeSet` reference (`table::reference`) so the speedup — the
//! acceptance number for the slab rework — is read directly off one run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lease_clock::Time;
use lease_core::table::{LeaseHandle, ReferenceTable, SlabTable};
use lease_core::{ClientId, LeaseTable};

const N: u64 = 10_000;

fn record(i: u64) -> (u64, ClientId, Time) {
    (i % 256, ClientId((i % 64) as u32), Time(i + 1_000_000_000))
}

fn grant(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_table/grant");
    group.bench_with_input(BenchmarkId::from_parameter("slab"), &N, |b, &n| {
        b.iter_batched(
            SlabTable::<u64>::new,
            |mut table| {
                for i in 0..n {
                    let (r, cl, e) = record(i);
                    table.grant(r, cl, e);
                }
                black_box(table.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &N, |b, &n| {
        b.iter_batched(
            ReferenceTable::<u64>::new,
            |mut table| {
                for i in 0..n {
                    let (r, cl, e) = record(i);
                    table.grant(r, cl, e);
                }
                black_box(table.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn renewal(c: &mut Criterion) {
    // The single hottest server operation: every lease re-extended to a
    // later deadline. The slab takes the handle fast path (one slab load);
    // the reference re-probes two maps and churns its B-tree index. Each
    // iteration ends with the steady-state prune a live server performs —
    // for the slab it drains the wheel's superseded entries, for the
    // reference it finds nothing expired.
    let mut group = c.benchmark_group("lease_table/renewal");
    group.bench_with_input(BenchmarkId::from_parameter("slab"), &N, |b, &n| {
        let mut table = SlabTable::<u64>::new();
        let mut handles = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (r, cl, e) = record(i);
            handles.push((r, cl, table.grant(r, cl, e)));
        }
        let mut bump = 0u64;
        b.iter(|| {
            bump += 1_000_000;
            for (i, &mut (r, cl, ref mut h)) in handles.iter_mut().enumerate() {
                *h = table.extend(*h, r, cl, Time(i as u64 + 1_000_000_000 + bump));
            }
            // Past every superseded deadline, before every live one.
            table.prune(Time(1_000_000_000 + bump - 500_000));
            black_box(table.len())
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &N, |b, &n| {
        let mut table = ReferenceTable::<u64>::new();
        for i in 0..n {
            let (r, cl, e) = record(i);
            table.grant(r, cl, e);
        }
        let mut bump = 0u64;
        b.iter(|| {
            bump += 1_000_000;
            for i in 0..n {
                let (r, cl, _) = record(i);
                table.extend(LeaseHandle::NULL, r, cl, Time(i + 1_000_000_000 + bump));
            }
            table.prune(Time(1_000_000_000 + bump - 500_000));
            black_box(table.len())
        });
    });
    group.finish();
}

fn holders_query(c: &mut Criterion) {
    let mut slab = SlabTable::<u64>::new();
    let mut reference = ReferenceTable::<u64>::new();
    for i in 0..N {
        let r = i % 128;
        let cl = ClientId((i % 100) as u32);
        let e = Time::from_secs(10 + i % 50);
        slab.grant(r, cl, e);
        reference.grant(r, cl, e);
    }
    let now = Time::from_secs(30);
    let mut group = c.benchmark_group("lease_table/holders_at");
    group.bench_function("slab_walk", |b| {
        // The allocation-free read path the approval fan-out uses.
        b.iter(|| black_box(slab.holder_count_at(black_box(64), now)));
    });
    group.bench_function("slab_vec", |b| {
        b.iter(|| black_box(slab.holders_at(black_box(64), now).len()));
    });
    group.bench_function("reference_vec", |b| {
        b.iter(|| black_box(reference.holders_at(black_box(64), now).len()));
    });
    group.finish();

    let mut group = c.benchmark_group("lease_table/max_expiry");
    group.bench_function("slab", |b| {
        b.iter(|| black_box(slab.max_expiry(black_box(64), now)));
    });
    group.bench_function("reference", |b| {
        b.iter(|| black_box(reference.max_expiry(black_box(64), now)));
    });
    group.finish();
}

fn prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_table/prune_half");
    group.bench_function("slab", |b| {
        b.iter_batched(
            || {
                let mut t = SlabTable::<u64>::new();
                for i in 0..N {
                    t.grant(
                        i,
                        ClientId(0),
                        Time::from_secs(if i % 2 == 0 { 1 } else { 100 }),
                    );
                }
                t
            },
            |mut t| black_box(t.prune(Time::from_secs(50))),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("reference", |b| {
        b.iter_batched(
            || {
                let mut t = ReferenceTable::<u64>::new();
                for i in 0..N {
                    t.grant(
                        i,
                        ClientId(0),
                        Time::from_secs(if i % 2 == 0 { 1 } else { 100 }),
                    );
                }
                t
            },
            |mut t| black_box(t.prune(Time::from_secs(50))),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn svc(c: &mut Criterion) {
    use lease_clock::Dur;
    use lease_svc::{shard_of, TimerWheel};

    // Sharded vs single-table grant throughput: the same 10k grants routed
    // by file-id hash into k independent tables — what the sharded service
    // does — against one monolithic table.
    let mut group = c.benchmark_group("svc/sharded_grant");
    for &k in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter_batched(
                || (0..k).map(|_| LeaseTable::<u64>::new()).collect::<Vec<_>>(),
                |mut tables| {
                    for i in 0..10_000u64 {
                        let r = i % 512;
                        tables[shard_of(&r, k)].grant(
                            r,
                            ClientId((i % 64) as u32),
                            Time(i + 1_000_000),
                        );
                    }
                    black_box(tables.iter().map(|t| t.len()).sum::<usize>())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // Expiry dispatch: advancing the hierarchical timer wheel through 10k
    // scattered deadlines vs repeatedly pruning the reference table's
    // expiry index (the shipping table's prune *is* a wheel advance now).
    c.bench_function("svc/expiry/wheel_advance", |b| {
        b.iter_batched(
            || {
                let mut w = TimerWheel::new(Dur(1_000), Time::ZERO);
                for i in 0..10_000u64 {
                    w.schedule(Time(1_000 + i * 7_919), i);
                }
                w
            },
            |mut w| {
                let mut fired = 0usize;
                let mut now = 0u64;
                while !w.is_empty() {
                    now += 1_000_000;
                    fired += w.advance(Time(now)).len();
                }
                black_box(fired)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    c.bench_function("svc/expiry/table_scan_prune", |b| {
        b.iter_batched(
            || {
                let mut t = ReferenceTable::<u64>::new();
                for i in 0..10_000u64 {
                    t.grant(i, ClientId(0), Time(1_000 + i * 7_919));
                }
                t
            },
            |mut t| {
                let mut fired = 0usize;
                let mut now = 0u64;
                while !t.is_empty() {
                    now += 1_000_000;
                    fired += t.prune(Time(now));
                }
                black_box(fired)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, grant, renewal, holders_query, prune, svc);
criterion_main!(benches);
