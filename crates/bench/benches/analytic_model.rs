//! Benchmarks of the analytic model: it must be cheap enough for a server
//! to evaluate per grant when picking terms dynamically (§4).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lease_analytic::{load_curve, Params};

fn formulas(c: &mut Criterion) {
    let p = Params::v_system().with_sharing(10.0);
    c.bench_function("analytic/consistency_load", |b| {
        b.iter(|| black_box(p.consistency_load(black_box(10.0))));
    });
    c.bench_function("analytic/added_delay", |b| {
        b.iter(|| black_box(p.added_delay(black_box(10.0))));
    });
    c.bench_function("analytic/knee_term", |b| {
        b.iter(|| black_box(p.knee_term(black_box(0.1))));
    });
}

fn curve(c: &mut Criterion) {
    let p = Params::v_system();
    let terms: Vec<f64> = (0..=300).map(|i| i as f64 / 10.0).collect();
    c.bench_function("analytic/load_curve_301pts", |b| {
        b.iter(|| black_box(load_curve(&p, black_box(&terms)).len()));
    });
}

criterion_group!(benches, formulas, curve);
criterion_main!(benches);
