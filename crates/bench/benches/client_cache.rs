//! Micro-benchmarks of the client cache: the read fast path is what makes
//! leases worth having — it must be nanoseconds, not milliseconds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lease_clock::{Dur, Time};
use lease_core::{
    ClientConfig, ClientId, ClientInput, Grant, LeaseClient, Op, OpId, ReqId, ToClient,
};

type C = LeaseClient<u64, u64>;

/// A cache pre-warmed with `n` resources under 1000 s leases.
fn warmed(n: u64) -> C {
    let mut c = C::new(ClientId(0), ClientConfig::default());
    for r in 0..n {
        let out = c.handle(
            Time::from_millis(r),
            ClientInput::Op {
                op: OpId(r),
                kind: Op::Read(r),
            },
        );
        let req = out
            .iter()
            .find_map(|o| match o {
                lease_core::ClientOutput::Send(lease_core::ToServer::Fetch { req, .. }) => {
                    Some(*req)
                }
                _ => None,
            })
            .unwrap_or(ReqId(0));
        c.handle(
            Time::from_millis(r + 1),
            ClientInput::Msg(ToClient::Grants {
                req,
                grants: vec![Grant {
                    resource: r,
                    version: lease_core::Version(1),
                    data: Some(r),
                    term: Dur::from_secs(1000),
                    handle: lease_core::LeaseHandle::NULL,
                }],
            }),
        );
    }
    c
}

fn read_hit(c: &mut Criterion) {
    let mut cache = warmed(1024);
    let mut op = 1_000_000u64;
    c.bench_function("client_cache/read_hit", |b| {
        b.iter(|| {
            op += 1;
            let out = cache.handle(
                Time::from_secs(10),
                ClientInput::Op {
                    op: OpId(op),
                    kind: Op::Read(black_box(op % 1024)),
                },
            );
            black_box(out.len())
        });
    });
}

fn read_miss_builds_batched_fetch(c: &mut Criterion) {
    // The expensive variant: an expired lease with 1024 held entries to
    // piggyback — measures the cost of batching itself.
    let mut group = c.benchmark_group("client_cache/miss_with_batch");
    for &n in &[16u64, 256, 1024] {
        group.bench_function(format!("{n}_held"), |b| {
            let mut op = 2_000_000u64;
            let mut cache = warmed(n);
            b.iter(|| {
                op += 1;
                // Reads far in the future: every lease expired.
                let out = cache.handle(
                    Time::from_secs(5000),
                    ClientInput::Op {
                        op: OpId(op),
                        kind: Op::Read(black_box(op % n)),
                    },
                );
                black_box(out.len())
            });
        });
    }
    group.finish();
}

fn approval_roundtrip(c: &mut Criterion) {
    c.bench_function("client_cache/approval_invalidate", |b| {
        let mut wid = 0u64;
        let mut cache = warmed(64);
        b.iter(|| {
            wid += 1;
            let out = cache.handle(
                Time::from_secs(20),
                ClientInput::Msg(ToClient::ApprovalRequest {
                    write_id: lease_core::WriteId(wid),
                    resource: black_box(wid % 64),
                    replaces: lease_core::Version(1),
                }),
            );
            black_box(out.len())
        });
    });
}

criterion_group!(
    benches,
    read_hit,
    read_miss_builds_batched_fetch,
    approval_roundtrip
);
criterion_main!(benches);
