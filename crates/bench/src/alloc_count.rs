//! Heap-allocation counting for the perf-trajectory benchmarks.
//!
//! With the `alloc-count` feature enabled this module installs a global
//! allocator that wraps [`std::alloc::System`] and counts every
//! allocation (plus reallocations and zeroed allocations — anything that
//! can acquire memory). The count is process-wide and monotonic; callers
//! measure deltas around a region of interest:
//!
//! ```ignore
//! let before = lease_bench::allocations();
//! hot_loop();
//! let during = lease_bench::allocations().zip(before).map(|(a, b)| a - b);
//! ```
//!
//! Without the feature nothing is installed and [`allocations`] returns
//! `None`, so callers can report "not measured" instead of a misleading
//! zero. The counter uses a relaxed atomic: the cost is one uncontended
//! fetch-add per allocation, which is noise next to the allocation
//! itself, so numbers gathered with the feature on remain comparable.

#[cfg(feature = "alloc-count")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: defers every operation to `System`; only bookkeeping added.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn allocations() -> Option<u64> {
        Some(ALLOCS.load(Ordering::Relaxed))
    }
}

#[cfg(not(feature = "alloc-count"))]
mod imp {
    pub fn allocations() -> Option<u64> {
        None
    }
}

/// The process-wide allocation count so far, or `None` when the binary
/// was built without the `alloc-count` feature.
pub fn allocations() -> Option<u64> {
    imp::allocations()
}

#[cfg(all(test, feature = "alloc-count"))]
mod tests {
    use super::allocations;

    #[test]
    fn counter_observes_a_boxed_allocation() {
        let before = allocations().unwrap();
        let b = std::hint::black_box(Box::new(42u64));
        let after = allocations().unwrap();
        assert!(after > before, "Box::new must register");
        drop(b);
    }
}
