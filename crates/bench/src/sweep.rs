//! Data-parallel experiment sweeps.
//!
//! Every paper-reproduction experiment has the same shape: a list of
//! independent, deterministic tasks (one simulated run per seed or term)
//! whose results are reported in task order. [`run`] fans those tasks
//! across scoped worker threads that pull indices from a shared atomic
//! counter (work-stealing in the only sense that matters here: a fast
//! worker drains more of the queue), stores each result in its task's
//! slot, and merges in task order — so the output is **byte-identical
//! regardless of thread count**. Parallelism changes wall-clock, never
//! results.
//!
//! The `--threads N|auto` flag and the best-effort core-affinity helper
//! live here too; `svc_load` and all five sweep binaries (`fig1`, `fig2`,
//! `fig3`, `table2`, `chaos`) share this one implementation.
//!
//! # Examples
//!
//! ```
//! let squares = lease_bench::sweep::run(4, &[1u64, 2, 3], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism (1 when it cannot be determined).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses a `--threads` value: a positive integer or `auto` (the host's
/// available parallelism).
pub fn parse_threads(v: &str) -> Result<usize, String> {
    if v == "auto" {
        return Ok(available_cores());
    }
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "--threads wants a positive number or `auto`, got {v}"
        )),
    }
}

/// Extracts a `--threads N|auto` flag from an argument list (removing it)
/// and returns the thread count, or `default` when the flag is absent.
///
/// Shared by the sweep binaries so they all accept the same flag with the
/// same spelling and the same error message.
pub fn take_threads_arg(args: &mut Vec<String>, default: usize) -> Result<usize, String> {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return Ok(default);
    };
    let Some(v) = args.get(i + 1).cloned() else {
        return Err("--threads wants a value (a number or `auto`)".into());
    };
    let n = parse_threads(&v)?;
    args.drain(i..=i + 1);
    Ok(n)
}

// The affinity helper moved to `lease_core::affinity` so the sharded
// service can pin shard workers with the same code (`SvcConfig::pin`);
// re-exported here to keep the sweep binaries' call sites unchanged.
pub use lease_core::affinity::pin_to_core;

/// Runs `f(index, &task)` for every task, on up to `threads` worker
/// threads, and returns the results **in task order**.
///
/// * `threads <= 1` (or a single task) runs inline on the caller's
///   thread: no spawn, no pinning, bit-for-bit the serial loop the sweep
///   binaries used to write by hand.
/// * `threads > 1` spawns scoped workers, pins them round-robin across
///   cores (best effort, Linux only), and hands out task indices from a
///   shared atomic counter — a fast worker simply claims more tasks, so
///   uneven task costs don't leave threads idle behind a static split.
/// * Results are written into per-task slots and merged in index order,
///   so for a deterministic `f` the returned vector is identical for any
///   thread count.
///
/// Panics in `f` propagate to the caller once all workers stop.
pub fn run<T, R, F>(threads: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, tasks.len().max(1));
    if threads <= 1 {
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..threads {
            let next = &next;
            let slots = &slots;
            let f = &f;
            s.spawn(move || {
                pin_to_core(w);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(i) else { break };
                    let r = f(i, task);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed task stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_for_any_thread_count() {
        let tasks: Vec<u64> = (0..97).collect();
        let serial = run(1, &tasks, |i, &t| (i as u64) * 1000 + t);
        for threads in [2, 3, 4, 8] {
            let parallel = run(threads, &tasks, |i, &t| (i as u64) * 1000 + t);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_task_sets() {
        let none: Vec<u32> = run(4, &[], |_, t: &u32| *t);
        assert!(none.is_empty());
        assert_eq!(run(4, &[7u32], |_, &t| t + 1), vec![8]);
    }

    #[test]
    fn uneven_task_costs_still_merge_in_order() {
        // Early tasks sleep longer: a static split would finish them last,
        // the shared index hands later tasks to free workers either way.
        let tasks: Vec<u64> = (0..16).collect();
        let out = run(4, &tasks, |i, &t| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            t * 2
        });
        assert_eq!(out, (0..16).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parse_threads_accepts_auto_and_numbers() {
        assert_eq!(parse_threads("3"), Ok(3));
        assert!(parse_threads("auto").unwrap() >= 1);
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-1").is_err());
        assert!(parse_threads("four").is_err());
    }

    #[test]
    fn take_threads_arg_removes_the_flag() {
        let mut args: Vec<String> = ["--quick", "--threads", "2", "--json", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(take_threads_arg(&mut args, 1), Ok(2));
        assert_eq!(args, vec!["--quick", "--json", "x"]);
        assert_eq!(take_threads_arg(&mut args, 1), Ok(1));
        let mut missing: Vec<String> = vec!["--threads".into()];
        assert!(take_threads_arg(&mut missing, 1).is_err());
    }
}
