//! Checks every numeric claim of §3.2 and §3.3 against the model and the
//! simulated system, printing a PASS/FAIL scorecard.

use lease_analytic::Params;
use lease_bench::{save_json, table};
use lease_clock::Dur;
use lease_workload::VTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Claim {
    name: String,
    paper: f64,
    ours: f64,
    tolerance: f64,
    pass: bool,
}

fn claim(name: &str, paper: f64, ours: f64, tolerance: f64) -> Claim {
    Claim {
        name: name.into(),
        paper,
        ours,
        tolerance,
        pass: (ours - paper).abs() <= tolerance,
    }
}

fn main() {
    let p = Params::v_system();
    let wan = Params::v_system_wan();
    let mut claims = Vec::new();

    // §3.2, model claims.
    claims.push(claim(
        "S=1: 10 s term -> consistency traffic fraction of zero-term",
        0.10,
        p.relative_load(10.0),
        0.01,
    ));
    claims.push(claim(
        "S=1: total server traffic reduction at 10 s (consistency = 30% at term 0)",
        0.27,
        1.0 - p.total_relative_load(10.0, 0.30),
        0.01,
    ));
    claims.push(claim(
        "S=1: total traffic at 10 s above infinite-term level",
        0.045,
        p.total_relative_load(10.0, 0.30) / p.total_relative_load(f64::INFINITY, 0.30) - 1.0,
        0.005,
    ));
    let s10 = p.with_sharing(10.0);
    claims.push(claim(
        "S=10: total server traffic reduction at 10 s",
        0.20,
        1.0 - s10.total_relative_load(10.0, 0.30),
        0.015,
    ));
    claims.push(claim(
        "S=10: total traffic at 10 s above infinite-term level",
        0.041,
        s10.total_relative_load(10.0, 0.30) / s10.total_relative_load(f64::INFINITY, 0.30) - 1.0,
        0.01,
    ));

    // §3.3, wide-area claims (baseline response 99.5 ms, EXPERIMENTS.md).
    claims.push(claim(
        "WAN: 10 s term response degradation vs infinite",
        0.101,
        wan.response_degradation(10.0, 0.0995),
        0.01,
    ));
    claims.push(claim(
        "WAN: 30 s term response degradation vs infinite",
        0.036,
        wan.response_degradation(30.0, 0.0995),
        0.005,
    ));

    // Trace-driven simulation claims (shape, wider tolerances).
    let trace = VTrace::calibrated(1989).generate();
    let zero = lease_bench::run_at_term(&trace, Dur::ZERO, 7).consistency_msgs as f64;
    let ten = lease_bench::run_at_term(&trace, Dur::from_secs(10), 7).consistency_msgs as f64;
    let two = lease_bench::run_at_term(&trace, Dur::from_secs(2), 7).consistency_msgs as f64;
    claims.push(claim(
        "Trace: 10 s term consistency fraction (knee at/below the model's 10%)",
        0.10,
        ten / zero,
        0.06,
    ));
    // The knee is sharper than Poisson: by 2 s the trace is already below
    // the model's 2 s prediction.
    let model_two = p.relative_load(2.0);
    claims.push(claim(
        "Trace: knee sharper than Poisson (trace(2s) below model(2s) by >0.1)",
        1.0,
        (model_two - two / zero > 0.1) as u8 as f64,
        0.0,
    ));
    // Benefit factor arithmetic (§3.1).
    claims.push(claim("alpha at S=10 (2R/SW)", 4.32, s10.alpha(), 1e-9));

    let rows: Vec<Vec<String>> = claims
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.3}", c.paper),
                format!("{:.3}", c.ours),
                if c.pass { "PASS".into() } else { "FAIL".into() },
            ]
        })
        .collect();
    println!("Paper-claim scorecard (sections 3.2 and 3.3)\n");
    println!("{}", table(&["claim", "paper", "ours", "verdict"], &rows));
    let passed = claims.iter().filter(|c| c.pass).count();
    println!("{passed}/{} claims within tolerance", claims.len());
    save_json("claims", &claims);
    if passed != claims.len() {
        std::process::exit(1);
    }
}
