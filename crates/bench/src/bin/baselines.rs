//! Section 6 head-to-head: leases vs the other consistency approaches,
//! fault-free and under a partition.

use lease_baselines::Baseline;
use lease_bench::{save_json, table};
use lease_clock::{Dur, Time};
use lease_faults::{check_history, staleness_of};
use lease_net::Partition;
use lease_sim::ActorId;
use lease_vsys::SystemConfig;
use lease_workload::{PoissonWorkload, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct BaselineRow {
    protocol: String,
    faulted: bool,
    consistency_msgs: u64,
    hit_rate: f64,
    mean_delay_ms: f64,
    max_write_delay_s: f64,
    stale_reads: usize,
    worst_staleness_s: f64,
}

fn workload(seed: u64) -> Trace {
    PoissonWorkload {
        n: 6,
        r: 0.8,
        w: 0.05,
        s: 3,
        duration: Dur::from_secs(400),
        seed,
    }
    .generate()
}

fn run_case(b: &Baseline, cfg: &SystemConfig, trace: &Trace, faulted: bool) -> BaselineRow {
    let (r, h) = b.run(cfg, trace);
    let outcome = check_history(&h.borrow());
    let (stale, worst) = match outcome {
        Ok(()) => (0, 0.0),
        Err(v) => {
            let st = staleness_of(&v);
            (
                st.len(),
                st.iter().copied().max().unwrap_or(Dur::ZERO).as_secs_f64(),
            )
        }
    };
    BaselineRow {
        protocol: b.label(),
        faulted,
        consistency_msgs: r.consistency_msgs,
        hit_rate: r.hit_rate(),
        mean_delay_ms: r.mean_delay_ms(),
        max_write_delay_s: r.write_delay.max,
        stale_reads: stale,
        worst_staleness_s: worst,
    }
}

fn main() {
    let trace = workload(5);
    let protocols = [
        Baseline::CheckOnEveryRead,
        Baseline::Leases {
            term: Dur::from_secs(10),
        },
        Baseline::AndrewCallbacks {
            poll: Some(Dur::from_secs(600)),
        },
        Baseline::NfsTtl {
            ttl: Dur::from_secs(30),
        },
    ];

    let base_cfg = SystemConfig {
        max_retries: 500,
        warmup: Dur::from_secs(60),
        ..Default::default()
    };
    let mut faulted_cfg = base_cfg.clone();
    // Clients 0 and 1 (actors 1-2) unreachable from 100 s to 160 s.
    faulted_cfg.partitions = vec![Partition::new(
        Time::from_secs(100),
        Time::from_secs(160),
        [ActorId(1), ActorId(2)],
    )];

    let mut json = Vec::new();
    for (label, cfg, faulted) in [
        ("fault-free", &base_cfg, false),
        ("60 s partition of two clients", &faulted_cfg, true),
    ] {
        println!("Section 6 comparison — {label}\n");
        let mut rows = Vec::new();
        for b in &protocols {
            let row = run_case(b, cfg, &trace, faulted);
            rows.push(vec![
                row.protocol.clone(),
                row.consistency_msgs.to_string(),
                format!("{:.3}", row.hit_rate),
                format!("{:.2}", row.mean_delay_ms),
                format!("{:.1}", row.max_write_delay_s),
                row.stale_reads.to_string(),
                format!("{:.2}", row.worst_staleness_s),
            ]);
            json.push(row);
        }
        println!(
            "{}",
            table(
                &[
                    "protocol",
                    "cons. msgs",
                    "hit rate",
                    "mean delay ms",
                    "max wr stall s",
                    "stale reads",
                    "worst staleness s",
                ],
                &rows
            )
        );
    }
    println!("reading: check-on-read buys consistency with maximal traffic; leases get");
    println!("within a few percent of the callback scheme's traffic while staying");
    println!("consistent under the partition, where callbacks go stale (bounded only by");
    println!("Andrew's poll) and TTL caching is stale even fault-free (section 6).");
    save_json("baselines", &json);
}
