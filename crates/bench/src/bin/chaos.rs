//! Seeded chaos sweep over the real-time deployment.
//!
//! For each seed this builds an [`RtSystem`] under a fault plan derived
//! from that seed — a mid-run shard kill, message drops, duplicates and
//! delays — drives a read/write workload from two clients, and reports:
//!
//! * the oracle's verdict on the recorded true-time history
//!   (`lease_faults::check_history`),
//! * the worst observed write delay against the §5 bound (one lease term
//!   for an unreachable holder, plus the max-term recovery window after
//!   the crash, plus retry slack).
//!
//! The process exits non-zero if any seed's history fails the oracle, so
//! CI can run it as a smoke test.
//!
//! Environment knobs:
//!
//! | variable             | meaning                         | default       |
//! |----------------------|---------------------------------|---------------|
//! | `LEASE_CHAOS_SEEDS`  | comma-separated seeds to sweep  | 1,2,3,4,5,6   |
//! | `LEASE_CHAOS_MS`     | workload duration per seed      | 900           |
//! | `LEASE_CHAOS_TERM_MS`| lease term                      | 200           |

use std::time::{Duration, Instant};

use lease_bench::sweep::{self, take_threads_arg};
use lease_clock::Dur;
use lease_faults::check_history;
use lease_rt::{FaultPlan, RtSystem};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_seeds() -> Vec<u64> {
    std::env::var("LEASE_CHAOS_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| (1..=6).collect())
}

struct SeedReport {
    seed: u64,
    ops: u64,
    timeouts: u64,
    max_write_delay: Duration,
    restarts: u64,
    violations: usize,
}

fn run_seed(seed: u64, term_ms: u64, duration: Duration) -> SeedReport {
    let shards = 2usize;
    // Derive every fault from the seed so a sweep explores distinct
    // patterns and a re-run replays them.
    let plan = FaultPlan::new(seed)
        .kill(
            Dur::from_millis(duration.as_millis() as u64 / 3),
            (seed % shards as u64) as usize,
        )
        .drop_messages(0.02 + (seed % 5) as f64 * 0.01)
        .duplicate_messages(0.02)
        .delay_messages(Dur::from_millis(1 + seed % 4));
    let sys = RtSystem::builder()
        .term(Dur::from_millis(term_ms))
        .epsilon(Dur::from_millis(5))
        .retry_interval(Dur::from_millis(15))
        .max_retries(500)
        .clients(2)
        .shards(shards)
        .file("/data/a", b"a0".as_ref())
        .file("/data/b", b"b0".as_ref())
        .chaos(plan)
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let b = sys.lookup("/data/b").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    let start = Instant::now();
    let mut ops = 0u64;
    let mut timeouts = 0u64;
    let mut max_write_delay = Duration::ZERO;
    let mut k = 0u64;
    while start.elapsed() < duration {
        let (reader, writer, r, w) = if k.is_multiple_of(2) {
            (&c0, &c1, a, b)
        } else {
            (&c1, &c0, b, a)
        };
        if reader.read(r).is_err() {
            timeouts += 1;
        }
        ops += 1;
        let t0 = Instant::now();
        match writer.write(w, format!("v{k}").into_bytes()) {
            Ok(_) => max_write_delay = max_write_delay.max(t0.elapsed()),
            Err(_) => timeouts += 1,
        }
        ops += 1;
        k += 1;
    }

    let restarts = sys
        .server_stats()
        .map(|s| s.shard_restarts.iter().sum())
        .unwrap_or(0);
    let history = sys.history();
    sys.shutdown();
    let violations = match check_history(&history) {
        Ok(()) => 0,
        Err(v) => {
            for violation in v.iter().take(3) {
                eprintln!("seed {seed}: {violation:?}");
            }
            v.len()
        }
    };
    SeedReport {
        seed,
        ops,
        timeouts,
        max_write_delay,
        restarts,
        violations,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Seeds run serially by default: each spins up a real multi-threaded
    // RtSystem driven by wall-clock time, so concurrent seeds contend for
    // cores and shift timings (never correctness — the oracle checks the
    // recorded history either way). `--threads N` opts into overlapping
    // them for a faster sweep.
    let threads = take_threads_arg(&mut args, 1).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a} (only --threads N|auto is accepted)");
        std::process::exit(2);
    }
    let seeds = env_seeds();
    let duration = Duration::from_millis(env_u64("LEASE_CHAOS_MS", 900));
    let term_ms = env_u64("LEASE_CHAOS_TERM_MS", 200);
    // §5 worst case: one term waiting out an unreachable holder, plus the
    // max-term recovery window after the kill; everything beyond that is
    // retry/scheduling slack worth seeing in the table.
    let delay_bound = Duration::from_millis(2 * term_ms);

    println!(
        "chaos sweep: term={term_ms}ms, window={}ms, write-delay bound ~{delay_bound:?}",
        duration.as_millis()
    );
    println!("| seed | ops | timeouts | restarts | max write delay | oracle |");
    println!("|-----:|----:|---------:|---------:|----------------:|--------|");
    let mut failed = false;
    let reports = sweep::run(threads, &seeds, |_, &seed| {
        run_seed(seed, term_ms, duration)
    });
    for r in reports {
        let verdict = if r.violations == 0 {
            "ok".to_string()
        } else {
            failed = true;
            format!("{} violation(s)", r.violations)
        };
        let over = if r.max_write_delay > delay_bound {
            " (over bound)"
        } else {
            ""
        };
        println!(
            "| {} | {} | {} | {} | {:?}{} | {} |",
            r.seed, r.ops, r.timeouts, r.restarts, r.max_write_delay, over, verdict
        );
    }
    if failed {
        eprintln!("chaos sweep: consistency violations found");
        std::process::exit(1);
    }
}
