//! Section 5 experiments: failures cost delay, never consistency — and
//! the one failure that does break consistency (bad clocks) is shown too.

use lease_bench::{save_json, table};
use lease_clock::{ClockModel, Dur, Time};
use lease_faults::{check_history, staleness_of};
use lease_vsys::{run_trace_with_history, CrashEvent, NodeSel, SystemConfig, TermSpec};
use lease_workload::{FileClass, FileSpec, PoissonWorkload, Trace, TraceOp, TraceRecord};
use serde::Serialize;

#[derive(Serialize)]
struct FaultRow {
    scenario: String,
    term_s: f64,
    consistent: bool,
    max_write_delay_s: f64,
    failures: u64,
}

fn shared_workload(seed: u64) -> Trace {
    PoissonWorkload {
        n: 6,
        r: 0.8,
        w: 0.05,
        s: 3,
        duration: Dur::from_secs(300),
        seed,
    }
    .generate()
}

/// Client 1 takes a lease just before dying; client 0 writes right after.
fn crash_stall_trace() -> Trace {
    Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        vec![
            TraceRecord {
                at: Time::from_secs(59),
                client: 1,
                op: TraceOp::Read { file: 1 },
            },
            TraceRecord {
                at: Time::from_secs(61),
                client: 0,
                op: TraceOp::Write { file: 1 },
            },
        ],
    )
}

fn main() {
    let mut json = Vec::new();

    // Experiment A: write stall after a leaseholder crash, by term.
    println!("Section 5 A: client crash -> write delay bounded by the lease term\n");
    let mut rows = Vec::new();
    for term in [2.0f64, 5.0, 10.0, 20.0, 45.0] {
        let mut cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs_f64(term)),
            max_retries: 500,
            ..SystemConfig::default()
        };
        cfg.crashes = vec![CrashEvent {
            at: Time::from_secs(60),
            node: NodeSel::Client(1),
            recover_at: None,
        }];
        let (r, h) = run_trace_with_history(&cfg, &crash_stall_trace());
        let consistent = check_history(&h.history.borrow()).is_ok();
        rows.push(vec![
            format!("{term:.0}"),
            format!("{:.2}", r.write_delay.max),
            consistent.to_string(),
        ]);
        json.push(FaultRow {
            scenario: "client crash".into(),
            term_s: term,
            consistent,
            max_write_delay_s: r.write_delay.max,
            failures: r.op_failures,
        });
    }
    println!(
        "{}",
        table(&["term (s)", "max write stall (s)", "consistent"], &rows)
    );
    println!("(the stall tracks the crashed holder's remaining term — short leases");
    println!(" minimize failure delay, section 2)\n");

    // Experiment B: server crash recovery, MaxTerm vs PersistentRecords.
    println!("Section 5 B: server recovery — max-term rule vs persistent lease records\n");
    let recovery_trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        vec![
            TraceRecord {
                at: Time::from_secs(1),
                client: 0,
                op: TraceOp::Read { file: 1 },
            },
            // The lease from t=1 has expired by itself at t=11.
            TraceRecord {
                at: Time::from_secs(15),
                client: 0,
                op: TraceOp::Write { file: 1 },
            },
        ],
    );
    let mut rows = Vec::new();
    for (label, persistent) in [("max-term rule", false), ("persistent records", true)] {
        let mut cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(10)),
            persistent_leases: persistent,
            max_retries: 500,
            ..SystemConfig::default()
        };
        cfg.crashes = vec![CrashEvent {
            at: Time::from_secs(12),
            node: NodeSel::Server,
            recover_at: Some(Time::from_secs(13)),
        }];
        let (r, h) = run_trace_with_history(&cfg, &recovery_trace);
        let consistent = check_history(&h.history.borrow()).is_ok();
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", r.write_delay.max),
            consistent.to_string(),
        ]);
        json.push(FaultRow {
            scenario: format!("server recovery ({label})"),
            term_s: 10.0,
            consistent,
            max_write_delay_s: r.write_delay.max,
            failures: r.op_failures,
        });
    }
    println!(
        "{}",
        table(
            &[
                "recovery mode",
                "post-restart write stall (s)",
                "consistent"
            ],
            &rows
        )
    );
    println!("(the max-term rule stalls the first writes for a full term; persistent");
    println!(" records avoid it at one disk write per grant — the section 2 trade-off)\n");

    // Experiment C: message loss sweep.
    println!("Section 5 C: message loss — retransmission keeps every run consistent\n");
    let mut rows = Vec::new();
    for loss in [0.0, 0.05, 0.15, 0.30] {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(10)),
            loss,
            retry_interval: Dur::from_millis(300),
            max_retries: 500,
            ..SystemConfig::default()
        };
        let (r, h) = run_trace_with_history(&cfg, &shared_workload(31));
        let consistent = check_history(&h.history.borrow()).is_ok();
        rows.push(vec![
            format!("{:.0}%", loss * 100.0),
            format!("{:.2}", r.mean_delay_ms()),
            r.op_failures.to_string(),
            consistent.to_string(),
        ]);
        json.push(FaultRow {
            scenario: format!("loss {:.0}%", loss * 100.0),
            term_s: 10.0,
            consistent,
            max_write_delay_s: r.write_delay.max,
            failures: r.op_failures,
        });
    }
    println!(
        "{}",
        table(
            &["loss", "mean delay (ms)", "op failures", "consistent"],
            &rows
        )
    );
    println!();

    // Experiment D: clock failures — the one hazard.
    println!("Section 5 D: clock failures — the dangerous and the harmless directions\n");
    let mut rows = Vec::new();
    let cases: Vec<(&str, ClockModel, Vec<ClockModel>)> = vec![
        ("perfect clocks", ClockModel::perfect(), vec![]),
        (
            "server 3x fast (dangerous)",
            ClockModel::drifting(2_000_000.0),
            vec![],
        ),
        (
            "client 0.4x slow (dangerous)",
            ClockModel::perfect(),
            vec![ClockModel::drifting(-600_000.0)],
        ),
        (
            "server 30% slow (harmless)",
            ClockModel::drifting(-300_000.0),
            vec![],
        ),
        (
            "clients 30% fast (harmless)",
            ClockModel::perfect(),
            (0..6).map(|_| ClockModel::drifting(300_000.0)).collect(),
        ),
    ];
    for (label, server_clock, client_clocks) in cases {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(10)),
            server_clock,
            client_clocks,
            max_retries: 500,
            ..SystemConfig::default()
        };
        let (_, h) = run_trace_with_history(&cfg, &shared_workload(41));
        let outcome = check_history(&h.history.borrow());
        let (consistent, stale, worst) = match outcome {
            Ok(()) => (true, 0, Dur::ZERO),
            Err(v) => {
                let st = staleness_of(&v);
                let worst = st.iter().copied().max().unwrap_or(Dur::ZERO);
                (false, st.len(), worst)
            }
        };
        rows.push(vec![
            label.to_string(),
            consistent.to_string(),
            stale.to_string(),
            format!("{worst}"),
        ]);
        json.push(FaultRow {
            scenario: label.into(),
            term_s: 10.0,
            consistent,
            max_write_delay_s: 0.0,
            failures: stale as u64,
        });
    }
    println!(
        "{}",
        table(
            &[
                "clock scenario",
                "consistent",
                "stale reads",
                "worst staleness"
            ],
            &rows
        )
    );
    println!("(section 5: only a fast server clock or slow client clock breaks consistency;");
    println!(" the dual errors merely generate extra traffic)\n");

    // Experiment E: failure-aware optimal terms (the model extension the
    // paper's section 3.1 assumption leaves open).
    println!("Section 5 E: pricing failures into the term choice (model extension)\n");
    let p = lease_analytic::Params::v_system().with_sharing(4.0);
    let mut rows = Vec::new();
    for crashes_per_day in [0.1f64, 1.0, 10.0, 100.0] {
        let rate = crashes_per_day / 86_400.0;
        let (t_opt, d_opt) = lease_analytic::optimal_term(&p, rate, 3600.0);
        rows.push(vec![
            format!("{crashes_per_day}"),
            format!("{t_opt:.1}"),
            format!("{:.3}", d_opt * 1e3),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "host crashes/day",
                "optimal term (s)",
                "delay at optimum (ms/op)"
            ],
            &rows
        )
    );
    println!("(the paper's 'short terms minimize failure delay' made quantitative: the");
    println!(" optimum falls as hosts get flakier — tens of seconds at one crash/day,");
    println!(" matching the 10-30 s the paper recommends qualitatively)");
    save_json("fault_tolerance", &json);
}
