//! Seeded chaos sweep over the *replicated* deployment.
//!
//! The replicated sibling of `chaos`: for each seed this builds a
//! 3-grantor [`ReplicatedSystem`] under a fault plan derived from that
//! seed — a mid-run grantor-replica kill (whole host: election state and
//! service shards), a later partition of another replica, message
//! drops/duplicates/delays on every link, and on every third seed a
//! 2x-fast replica clock — drives a read/write workload from two
//! clients, and judges the recorded true-time history with
//! `lease_faults::check_history` (client consistency *and* the
//! at-most-one-grantor invariant). Exits non-zero on any violation so CI
//! can run it as a smoke test.
//!
//! Environment knobs:
//!
//! | variable              | meaning                        | default     |
//! |-----------------------|--------------------------------|-------------|
//! | `LEASE_QCHAOS_SEEDS`  | comma-separated seeds to sweep | 1,2,3,4,5,6 |
//! | `LEASE_QCHAOS_MS`     | workload duration per seed     | 1500        |
//! | `LEASE_QCHAOS_TERM_MS`| file lease term                | 150         |

use std::time::{Duration, Instant};

use lease_bench::sweep::{self, take_threads_arg};
use lease_clock::{ClockModel, Dur};
use lease_faults::check_history;
use lease_quorum::QuorumConfig;
use lease_rt::{FaultPlan, ReplicatedSystem};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_seeds() -> Vec<u64> {
    std::env::var("LEASE_QCHAOS_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| (1..=6).collect())
}

/// Fast quorum tuning so grantor takeovers resolve well inside a seed's
/// workload window.
fn chaos_quorum() -> QuorumConfig {
    QuorumConfig {
        term: Dur::from_millis(250),
        max_term: Dur::from_millis(550),
        op_timeout: Dur::from_millis(60),
        retry_base: Dur::from_millis(10),
        stagger: Dur::from_millis(15),
        ..QuorumConfig::default()
    }
}

struct SeedReport {
    seed: u64,
    ops: u64,
    timeouts: u64,
    max_write_delay: Duration,
    grantor_changes: usize,
    violations: usize,
}

fn run_seed(seed: u64, term_ms: u64, duration: Duration) -> SeedReport {
    let replicas = 3u64;
    let dur_ms = duration.as_millis() as u64;
    // Derive every fault from the seed: kill one grantor replica a third
    // of the way in, partition a different one later, spice the links,
    // and every third seed give one replica a clock running at twice
    // true rate (beyond the drift bound — the quorum majority masks it).
    let victim = (seed % replicas) as usize;
    let cut = ((seed + 1) % replicas) as usize;
    let mut plan = FaultPlan::new(seed)
        .kill_replica(Dur::from_millis(dur_ms / 3), victim)
        .cut_replica(
            Dur::from_millis(2 * dur_ms / 3),
            Dur::from_millis(2 * dur_ms / 3 + 250),
            cut,
        )
        .drop_messages(0.02 + (seed % 5) as f64 * 0.01)
        .duplicate_messages(0.02)
        .delay_messages(Dur::from_millis(1 + seed % 4));
    if seed.is_multiple_of(3) {
        plan = plan.with_replica_clock(
            ((seed + 2) % replicas) as usize,
            ClockModel::drifting(1_000_000.0),
        );
    }
    let sys = ReplicatedSystem::builder()
        .term(Dur::from_millis(term_ms))
        .epsilon(Dur::from_millis(5))
        .retry_interval(Dur::from_millis(15))
        .max_retries(800)
        .quorum(chaos_quorum())
        .clients(2)
        .shards(2)
        .file("/data/a", b"a0".as_ref())
        .file("/data/b", b"b0".as_ref())
        .chaos(plan)
        .start();
    let a = sys.lookup("/data/a").unwrap();
    let b = sys.lookup("/data/b").unwrap();
    let (c0, c1) = (sys.client(0), sys.client(1));

    let start = Instant::now();
    let mut ops = 0u64;
    let mut timeouts = 0u64;
    let mut max_write_delay = Duration::ZERO;
    let mut k = 0u64;
    while start.elapsed() < duration {
        let (reader, writer, r, w) = if k.is_multiple_of(2) {
            (&c0, &c1, a, b)
        } else {
            (&c1, &c0, b, a)
        };
        if reader.read(r).is_err() {
            timeouts += 1;
        }
        ops += 1;
        let t0 = Instant::now();
        match writer.write(w, format!("v{k}").into_bytes()) {
            Ok(_) => max_write_delay = max_write_delay.max(t0.elapsed()),
            Err(_) => timeouts += 1,
        }
        ops += 1;
        k += 1;
    }

    let history = sys.history();
    sys.shutdown();
    let grantor_changes = history
        .events
        .iter()
        .filter(|e| matches!(e, lease_vsys::HistoryEvent::GrantorAcquired { .. }))
        .count();
    let violations = match check_history(&history) {
        Ok(()) => 0,
        Err(v) => {
            for violation in v.iter().take(3) {
                eprintln!("seed {seed}: {violation:?}");
            }
            v.len()
        }
    };
    SeedReport {
        seed,
        ops,
        timeouts,
        max_write_delay,
        grantor_changes,
        violations,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Serial by default: each seed spins up 3 service replicas plus the
    // quorum threads, all wall-clock driven, so overlapping seeds shifts
    // timings (never correctness — the oracle judges the history either
    // way). `--threads N` opts into a faster overlapped sweep.
    let threads = take_threads_arg(&mut args, 1).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a} (only --threads N|auto is accepted)");
        std::process::exit(2);
    }
    let seeds = env_seeds();
    let duration = Duration::from_millis(env_u64("LEASE_QCHAOS_MS", 1500));
    let term_ms = env_u64("LEASE_QCHAOS_TERM_MS", 150);
    // Worst-case write stall: the grantor lease must expire on the
    // surviving acceptors (~quorum term), a successor must win, and its
    // §5 recovery must wait out the predecessor's file leases (~one file
    // term); the rest is retry slack worth seeing in the table.
    let delay_bound = Duration::from_millis(2 * (250 + term_ms));

    println!(
        "replicated chaos sweep: 3 grantors, file term={term_ms}ms, window={}ms, write-delay bound ~{delay_bound:?}",
        duration.as_millis()
    );
    println!("| seed | ops | timeouts | grantor claims | max write delay | oracle |");
    println!("|-----:|----:|---------:|---------------:|----------------:|--------|");
    let mut failed = false;
    let reports = sweep::run(threads, &seeds, |_, &seed| {
        run_seed(seed, term_ms, duration)
    });
    for r in reports {
        let verdict = if r.violations == 0 {
            "ok".to_string()
        } else {
            failed = true;
            format!("{} violation(s)", r.violations)
        };
        let over = if r.max_write_delay > delay_bound {
            " (over bound)"
        } else {
            ""
        };
        println!(
            "| {} | {} | {} | {} | {:?}{} | {} |",
            r.seed, r.ops, r.timeouts, r.grantor_changes, r.max_write_delay, over, verdict
        );
    }
    if failed {
        eprintln!("replicated chaos sweep: consistency violations found");
        std::process::exit(1);
    }
}
