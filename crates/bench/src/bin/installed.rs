//! Section 4 ablation: lease-management options.
//!
//! Compares, on installed-file-heavy workloads:
//!
//! * per-client leases vs the multicast-extension optimization, as the
//!   number of clients grows (the optimization's win scales with N);
//! * on-demand vs batched vs anticipatory extension;
//! * the write path for installed files: delayed update means no approval
//!   implosion even with many clients.

use lease_bench::{save_json, table};
use lease_clock::{Dur, Time};
use lease_vsys::{run_trace, InstalledMode, SystemConfig, TermSpec};
use lease_workload::{FileClass, FileSpec, PoissonWorkload, Trace, TraceOp, TraceRecord};
use serde::Serialize;

/// N clients reading a pool of installed files at the V read rate.
fn installed_workload(n: u32, seed: u64) -> Trace {
    let base = PoissonWorkload {
        n,
        r: 0.864,
        w: 0.0,
        s: 1,
        duration: Dur::from_secs(600),
        seed,
    }
    .generate();
    // Remap every op onto a pool of 8 installed files, round-robin by
    // record index, and mark the files installed.
    let files: Vec<FileSpec> = (0..8u64)
        .map(|id| FileSpec {
            id,
            class: FileClass::Installed,
            path: Some(format!("/bin/tool{id}")),
        })
        .collect();
    let records: Vec<TraceRecord> = base
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| TraceRecord {
            at: r.at,
            client: r.client,
            op: TraceOp::Read {
                file: (i % 8) as u64,
            },
        })
        .collect();
    Trace::new(files, records)
}

#[derive(Serialize)]
struct AblationRow {
    clients: u32,
    mode: String,
    consistency_msgs: u64,
    hit_rate: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();

    println!("Section 4 ablation A: per-client extension vs multicast, by client count\n");
    for n in [1u32, 5, 20] {
        let trace = installed_workload(n, 11);
        for (label, installed, batch) in [
            ("per-client, on-demand", InstalledMode::PerClient, false),
            ("per-client, batched", InstalledMode::PerClient, true),
            (
                "multicast (section 4)",
                InstalledMode::Multicast {
                    tick: Dur::from_secs(30),
                    term: Dur::from_secs(60),
                },
                false,
            ),
        ] {
            let cfg = SystemConfig {
                term: TermSpec::Fixed(Dur::from_secs(10)),
                installed,
                batch_extensions: batch,
                warmup: Dur::from_secs(60),
                seed: 3,
                ..SystemConfig::default()
            };
            let r = run_trace(&cfg, &trace);
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                r.consistency_msgs.to_string(),
                format!("{:.3}", r.hit_rate()),
            ]);
            json.push(AblationRow {
                clients: n,
                mode: label.into(),
                consistency_msgs: r.consistency_msgs,
                hit_rate: r.hit_rate(),
            });
        }
    }
    println!(
        "{}",
        table(&["clients", "mode", "consistency msgs", "hit rate"], &rows)
    );

    // Ablation B: anticipatory renewal trades server load for zero misses.
    println!("Section 4 ablation B: anticipatory renewal (single client, V trace)\n");
    let trace = lease_workload::VTrace::calibrated(1989).generate();
    let mut rows = Vec::new();
    for (label, anticipatory) in [
        ("on-demand", None),
        ("anticipatory 5 s", Some(Dur::from_secs(5))),
    ] {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(10)),
            anticipatory,
            warmup: Dur::from_secs(60),
            seed: 3,
            ..SystemConfig::default()
        };
        let r = run_trace(&cfg, &trace);
        rows.push(vec![
            label.to_string(),
            r.consistency_msgs.to_string(),
            format!("{:.3}", r.hit_rate()),
            format!("{:.3}", r.mean_delay_ms()),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "extension policy",
                "consistency msgs",
                "hit rate",
                "mean delay (ms)"
            ],
            &rows
        )
    );
    println!("(anticipatory renewal buys hits and latency at the cost of server load,");
    println!(" including while the client is idle — exactly the trade-off section 4 notes)\n");

    // Ablation C: installing a new version under multicast management
    // never multicasts approval requests, no matter how many clients.
    println!("Section 4 ablation C: delayed update avoids approval implosion\n");
    println!("(one client is unreachable when the new version is installed, the case");
    println!(" section 4 argues makes delayed update competitive on delay)\n");
    let mut rows = Vec::new();
    for n in [5u32, 20] {
        let mut trace = installed_workload(n, 13);
        // One administrative install modeled as a client write at 300 s.
        trace.records.push(TraceRecord {
            at: Time::from_secs(300),
            client: 0,
            op: TraceOp::Write { file: 0 },
        });
        let trace = Trace::new(trace.files.clone(), trace.records.clone());
        for (label, installed) in [
            ("per-client leases", InstalledMode::PerClient),
            (
                "multicast + delayed update",
                InstalledMode::Multicast {
                    tick: Dur::from_secs(30),
                    term: Dur::from_secs(60),
                },
            ),
        ] {
            let mut cfg = SystemConfig {
                term: TermSpec::Fixed(Dur::from_secs(10)),
                installed,
                warmup: Dur::from_secs(60),
                seed: 3,
                max_retries: 300,
                ..SystemConfig::default()
            };
            // Client n-1 crashes just before the install and never returns.
            cfg.crashes = vec![lease_vsys::CrashEvent {
                at: Time::from_secs(295),
                node: lease_vsys::NodeSel::Client(n - 1),
                recover_at: None,
            }];
            let r = run_trace(&cfg, &trace);
            rows.push(vec![
                n.to_string(),
                label.to_string(),
                format!("{:.1}", r.write_delay.max),
                r.approval_msgs.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["clients", "mode", "install delay (s)", "approval msgs"],
            &rows
        )
    );
    println!("(per-client leases must contact every holder and still wait out the");
    println!(" unreachable one's term; delayed update waits its term with zero callbacks");
    println!(" and no response implosion)");
    save_json("installed_ablation", &json);
}
