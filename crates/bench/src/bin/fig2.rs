//! Figure 2: average delay added to each operation by consistency, vs
//! lease term, on the local-area (V) parameters.
//!
//! The paper notes the S = 1 … 40 curves are "indistinguishable in the
//! graph as shown" because writes are a small fraction of operations; the
//! table below shows exactly that. The *Trace* column is measured from the
//! simulated system.

use lease_analytic::Params;
use lease_bench::sweep::{available_cores, take_threads_arg};
use lease_bench::{figure_terms, run_sim_sweep, save_json, spark, table};
use lease_workload::VTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Row {
    term: f64,
    s1_ms: f64,
    s10_ms: f64,
    s40_ms: f64,
    trace_ms: f64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads_arg(&mut args, available_cores()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a} (only --threads N|auto is accepted)");
        std::process::exit(2);
    }
    let base = Params::v_system();
    let terms = figure_terms();
    let trace = VTrace::calibrated(1989).generate();
    // One simulated run per term, fanned across the sweep runner.
    let measured_delays: Vec<f64> = run_sim_sweep(&trace, &[7], &terms, threads)
        .iter()
        .map(|r| r.mean_delay_ms)
        .collect();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (i, &t) in terms.iter().enumerate() {
        let d = |sh: f64| base.with_sharing(sh).added_delay(t) * 1e3;
        let measured = measured_delays[i];
        let row = Fig2Row {
            term: t,
            s1_ms: d(1.0),
            s10_ms: d(10.0),
            s40_ms: d(40.0),
            trace_ms: measured,
        };
        rows.push(vec![
            format!("{t:.1}"),
            format!("{:.3}", row.s1_ms),
            format!("{:.3}", row.s10_ms),
            format!("{:.3}", row.s40_ms),
            format!("{:.3}", row.trace_ms),
        ]);
        json.push(row);
    }

    println!("Figure 2: delay due to consistency (ms per operation, V parameters)\n");
    println!(
        "{}",
        table(
            &["term (s)", "S=1", "S=10", "S=40", "Trace (measured)"],
            &rows
        )
    );
    println!(
        "S=1   {}",
        spark(&json.iter().map(|r| r.s1_ms).collect::<Vec<_>>())
    );
    println!(
        "Trace {}",
        spark(&json.iter().map(|r| r.trace_ms).collect::<Vec<_>>())
    );
    println!();
    let spread: f64 = json
        .iter()
        .skip(1)
        .map(|r| (r.s40_ms - r.s1_ms).abs())
        .fold(0.0, f64::max);
    println!(
        "paper: the S = 1..40 curves are indistinguishable; ours differ by at most {spread:.4} ms"
    );
    println!("paper: much of the benefit arrives by ~10 s terms; delay at 10 s is");
    let d0 = json[0].s1_ms;
    let d10 = json.iter().find(|r| r.term == 10.0).unwrap().s1_ms;
    println!(
        "ours : {:.3} ms vs {:.3} ms at term 0 ({:.0}% reduction)",
        d10,
        d0,
        (1.0 - d10 / d0) * 100.0
    );
    save_json("fig2", &json);
}
