//! Simulation-side perf trajectory: single-run engine speed and sweep
//! scaling.
//!
//! Two measurements, mirroring `svc_load`'s role on the service side:
//!
//! * **single-run** — the full simulated system (V compile trace) run
//!   repeatedly on one thread, reported as simulator events per second.
//!   Measured once per event-queue backend (the default timer wheel and
//!   the binary-heap executable spec) at two lease terms: 10 s, where
//!   the pending set stays small and the backends sit near parity, and
//!   300 s, where the pending set is dominated by far-out expiry timers
//!   — the regime the wheel exists for, since the heap pays `O(log n)`
//!   on the whole pending set per op while the wheel only touches the
//!   events actually surfacing. The recorded `wheel_over_heap` /
//!   `wheel_over_heap_long` ratios track both. With the `alloc-count`
//!   feature the run also reports heap allocations per event.
//! * **sweep** — the `seeds × terms` experiment grid behind the figure
//!   binaries, run at 1, 2 and 4 worker threads through
//!   [`lease_bench::sweep::run`]. Wall-clock per thread count gives the
//!   parallel speedup; the per-thread-count digests must be identical
//!   (the sweep is deterministic by construction).
//!
//! Results go to `BENCH_sim.json`; `--check PATH` re-measures and gates
//! against a recorded baseline instead of writing (ratios only — raw
//! events/s is machine-dependent), with one re-measure before failing.

use std::time::Instant;

use lease_bench::sweep::available_cores;
use lease_bench::{allocations, figure_terms, run_at_term_with, run_sim_sweep, sweep_digest};
use lease_clock::Dur;
use lease_sim::QueueKind;
use lease_workload::{Trace, VTrace};

const HELP: &str = "\
sim_bench: simulation engine + sweep-runner perf trajectory

  --quick         smaller single-run budget and sweep grid (CI smoke)
  --threads LIST  comma-separated sweep worker counts (default 1,2,4;
                  each entry N or `auto`)
  --json PATH     where to write results (default BENCH_sim.json)
  --check PATH    measure, then gate against the baseline at PATH instead
                  of writing: sweep digests must match across thread
                  counts, and the wheel/heap events-per-second ratio and
                  the 4-thread sweep speedup must each stay within 25% of
                  the baseline's. The baseline must have been recorded in
                  the same mode (quick/full) as this run — comparing
                  ratios across workloads is meaningless. One re-measure
                  before failing.
  --help          this text

On a single hardware thread the sweep speedups land near 1.0x (workers
time-slice one core); the digest equality and wheel/heap gates still
bite there, and the speedup gate compares against the baseline recorded
on the same class of host.";

#[derive(serde::Serialize, serde::Deserialize)]
struct SingleRun {
    queue: String,
    term_s: f64,
    runs: u64,
    sim_events: u64,
    events_per_sec: f64,
    /// `None` when built without the `alloc-count` feature.
    allocs_per_event: Option<f64>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct SweepTiming {
    threads: usize,
    wall_s: f64,
    digest: String,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct SimBench {
    schema: String,
    quick: bool,
    cores: usize,
    /// Single-run engine speed per backend ("wheel", "heap") and term.
    single: Vec<SingleRun>,
    /// events/s wheel ÷ events/s heap, 10 s terms (small pending set).
    wheel_over_heap: f64,
    /// Same ratio at 300 s terms (pending set dominated by far-out
    /// expiry timers — the wheel's home regime).
    wheel_over_heap_long: f64,
    sweep_cells: usize,
    sweep: Vec<SweepTiming>,
}

/// Runs `trace` repeatedly on one backend until `min_elapsed` has been
/// spent simulating, and reports aggregate events/s.
fn measure_single(trace: &Trace, term: Dur, queue: QueueKind, min_elapsed: f64) -> SingleRun {
    // One untimed warmup run to fault in lazy setup.
    let _ = run_at_term_with(trace, term, 7, queue);
    let before_allocs = allocations();
    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut events = 0u64;
    while t0.elapsed().as_secs_f64() < min_elapsed {
        let r = run_at_term_with(trace, term, 7 + runs, queue);
        events += r.sim_events;
        runs += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let allocs_per_event = allocations()
        .zip(before_allocs)
        .map(|(a, b)| (a - b) as f64 / events.max(1) as f64);
    SingleRun {
        queue: format!("{queue:?}").to_lowercase(),
        term_s: term.as_secs_f64(),
        runs,
        sim_events: events,
        events_per_sec: events as f64 / elapsed,
        allocs_per_event,
    }
}

fn measure(quick: bool, thread_counts: &[usize]) -> SimBench {
    // Single-run workload: the V trace scaled to 120 modules — big
    // enough that one run is dominated by steady-state event churn.
    let single_trace = VTrace::scaled(1989, 120).generate();
    let min_elapsed = if quick { 0.3 } else { 1.5 };
    let ratio_at = |term_s: u64| {
        let term = Dur::from_secs(term_s);
        let wheel = measure_single(&single_trace, term, QueueKind::Wheel, min_elapsed);
        let heap = measure_single(&single_trace, term, QueueKind::Heap, min_elapsed);
        let ratio = wheel.events_per_sec / heap.events_per_sec.max(1e-9);
        println!(
            "single-run {term_s:>3}s terms: wheel {:>9.0} ev/s  heap {:>9.0} ev/s  ratio {:.2}x  allocs/ev {}",
            wheel.events_per_sec,
            heap.events_per_sec,
            ratio,
            wheel
                .allocs_per_event
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "n/a".into()),
        );
        (wheel, heap, ratio)
    };
    let (wheel, heap, wheel_over_heap) = ratio_at(10);
    let (wheel_long, heap_long, wheel_over_heap_long) = ratio_at(300);

    // Sweep workload: the calibrated figure grid.
    let sweep_trace = VTrace::calibrated(1989).generate();
    let seeds: &[u64] = if quick { &[7] } else { &[7, 8, 9] };
    let terms = if quick {
        vec![0.0, 1.0, 10.0]
    } else {
        figure_terms()
    };
    let cells = seeds.len() * terms.len();
    let mut sweep = Vec::new();
    for &t in thread_counts {
        let t0 = Instant::now();
        let rows = run_sim_sweep(&sweep_trace, seeds, &terms, t);
        let wall_s = t0.elapsed().as_secs_f64();
        let digest = sweep_digest(&rows);
        println!("sweep: threads={t:<2} cells={cells:<3} wall={wall_s:.3}s digest={digest}");
        sweep.push(SweepTiming {
            threads: t,
            wall_s,
            digest,
        });
    }
    SimBench {
        schema: "lease-bench/BENCH_sim/v1".to_string(),
        quick,
        cores: available_cores(),
        single: vec![wheel, heap, wheel_long, heap_long],
        wheel_over_heap,
        wheel_over_heap_long,
        sweep_cells: cells,
        sweep,
    }
}

fn speedup(bench: &SimBench, threads: usize) -> Option<f64> {
    let t1 = bench.sweep.iter().find(|s| s.threads == 1)?;
    let tn = bench.sweep.iter().find(|s| s.threads == threads)?;
    Some(t1.wall_s / tn.wall_s.max(1e-9))
}

/// The gate: digests identical across thread counts (hard — determinism
/// is a correctness property), then the wheel/heap ratio and 4-thread
/// speedup each within 25% of the baseline's.
fn check(fresh: &SimBench, baseline_path: &str) -> Result<(), String> {
    if let Some(first) = fresh.sweep.first() {
        for s in &fresh.sweep {
            if s.digest != first.digest {
                return Err(format!(
                    "sweep digest diverged: threads={} gave {} but threads={} gave {}",
                    first.threads, first.digest, s.threads, s.digest
                ));
            }
        }
    }
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: SimBench =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {baseline_path}: {e:?}"))?;
    // Ratios only make sense against a baseline measured on the same
    // workload and budget, so the recorded mode must match the gate's.
    if fresh.quick != baseline.quick {
        let mode = |quick: bool| if quick { "quick" } else { "full" };
        return Err(format!(
            "baseline {baseline_path} was recorded in {} mode but this run is {} mode; \
             re-record it with the gate's flags (CI uses --quick)",
            mode(baseline.quick),
            mode(fresh.quick),
        ));
    }
    for (what, got, base) in [
        (
            "wheel/heap",
            fresh.wheel_over_heap,
            baseline.wheel_over_heap,
        ),
        (
            "wheel/heap long-term",
            fresh.wheel_over_heap_long,
            baseline.wheel_over_heap_long,
        ),
    ] {
        let floor = base * 0.75;
        println!("check {what}: {got:.2}x vs baseline {base:.2}x (floor {floor:.2}x)");
        if got < floor {
            return Err(format!(
                "{what} events-per-second ratio {got:.2}x regressed >25% below baseline {base:.2}x"
            ));
        }
    }
    if let (Some(f4), Some(b4)) = (speedup(fresh, 4), speedup(&baseline, 4)) {
        let floor = b4 * 0.75;
        println!("check sweep speedup t4: {f4:.2}x vs baseline {b4:.2}x (floor {floor:.2}x)");
        if f4 < floor {
            return Err(format!(
                "4-thread sweep speedup {f4:.2}x regressed >25% below baseline {b4:.2}x"
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json_path = "BENCH_sim.json".to_string();
    let mut check_path: Option<String> = None;
    let mut thread_list = "1,2,4".to_string();

    // `--threads` here takes a comma-separated list of worker counts to
    // sweep over, so parse it by hand rather than via take_threads_arg
    // (each entry still accepts `auto`).
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        match (args[i].as_str(), value) {
            ("--help", _) | ("-h", _) => {
                println!("{HELP}");
                return;
            }
            ("--quick", _) => {
                quick = true;
                i += 1;
            }
            ("--threads", Some(v)) => {
                thread_list = v;
                i += 2;
            }
            ("--json", Some(v)) => {
                json_path = v;
                i += 2;
            }
            ("--check", Some(v)) => {
                check_path = Some(v);
                i += 2;
            }
            (other, _) => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let thread_counts: Vec<usize> = thread_list
        .split(',')
        .map(|s| {
            lease_bench::sweep::parse_threads(s.trim()).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();

    println!(
        "sim_bench: {} mode, sweep threads {:?} ({} cores)",
        if quick { "quick" } else { "full" },
        thread_counts,
        available_cores(),
    );
    let fresh = measure(quick, &thread_counts);
    match check_path {
        Some(path) => {
            if let Err(first) = check(&fresh, &path) {
                // One retry before failing: wall-clock ratios can be
                // unlucky on a loaded host.
                eprintln!("sim_bench --check below floor ({first}); re-measuring once");
                let again = measure(quick, &thread_counts);
                if let Err(e) = check(&again, &path) {
                    eprintln!("sim_bench --check FAILED: {e}");
                    std::process::exit(1);
                }
            }
            println!("sim_bench --check OK");
        }
        None => match serde_json::to_string_pretty(&fresh) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&json_path, s + "\n") {
                    eprintln!("warning: cannot write {json_path}: {e}");
                } else {
                    println!("wrote {json_path}");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize results: {e:?}"),
        },
    }
}
