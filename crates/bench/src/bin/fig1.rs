//! Figure 1: relative server consistency load vs lease term.
//!
//! Reproduces the paper's Figure 1: the analytic curves for sharing
//! degrees S = 1, 10, 20, 40 (formula 1 of §3.1, V parameters of Table 2)
//! and the *Trace* curve from a trace-driven simulation of the synthetic
//! V compile trace, each normalized to the zero-term load.

use lease_analytic::Params;
use lease_bench::sweep::{available_cores, take_threads_arg};
use lease_bench::{f3, figure_terms, run_sim_sweep, save_json, spark, table};
use lease_workload::VTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Row {
    term: f64,
    s1: f64,
    s10: f64,
    s20: f64,
    s40: f64,
    trace: f64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads_arg(&mut args, available_cores()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a} (only --threads N|auto is accepted)");
        std::process::exit(2);
    }
    let base = Params::v_system();
    let terms = figure_terms();

    // The Trace curve: run the full simulated system at each term (fanned
    // across the sweep runner; each term is one self-contained sim) and
    // normalize consistency messages to the zero-term run.
    let trace = VTrace::calibrated(1989).generate();
    let trace_loads: Vec<f64> = run_sim_sweep(&trace, &[7], &terms, threads)
        .iter()
        .map(|r| r.consistency_msgs as f64)
        .collect();
    let trace_zero = trace_loads[0].max(1.0);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (i, &t) in terms.iter().enumerate() {
        let s = |sh: f64| base.with_sharing(sh).relative_load(t);
        let row = Fig1Row {
            term: t,
            s1: s(1.0),
            s10: s(10.0),
            s20: s(20.0),
            s40: s(40.0),
            trace: trace_loads[i] / trace_zero,
        };
        rows.push(vec![
            format!("{t:.1}"),
            f3(row.s1),
            f3(row.s10),
            f3(row.s20),
            f3(row.s40),
            f3(row.trace),
        ]);
        json.push(row);
    }

    println!("Figure 1: relative server consistency load vs lease term (V parameters)\n");
    println!(
        "{}",
        table(&["term (s)", "S=1", "S=10", "S=20", "S=40", "Trace"], &rows)
    );
    println!(
        "S=1   {}",
        spark(&json.iter().map(|r| r.s1).collect::<Vec<_>>())
    );
    println!(
        "S=40  {}",
        spark(&json.iter().map(|r| r.s40).collect::<Vec<_>>())
    );
    println!(
        "Trace {}",
        spark(&json.iter().map(|r| r.trace).collect::<Vec<_>>())
    );

    // The paper's reading of the figure.
    let ten = json.iter().find(|r| r.term == 10.0).expect("10 s row");
    println!();
    println!("paper: at S = 1 a 10 s term cuts consistency traffic to ~10% of zero-term");
    println!("ours : S=1 at 10 s -> {} of zero-term", f3(ten.s1));
    println!(
        "ours : Trace at 10 s -> {} of zero-term (knee sharper and lower, as the paper",
        f3(ten.trace)
    );
    println!("       expects for bursty real traces)");
    save_json("fig1", &json);
}
