//! Closed-loop load generator for the `lease-svc` runtime.
//!
//! For each shard count (1, 2, 4, 8 by default) this spawns a sharded
//! lease service over in-memory storage, drives it with closed-loop
//! client threads issuing fetches plus an occasional write (which
//! exercises the approval round trip, including cross-shard write-id
//! translation), and reports sustained grants/sec and p50/p95/p99 op
//! latency.
//!
//! Environment knobs:
//!
//! | variable             | meaning                              | default   |
//! |----------------------|--------------------------------------|-----------|
//! | `LEASE_LOAD_MS`      | measured window per configuration    | 1000      |
//! | `LEASE_LOAD_CLIENTS` | closed-loop client threads           | 4         |
//! | `LEASE_LOAD_FILES`   | distinct resources                   | 256       |
//! | `LEASE_LOAD_SHARDS`  | comma-separated shard counts         | 1,2,4,8   |
//!
//! On a single hardware thread the shard counts should land within noise
//! of each other (the workers time-slice one core); the sweep exists to
//! show scaling on real multi-core hosts and to bound the sharding
//! overhead on this one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use lease_clock::Dur;
use lease_core::{
    ClientId, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient, ToServer,
};
use lease_svc::{ClientSink, LeaseService, SvcConfig, SvcHandle, SvcHooks};

type R = u64;
type D = u64;

/// Delivers shard output onto per-client reply channels.
struct ChannelSink {
    txs: Vec<Sender<ToClient<R, D>>>,
}

impl ClientSink<R, D> for ChannelSink {
    fn deliver(&self, to: ClientId, msg: ToClient<R, D>) {
        let _ = self.txs[to.0 as usize].send(msg);
    }
}

/// One closed-loop client: send an op, wait for its reply, repeat.
/// Returns per-op latencies in nanoseconds.
fn client_loop(
    id: ClientId,
    handle: SvcHandle<R, D>,
    rx: Receiver<ToClient<R, D>>,
    files: u64,
    stop: Arc<AtomicBool>,
) -> Vec<u64> {
    // Deterministic per-client LCG so runs are comparable.
    let mut rng: u64 =
        0x9e37_79b9_7f4a_7c15 ^ (u64::from(id.0)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let mut next_req: u64 = 1;
    let mut latencies = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let resource = (rng >> 33) % files;
        let req = ReqId(next_req);
        next_req += 1;
        let msg = if next_req.is_multiple_of(32) {
            ToServer::Write {
                req,
                resource,
                data: next_req,
            }
        } else {
            ToServer::Fetch {
                req,
                resource,
                cached: None,
                also_extend: Vec::new(),
            }
        };
        let t0 = Instant::now();
        if handle.send(id, msg).is_err() {
            break;
        }
        // Closed loop: wait for this op's reply, approving any write
        // callbacks that arrive meanwhile (other clients' writes cannot
        // commit without our approval).
        loop {
            let m = match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(m) => m,
                Err(_) => return latencies,
            };
            match m {
                // A fetch may be answered in parts (the cross-shard split,
                // or a write-blocked target); done once the target resource
                // is granted.
                ToClient::Grants { req: r, grants }
                    if r == req && grants.iter().any(|g| g.resource == resource) =>
                {
                    break;
                }
                ToClient::WriteDone { req: r, .. } if r == req => break,
                ToClient::ApprovalRequest { write_id, .. } => {
                    let _ = handle.send(id, ToServer::Approve { write_id });
                }
                _ => {}
            }
        }
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    // Grace drain: peers may still be waiting on approvals from us for
    // their final in-flight write.
    let grace = Instant::now();
    while grace.elapsed() < Duration::from_millis(100) {
        if let Ok(ToClient::ApprovalRequest { write_id, .. }) =
            rx.recv_timeout(Duration::from_millis(20))
        {
            let _ = handle.send(id, ToServer::Approve { write_id });
        }
    }
    latencies
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_config(shards: usize, clients: u32, files: u64, window: Duration) {
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..clients {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let service = LeaseService::spawn(
        SvcConfig {
            shards,
            ..SvcConfig::default()
        },
        Arc::new(ChannelSink { txs }),
        SvcHooks::default(),
        move |_| {
            // Every shard preloads the full set; the router only sends a
            // shard its own partition, so the copies never disagree.
            let mut store: MemStorage<R, D> = MemStorage::new();
            for r in 0..files {
                store.insert(r, r);
            }
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(5))),
                Box::new(store) as Box<dyn Storage<R, D> + Send>,
            )
        },
    );
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(i, rx)| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || client_loop(ClientId(i as u32), handle, rx, files, stop))
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed();
    let mut lats: Vec<u64> = Vec::new();
    for w in workers {
        lats.extend(w.join().expect("client thread"));
    }
    let grants = service
        .stats()
        .map(|s| s.counters.grants)
        .unwrap_or_default();
    service.shutdown();
    lats.sort_unstable();
    println!(
        "shards={shards:<2} ops={:>8} ops/s={:>8.0} grants/s={:>8.0} p50={:>5}us p95={:>5}us p99={:>5}us",
        lats.len(),
        lats.len() as f64 / elapsed.as_secs_f64(),
        grants as f64 / elapsed.as_secs_f64(),
        percentile(&lats, 0.50) / 1_000,
        percentile(&lats, 0.95) / 1_000,
        percentile(&lats, 0.99) / 1_000,
    );
}

fn main() {
    let window = Duration::from_millis(env_u64("LEASE_LOAD_MS", 1_000));
    let clients = env_u64("LEASE_LOAD_CLIENTS", 4) as u32;
    let files = env_u64("LEASE_LOAD_FILES", 256);
    let shard_list = std::env::var("LEASE_LOAD_SHARDS").unwrap_or_else(|_| "1,2,4,8".into());
    println!(
        "svc_load: {clients} closed-loop clients, {files} files, {}ms window per config",
        window.as_millis()
    );
    for s in shard_list
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
    {
        run_config(s.max(1), clients, files, window);
    }
}
