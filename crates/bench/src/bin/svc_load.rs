//! Closed-loop load generator for the `lease-svc` runtime.
//!
//! For each shard count (1, 2, 4, 8 by default) this spawns a sharded
//! lease service over in-memory storage, drives it with closed-loop
//! client threads issuing fetches plus an occasional write (which
//! exercises the approval round trip, including cross-shard write-id
//! translation), and reports sustained grants/sec and p50/p95/p99 op
//! latency. Results are also written to `BENCH_svc.json` so future PRs
//! can diff the sweep against a recorded baseline.
//!
//! Flags (see `--help`) take precedence over the environment knobs:
//!
//! | variable             | meaning                              | default   |
//! |----------------------|--------------------------------------|-----------|
//! | `LEASE_LOAD_MS`      | measured window per configuration    | 1000      |
//! | `LEASE_LOAD_CLIENTS` | closed-loop client threads           | 4         |
//! | `LEASE_LOAD_FILES`   | distinct resources                   | 256       |
//! | `LEASE_LOAD_SHARDS`  | comma-separated shard counts         | 1,2,4,8   |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use lease_bench::percentile;
use lease_clock::Dur;
use lease_core::{
    ClientId, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient, ToServer,
};
use lease_svc::{ClientSink, LeaseService, SvcConfig, SvcHandle, SvcHooks};

type R = u64;
type D = u64;

const HELP: &str = "\
svc_load: closed-loop load generator for the sharded lease service

  --threads N     closed-loop client threads; `auto` detects the host's
                  parallelism (default: 4, or LEASE_LOAD_CLIENTS)
  --shards LIST   comma-separated shard counts to sweep (default 1,2,4,8)
  --ms N          measured window per configuration in ms (default 1000)
  --files N       distinct resources (default 256)
  --json PATH     where to write the sweep results (default BENCH_svc.json)
  --help          this text

Client threads are pinned round-robin across cores (best effort, Linux
only) so the sweep measures shard *speedup* on multi-core hosts. On a
single hardware thread the shard counts land within noise of each other:
shard workers and clients time-slice one core, so the sweep bounds
sharding overhead there rather than demonstrating scaling.";

/// Best-effort pin of the calling thread to `core` (Linux). Declared raw
/// to stay dependency-free; failures are ignored — affinity is an
/// optimization of the measurement, not a correctness requirement.
#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) {
    // A 1024-bit cpu_set_t, the kernel ABI's default width.
    let mut mask = [0u64; 16];
    let bit = core % 1024;
    mask[bit / 64] |= 1 << (bit % 64);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask outlives the call and the length matches it; pid 0
    // means "calling thread" for sched_setaffinity.
    unsafe {
        let _ = sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) {}

/// Delivers shard output onto per-client reply channels.
struct ChannelSink {
    txs: Vec<Sender<ToClient<R, D>>>,
}

impl ClientSink<R, D> for ChannelSink {
    fn deliver(&self, to: ClientId, msg: ToClient<R, D>) {
        let _ = self.txs[to.0 as usize].send(msg);
    }
}

/// One closed-loop client: send an op, wait for its reply, repeat.
/// Returns per-op latencies in nanoseconds.
fn client_loop(
    id: ClientId,
    handle: SvcHandle<R, D>,
    rx: Receiver<ToClient<R, D>>,
    files: u64,
    stop: Arc<AtomicBool>,
) -> Vec<u64> {
    pin_to_core(id.0 as usize);
    // Deterministic per-client LCG so runs are comparable.
    let mut rng: u64 =
        0x9e37_79b9_7f4a_7c15 ^ (u64::from(id.0)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let mut next_req: u64 = 1;
    let mut latencies = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let resource = (rng >> 33) % files;
        let req = ReqId(next_req);
        next_req += 1;
        let msg = if next_req.is_multiple_of(32) {
            ToServer::Write {
                req,
                resource,
                data: next_req,
            }
        } else {
            ToServer::Fetch {
                req,
                resource,
                cached: None,
                also_extend: Vec::new(),
            }
        };
        let t0 = Instant::now();
        if handle.send(id, msg).is_err() {
            break;
        }
        // Closed loop: wait for this op's reply, approving any write
        // callbacks that arrive meanwhile (other clients' writes cannot
        // commit without our approval).
        loop {
            let m = match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(m) => m,
                Err(_) => return latencies,
            };
            match m {
                // A fetch may be answered in parts (the cross-shard split,
                // or a write-blocked target); done once the target resource
                // is granted.
                ToClient::Grants { req: r, grants }
                    if r == req && grants.iter().any(|g| g.resource == resource) =>
                {
                    break;
                }
                ToClient::WriteDone { req: r, .. } if r == req => break,
                ToClient::ApprovalRequest { write_id, .. } => {
                    let _ = handle.send(id, ToServer::Approve { write_id });
                }
                _ => {}
            }
        }
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    // Grace drain: peers may still be waiting on approvals from us for
    // their final in-flight write.
    let grace = Instant::now();
    while grace.elapsed() < Duration::from_millis(100) {
        if let Ok(ToClient::ApprovalRequest { write_id, .. }) =
            rx.recv_timeout(Duration::from_millis(20))
        {
            let _ = handle.send(id, ToServer::Approve { write_id });
        }
    }
    latencies
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One row of the sweep, as printed and as recorded in `BENCH_svc.json`.
#[derive(serde::Serialize, serde::Deserialize)]
struct SweepRow {
    shards: usize,
    ops: u64,
    ops_per_sec: f64,
    grants_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct SvcBench {
    schema: String,
    clients: u32,
    files: u64,
    window_ms: u64,
    rows: Vec<SweepRow>,
}

fn run_config(shards: usize, clients: u32, files: u64, window: Duration) -> SweepRow {
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..clients {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let service = LeaseService::spawn(
        SvcConfig {
            shards,
            ..SvcConfig::default()
        },
        Arc::new(ChannelSink { txs }),
        SvcHooks::default(),
        move |_| {
            // Every shard preloads the full set; the router only sends a
            // shard its own partition, so the copies never disagree.
            let mut store: MemStorage<R, D> = MemStorage::new();
            for r in 0..files {
                store.insert(r, r);
            }
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(5))),
                Box::new(store) as Box<dyn Storage<R, D> + Send>,
            )
        },
    );
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = rxs
        .into_iter()
        .enumerate()
        .map(|(i, rx)| {
            let handle = handle.clone();
            let stop = stop.clone();
            std::thread::spawn(move || client_loop(ClientId(i as u32), handle, rx, files, stop))
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed();
    let mut lats: Vec<u64> = Vec::new();
    for w in workers {
        lats.extend(w.join().expect("client thread"));
    }
    let grants = service
        .stats()
        .map(|s| s.counters.grants)
        .unwrap_or_default();
    service.shutdown();
    lats.sort_unstable();
    let row = SweepRow {
        shards,
        ops: lats.len() as u64,
        ops_per_sec: lats.len() as f64 / elapsed.as_secs_f64(),
        grants_per_sec: grants as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&lats, 0.50) / 1_000,
        p95_us: percentile(&lats, 0.95) / 1_000,
        p99_us: percentile(&lats, 0.99) / 1_000,
    };
    println!(
        "shards={:<2} ops={:>8} ops/s={:>8.0} grants/s={:>8.0} p50={:>5}us p95={:>5}us p99={:>5}us",
        row.shards,
        row.ops,
        row.ops_per_sec,
        row.grants_per_sec,
        row.p50_us,
        row.p95_us,
        row.p99_us,
    );
    row
}

fn main() {
    let mut window = Duration::from_millis(env_u64("LEASE_LOAD_MS", 1_000));
    let mut clients = env_u64("LEASE_LOAD_CLIENTS", 4) as u32;
    let mut files = env_u64("LEASE_LOAD_FILES", 256);
    let mut shard_list = std::env::var("LEASE_LOAD_SHARDS").unwrap_or_else(|_| "1,2,4,8".into());
    let mut json_path = "BENCH_svc.json".to_string();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match (args[i].as_str(), value) {
            ("--help", _) | ("-h", _) => {
                println!("{HELP}");
                return;
            }
            ("--threads", Some(v)) => {
                clients = if v == "auto" {
                    std::thread::available_parallelism()
                        .map(|n| n.get() as u32)
                        .unwrap_or(clients)
                } else {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("--threads wants a number or `auto`, got {v}");
                        std::process::exit(2);
                    })
                };
                i += 2;
            }
            ("--shards", Some(v)) => {
                shard_list = v.clone();
                i += 2;
            }
            ("--ms", Some(v)) => {
                window = Duration::from_millis(v.parse().unwrap_or(1_000));
                i += 2;
            }
            ("--files", Some(v)) => {
                files = v.parse().unwrap_or(256);
                i += 2;
            }
            ("--json", Some(v)) => {
                json_path = v.clone();
                i += 2;
            }
            (other, _) => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    println!(
        "svc_load: {clients} closed-loop clients, {files} files, {}ms window per config ({} cores)",
        window.as_millis(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let rows: Vec<SweepRow> = shard_list
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
        .map(|s| run_config(s.max(1), clients, files, window))
        .collect();
    let out = SvcBench {
        schema: "lease-bench/BENCH_svc/v1".to_string(),
        clients,
        files,
        window_ms: window.as_millis() as u64,
        rows,
    };
    match serde_json::to_string_pretty(&out) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&json_path, s + "\n") {
                eprintln!("warning: cannot write {json_path}: {e}");
            } else {
                println!("wrote {json_path}");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize sweep: {e:?}"),
    }
}
