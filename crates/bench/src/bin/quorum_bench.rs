//! Replicated-grantor benchmark: acquisition latency, renewal cost, and
//! the file-grant throughput cost of replication.
//!
//! Three measurements, matching the satellite's list:
//!
//! 1. **Grantor-lease acquisition latency.** From the deterministic
//!    virtual-time simulation (`lease_quorum::sim`): the cold election
//!    latency from boot, and the takeover latency after the serving
//!    grantor is killed, swept over seeds with message chaos. Virtual
//!    time, so the numbers are machine-independent and byte-stable.
//! 2. **Steady-state renewal cost.** Protocol messages per second of a
//!    quiet simulated run — what keeping the grantor lease alive costs
//!    when nothing fails. Also deterministic.
//! 3. **File-grant throughput vs the single-server baseline.** The same
//!    wall-clock client workload driven against an [`RtSystem`] (one
//!    server) and a [`ReplicatedSystem`] (3 grantor replicas); the
//!    reported ratio is replicated/single. Only the ratio ever gates —
//!    raw ops/s depend on the runner.
//!
//! Flags: `--quick` (short throughput window; the checked-in baseline's
//! mode), `--ms N` (override the window), `--json PATH` (write results),
//! `--check PATH` (gate against a baseline; one re-measure retry before
//! failing). Environment: `LEASE_QBENCH_MS` overrides the window like
//! `--ms`.

use std::time::{Duration, Instant};

use bytes::Bytes;
use lease_clock::Dur;
use lease_quorum::sim::{run as sim_run, SimConfig};
use lease_quorum::QuorumConfig;
use lease_rt::{FaultPlan, ReplicatedSystem, RtClientHandle, RtSystem};
use lease_vsys::HistoryEvent;

/// Machine-readable result row; `BENCH_quorum.json` is one of these.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct QuorumBench {
    /// Format tag; bump on incompatible change.
    schema: String,
    /// "quick" or "full" — a baseline only gates the same mode.
    mode: String,
    /// Wall-clock throughput window per system, milliseconds.
    window_ms: u64,
    /// Virtual time from boot to the first grantor acquisition (ms).
    cold_election_ms: f64,
    /// Median takeover latency after a grantor kill, over the seed sweep
    /// with message drop/dup/delay chaos (virtual ms).
    takeover_p50_ms: f64,
    /// 95th-percentile takeover latency over the same sweep (virtual ms).
    takeover_p95_ms: f64,
    /// Quiet-run protocol messages per (virtual) second — the price of
    /// keeping the grantor lease renewed when nothing fails.
    steady_msgs_per_sec: f64,
    /// Single-server client ops/s over the window (never gates).
    single_ops_per_sec: f64,
    /// Replicated (3 grantors) client ops/s, same workload (never gates).
    replicated_ops_per_sec: f64,
    /// replicated/single — the throughput cost of replication.
    throughput_ratio: f64,
}

const SCHEMA: &str = "lease-bench/BENCH_quorum/v1";

/// Virtual time of the first `GrantorAcquired` in `h`, if any.
fn first_acquire_ms(
    h: &lease_vsys::History,
    after_ms: u64,
    not_replica: Option<u32>,
) -> Option<f64> {
    h.events.iter().find_map(|e| match e {
        HistoryEvent::GrantorAcquired { replica, at, .. }
            if at.as_nanos() > after_ms * 1_000_000
                && not_replica.is_none_or(|r| *replica != r) =>
        {
            Some(at.as_nanos() as f64 / 1e6)
        }
        _ => None,
    })
}

/// Cold election latency: a quiet run from boot, deterministic.
fn cold_election_ms() -> f64 {
    let out = sim_run(&SimConfig::default());
    first_acquire_ms(&out.history, 0, None).expect("quiet run elects a grantor")
}

/// Takeover latency sweep: kill the serving leader at 1 s under light
/// message chaos, measure until a *different* replica acquires.
fn takeover_ms(seeds: std::ops::RangeInclusive<u64>) -> Vec<u64> {
    let kill_ms = 1_000u64;
    let mut lats: Vec<u64> = seeds
        .map(|seed| {
            let cfg = SimConfig {
                plan: FaultPlan::new(seed)
                    .kill_replica(Dur::from_millis(kill_ms), 0)
                    .drop_messages(0.02 + (seed % 5) as f64 * 0.01)
                    .duplicate_messages(0.02)
                    .delay_messages(Dur::from_millis(1 + seed % 4)),
                duration: Dur::from_secs(6),
                ..SimConfig::default()
            };
            let out = sim_run(&cfg);
            let at = first_acquire_ms(&out.history, kill_ms, Some(0))
                .expect("a successor takes over after the kill");
            (at - kill_ms as f64).max(0.0) as u64
        })
        .collect();
    lats.sort_unstable();
    lats
}

/// Messages/s of a quiet 10 s run — election amortized in, no faults.
fn steady_msgs_per_sec() -> f64 {
    let cfg = SimConfig::default();
    let out = sim_run(&cfg);
    out.messages_sent as f64 / cfg.duration.as_secs_f64()
}

/// Drives the shared closed-loop workload: round-robin reads over the
/// files from two clients, every fourth op a write. Returns ops/s.
fn drive(clients: &[RtClientHandle], files: &[lease_rt::server::Res], window: Duration) -> f64 {
    let start = Instant::now();
    let mut ops = 0u64;
    let mut k = 0u64;
    while start.elapsed() < window {
        let c = &clients[(k % clients.len() as u64) as usize];
        let f = files[(k % files.len() as u64) as usize];
        if k % 4 == 3 {
            let _ = c.write(f, format!("v{k}").into_bytes());
        } else {
            let _ = c.read(f);
        }
        ops += 1;
        k += 1;
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Quorum tuning for the wall-clock replicated system: fast enough that
/// election never eats into the measurement window.
fn bench_quorum() -> QuorumConfig {
    QuorumConfig {
        term: Dur::from_millis(250),
        max_term: Dur::from_millis(550),
        op_timeout: Dur::from_millis(60),
        retry_base: Dur::from_millis(10),
        stagger: Dur::from_millis(15),
        ..QuorumConfig::default()
    }
}

const FILES: usize = 8;

fn single_ops_per_sec(window: Duration) -> f64 {
    let mut b = RtSystem::builder()
        .term(Dur::from_millis(150))
        .retry_interval(Dur::from_millis(15))
        .max_retries(200)
        .clients(2)
        .shards(2);
    for i in 0..FILES {
        b = b.file(&format!("/data/f{i}"), Bytes::from(format!("s{i}")));
    }
    let sys = b.start();
    let files: Vec<_> = (0..FILES)
        .map(|i| sys.lookup(&format!("/data/f{i}")).unwrap())
        .collect();
    let clients = vec![sys.client(0), sys.client(1)];
    // Warm the caches so both systems start from the same state.
    for f in &files {
        let _ = clients[0].read(*f);
    }
    let ops = drive(&clients, &files, window);
    sys.shutdown();
    ops
}

fn replicated_ops_per_sec(window: Duration) -> f64 {
    let mut b = ReplicatedSystem::builder()
        .term(Dur::from_millis(150))
        .retry_interval(Dur::from_millis(15))
        .max_retries(200)
        .quorum(bench_quorum())
        .clients(2)
        .shards(2);
    for i in 0..FILES {
        b = b.file(&format!("/data/f{i}"), Bytes::from(format!("s{i}")));
    }
    let sys = b.start();
    let files: Vec<_> = (0..FILES)
        .map(|i| sys.lookup(&format!("/data/f{i}")).unwrap())
        .collect();
    let clients = vec![sys.client(0), sys.client(1)];
    for f in &files {
        let _ = clients[0].read(*f);
    }
    let ops = drive(&clients, &files, window);
    sys.shutdown();
    ops
}

fn measure(mode: &str, window: Duration) -> QuorumBench {
    let takeovers = takeover_ms(1..=20);
    let single = single_ops_per_sec(window);
    let replicated = replicated_ops_per_sec(window);
    QuorumBench {
        schema: SCHEMA.to_string(),
        mode: mode.to_string(),
        window_ms: window.as_millis() as u64,
        cold_election_ms: cold_election_ms(),
        takeover_p50_ms: lease_bench::percentile(&takeovers, 0.50) as f64,
        takeover_p95_ms: lease_bench::percentile(&takeovers, 0.95) as f64,
        steady_msgs_per_sec: steady_msgs_per_sec(),
        single_ops_per_sec: single,
        replicated_ops_per_sec: replicated,
        throughput_ratio: replicated / single.max(1e-9),
    }
}

fn print_bench(b: &QuorumBench) {
    println!(
        "cold election        {:>8.1} ms (virtual)",
        b.cold_election_ms
    );
    println!(
        "takeover p50/p95     {:>8.1} / {:.1} ms (virtual, 20 seeds)",
        b.takeover_p50_ms, b.takeover_p95_ms
    );
    println!(
        "renewal cost         {:>8.1} msgs/s (quiet run)",
        b.steady_msgs_per_sec
    );
    println!(
        "grant throughput     {:>8.0} ops/s single, {:.0} ops/s replicated (ratio {:.3}, {} ms window)",
        b.single_ops_per_sec, b.replicated_ops_per_sec, b.throughput_ratio, b.window_ms
    );
}

/// Gates `fresh` against `baseline`. Deterministic sim numbers must stay
/// within 25% (they only move when the protocol or tuning changes); the
/// wall-clock throughput ratio must not fall more than 25% below the
/// baseline's. Raw ops/s never gate.
fn check(fresh: &QuorumBench, baseline: &QuorumBench) -> Result<(), String> {
    if baseline.schema != SCHEMA {
        return Err(format!(
            "baseline schema {} != {SCHEMA}; regenerate with --json",
            baseline.schema
        ));
    }
    if baseline.mode != fresh.mode {
        return Err(format!(
            "baseline was measured in {} mode, this run is {} — compare like with like",
            baseline.mode, fresh.mode
        ));
    }
    let within = |name: &str, got: f64, base: f64| -> Result<(), String> {
        if got > base * 1.25 {
            return Err(format!(
                "{name} regressed: {got:.2} vs baseline {base:.2} (+25% limit)"
            ));
        }
        Ok(())
    };
    within(
        "cold election latency",
        fresh.cold_election_ms,
        baseline.cold_election_ms,
    )?;
    within(
        "takeover p95 latency",
        fresh.takeover_p95_ms,
        baseline.takeover_p95_ms,
    )?;
    within(
        "steady renewal msgs/s",
        fresh.steady_msgs_per_sec,
        baseline.steady_msgs_per_sec,
    )?;
    let floor = baseline.throughput_ratio * 0.75;
    if fresh.throughput_ratio < floor {
        return Err(format!(
            "replicated/single throughput ratio {:.3} fell below {:.3} (75% of baseline {:.3})",
            fresh.throughput_ratio, floor, baseline.throughput_ratio
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut json: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut window_ms = std::env::var("LEASE_QBENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--ms" => window_ms = it.next().and_then(|v| v.parse().ok()),
            "--json" => json = it.next(),
            "--check" => check_path = it.next(),
            "--help" | "-h" => {
                println!(
                    "quorum_bench [--quick] [--ms N] [--json PATH] [--check PATH]\n\
                     Replicated-grantor benchmark: acquisition/takeover latency,\n\
                     renewal message cost, and replicated-vs-single throughput."
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let window = Duration::from_millis(window_ms.unwrap_or(if quick { 400 } else { 1500 }));

    let mut bench = measure(mode, window);
    print_bench(&bench);

    if let Some(path) = &check_path {
        let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline: QuorumBench = serde_json::from_str(&data).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        if let Err(first) = check(&bench, &baseline) {
            // One re-measure before failing: the throughput leg is
            // wall-clock and a noisy neighbor can sink a single window.
            eprintln!("check failed ({first}); re-measuring once");
            bench = measure(mode, window);
            print_bench(&bench);
            if let Err(second) = check(&bench, &baseline) {
                eprintln!("quorum bench check failed: {second}");
                std::process::exit(1);
            }
        }
        println!("check ok vs {path}");
    }

    if let Some(path) = &json {
        let s = serde_json::to_string_pretty(&bench).expect("serialize") + "\n";
        std::fs::write(path, s).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
}
