//! Seeded overload-chaos sweep over the real-time deployment.
//!
//! Each seed derives an open-loop overload scenario — Poisson base load,
//! a burst window at several times the slow shard's capacity, optionally
//! a thundering herd aligning every client's first burst arrival — and
//! drives it against a *hardened* [`RtSystem`]: server-side admission
//! control and adaptive term degradation, client-side retry budgets, a
//! circuit breaker and propagated op deadlines. Two oracles judge every
//! run on the recorded true-time history:
//!
//! * `lease_faults::check_history` — shed and degraded responses must
//!   never create a consistency violation;
//! * `lease_faults::check_goodput` — once the burst ends, goodput must
//!   recover to a fraction of its pre-burst baseline within a bounded
//!   number of lease-term windows ([`Violation::GoodputCollapse`]
//!   otherwise).
//!
//! A **negative control** then re-runs the first seeds with every
//! protection stripped (no admission, no budgets, no breaker, no
//! deadline propagation) and the drivers retrying failures immediately —
//! the classic unbudgeted retry storm. Those runs must *fail* the
//! goodput oracle (while still passing consistency), proving the oracle
//! bites; the process exits non-zero if the storm somehow recovers.
//!
//! Environment knobs:
//!
//! | variable               | meaning                        | default |
//! |------------------------|--------------------------------|---------|
//! | `LEASE_OVERLOAD_SEEDS` | comma-separated seeds to sweep | 1..=12  |
//! | `LEASE_OVERLOAD_NEG`   | negative-control seed count    | 3       |

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lease_bench::sweep::{self, take_threads_arg};
use lease_clock::{Dur, Time};
use lease_core::{Backoff, RetryBudget, TermController};
use lease_faults::{check_goodput, check_history, GoodputSpec, Violation};
use lease_rt::{FaultPlan, RtSystem};
use lease_svc::{AdmissionControl, OverloadPlan};

const TERM: Dur = Dur::from_millis(100);
const BURST_AT: Dur = Dur::from_millis(300);
const BURST_LEN: Dur = Dur::from_millis(300);
/// Per-client Poisson rates: base load well under the slow shard's
/// ~1000 inputs/sec capacity, the burst several times over it.
const BASE_RATE: f64 = 150.0;
const BURST_RATE: f64 = 2000.0;
const CLIENTS: u32 = 2;
/// Cap on per-client outstanding ops; arrivals beyond it are dropped by
/// the generator (open loop, not an infinite thread pool).
const OUTSTANDING: usize = 128;
const RUN_LEN: Duration = Duration::from_millis(1700);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_seeds() -> Vec<u64> {
    std::env::var("LEASE_OVERLOAD_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| (1..=12).collect())
}

struct SeedReport {
    seed: u64,
    arrivals: u64,
    completed: u64,
    failed: u64,
    sheds: u64,
    degraded: u64,
    consistency: usize,
    collapse: Option<Violation>,
}

/// Drives one seed. `hardened` selects the full overload-robustness
/// stack; `false` is the unprotected negative-control configuration.
fn run_seed(seed: u64, hardened: bool) -> SeedReport {
    let plan = FaultPlan::new(seed)
        .with_overload(OverloadPlan {
            base_rate: BASE_RATE,
            burst_rate: BURST_RATE,
            burst_at: BURST_AT,
            burst_len: BURST_LEN,
            herd: seed.is_multiple_of(2),
        })
        .with_slow_shard(0, Dur::from_millis(1));
    let mut b = RtSystem::builder()
        .term(TERM)
        .epsilon(Dur::from_millis(5))
        .clients(CLIENTS)
        .shards(1)
        .chaos(plan.clone());
    if hardened {
        b = b
            .retry_interval(Dur::from_millis(10))
            .max_retries(50)
            .mailbox(128)
            .op_deadline(TERM) // Propagated: shards drop already-dead work.
            .retry_budget(RetryBudget::per_sec(20.0))
            .breaker(20, Dur::from_millis(50))
            .admission(AdmissionControl {
                shed_watermark: 0.25,
                stats_watermark: 0.9,
                retry_after: Dur::from_millis(10),
            })
            // Degradation watermarks sit *below* the shed watermark:
            // shorter terms are the gentle response, shedding the last
            // resort once the queue keeps growing anyway.
            .overload_control(TermController::new(Dur::from_millis(25), 0.05, 0.15));
    } else {
        // The storm configuration: fast fixed-interval retransmissions,
        // give-up by attempt count alone (nothing tells the server which
        // queued work is already dead), no shedding, no pacing.
        b = b
            .retry_interval(Dur::from_millis(2))
            .max_retries(25)
            .backoff(Backoff {
                multiplier: 1.0,
                cap: Dur::from_millis(2),
                jitter: 0.0,
            });
    }
    // Enough distinct files that the burst cannot be absorbed by warm
    // client caches alone: cold fetches and post-degradation re-fetches
    // keep reaching the server. Writes (below) always do.
    let files: Vec<String> = (0..64).map(|i| format!("/d/f{i}")).collect();
    for f in &files {
        b = b.file(f, b"seed".as_ref());
    }
    let sys = b.start();
    let resources: Vec<_> = files.iter().map(|f| sys.lookup(f).unwrap()).collect();

    let arrivals_n = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..CLIENTS as usize {
            let mut arr = plan.arrivals(c as u64).unwrap();
            let handle = sys.client(c);
            let resources = resources.clone();
            let (arrivals_n, completed, failed) =
                (arrivals_n.clone(), completed.clone(), failed.clone());
            s.spawn(move || {
                let outstanding = Arc::new(AtomicUsize::new(0));
                let mut k = 0u64;
                std::thread::scope(|ops| {
                    loop {
                        let at = Duration::from(arr.next_at());
                        if at >= RUN_LEN {
                            break;
                        }
                        let elapsed = start.elapsed();
                        if at > elapsed {
                            std::thread::sleep(at - elapsed);
                        }
                        arrivals_n.fetch_add(1, Ordering::Relaxed);
                        if outstanding.load(Ordering::Relaxed) >= OUTSTANDING {
                            failed.fetch_add(1, Ordering::Relaxed); // Load shed at the generator.
                            continue;
                        }
                        outstanding.fetch_add(1, Ordering::Relaxed);
                        // Deterministic per-client LCG resource pick; a
                        // quarter of the ops are write-through writes,
                        // which cost the server an approval round trip
                        // each — the load the burst is made of.
                        let mix = (seed ^ (c as u64) << 32 ^ k)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let r = resources[(mix >> 33) as usize % resources.len()];
                        let write = k.is_multiple_of(4);
                        k += 1;
                        let handle = handle.clone();
                        let outstanding = outstanding.clone();
                        let (completed, failed) = (completed.clone(), failed.clone());
                        ops.spawn(move || {
                            let mut tries = 0u32;
                            loop {
                                let ok = if write {
                                    handle.write(r, format!("w{k}").into_bytes()).is_ok()
                                } else {
                                    handle.read(r).is_ok()
                                };
                                if ok {
                                    completed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                tries += 1;
                                // Hardened drivers respect the failure (the
                                // stack already spent its retry budget); the
                                // unprotected ones hammer until it succeeds.
                                if hardened || tries >= 50 || start.elapsed() > RUN_LEN {
                                    failed.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                            outstanding.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });

    let (sheds, degraded) = sys
        .server_stats()
        .map(|s| (s.counters.sheds, s.counters.degraded_grants))
        .unwrap_or_default();
    let history = sys.history();
    sys.shutdown();
    let consistency = match check_history(&history) {
        Ok(()) => 0,
        Err(v) => {
            for violation in v.iter().take(3) {
                eprintln!("seed {seed}: {violation:?}");
            }
            v.len()
        }
    };
    // Recovery must land within a handful of lease terms of the burst
    // ending; the slack after the burst covers in-flight drain.
    let spec = GoodputSpec {
        baseline_from: Time::ZERO,
        overload_start: Time::ZERO + BURST_AT,
        overload_end: Time::ZERO + BURST_AT + BURST_LEN + Dur::from_millis(50),
        window: TERM + TERM,
        windows: 5,
        recover_frac: 0.8,
    };
    SeedReport {
        seed,
        arrivals: arrivals_n.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        sheds,
        degraded,
        consistency,
        collapse: check_goodput(&history, spec).err(),
    }
}

fn print_row(r: &SeedReport, expect_collapse: bool) -> bool {
    let goodput = match (&r.collapse, expect_collapse) {
        (None, false) => "recovered".to_string(),
        (Some(_), true) => "collapsed (expected)".to_string(),
        (None, true) => "RECOVERED (oracle did not bite)".to_string(),
        (
            Some(Violation::GoodputCollapse {
                baseline, achieved, ..
            }),
            false,
        ) => format!("COLLAPSE ({achieved:.0}/{baseline:.0} ops/s)"),
        (Some(v), false) => format!("COLLAPSE ({v:?})"),
    };
    let ok = (r.collapse.is_some() == expect_collapse) && r.consistency == 0;
    println!(
        "| {} | {} | {} | {} | {} | {} | {} | {} |",
        r.seed, r.arrivals, r.completed, r.failed, r.sheds, r.degraded, r.consistency, goodput
    );
    ok
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads_arg(&mut args, 1).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a} (only --threads N|auto is accepted)");
        std::process::exit(2);
    }
    let seeds = env_seeds();
    let neg = env_u64("LEASE_OVERLOAD_NEG", 3) as usize;

    println!(
        "overload chaos: burst {BURST_RATE:.0}/s/client for {}ms at t={}ms over a \
         ~1000 input/s shard ({} seeds hardened, {} unprotected)",
        BURST_LEN.as_nanos() / 1_000_000,
        BURST_AT.as_nanos() / 1_000_000,
        seeds.len(),
        neg.min(seeds.len()),
    );
    println!("| seed | arrivals | completed | failed | sheds | degraded | violations | goodput |");
    println!("|-----:|---------:|----------:|-------:|------:|---------:|-----------:|---------|");

    let mut failed = false;
    for r in sweep::run(threads, &seeds, |_, &seed| run_seed(seed, true)) {
        failed |= !print_row(&r, false);
    }

    // Negative control: the unprotected stack must collapse, or the
    // oracle proves nothing. Consistency must hold even mid-storm.
    let neg_seeds: Vec<u64> = seeds.iter().copied().take(neg).collect();
    if !neg_seeds.is_empty() {
        println!("negative control (no admission / budgets / deadlines):");
        let mut bites = 0usize;
        for r in sweep::run(threads, &neg_seeds, |_, &seed| run_seed(seed, false)) {
            if r.collapse.is_some() {
                bites += 1;
            }
            if r.consistency > 0 {
                failed = true;
            }
            print_row(&r, true);
        }
        // Majority, not unanimity: a storm that happens to drain on one
        // seed is noise, a storm that never collapses is a broken oracle.
        if 2 * bites < neg_seeds.len() {
            eprintln!(
                "overload chaos: negative control recovered on {}/{} seeds — \
                 the GoodputCollapse oracle is not biting",
                neg_seeds.len() - bites,
                neg_seeds.len()
            );
            failed = true;
        }
    }

    if failed {
        eprintln!("overload chaos sweep: FAILED");
        std::process::exit(1);
    }
    println!("overload chaos sweep: ok");
}
