//! The multi-process loopback topology: `svc_load --net`.
//!
//! The parent re-executes itself into one **server** process (a sharded
//! `lease-svc` service behind `lease_net::NetServer`) and N **generator**
//! processes, each a windowed pipelined client — the same
//! batch/window/approval logic as the in-process batched loop, but every
//! submission crosses a real loopback socket as a `lease-wire` frame and
//! lost replies are recovered by plain retransmission (the §2 RPC
//! contract). The parent then measures the *in-process* batched ring row
//! in the same run and reports both, plus an inline codec microbench, in
//! `BENCH_net.json`:
//!
//! * `net` — merged ops/s and p50/p95/p99 over the wire, with
//!   syscalls/op and bytes/op from the server's transport counters;
//! * `inproc` — the same workload through `try_send_batch` directly;
//! * `ratio_net_vs_inproc` — the number the `--check` gate protects
//!   (floor: 75% of the baseline's ratio, and 0.5 absolute — the wire
//!   must stay within 2x of the ring path it wraps);
//! * `codec` — single-thread encode/decode msgs/s over a pre-built
//!   frame (floor: 5M msgs/s decoded).
//!
//! Baselines are mode-tagged (`quick`/`full`); a cross-mode `--check`
//! is refused naming both modes rather than comparing unlike windows.
//!
//! The hidden roles (`--net-server`, `--net-gen`) are also what the
//! multi-process chaos test drives: the server role can persist its max
//! granted term (`--term-file`, §5), append every commit to a log the
//! oracle merges (`--commit-log`), and timestamp those commits on a
//! shared unix-epoch clock (`--epoch-unix-ns`), so killing and
//! restarting the *process* is judged by the same consistency oracle as
//! the in-process chaos sweeps.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use lease_clock::{Clock, Dur, SysClock, WallClock};
use lease_core::{
    ClientId, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient, ToServer, Version,
};
use lease_net::tcp::FrameAccum;
use lease_net::{connect_as, NetServer};
use lease_svc::{Egress, EgressSink, LeaseService, SvcConfig, SvcHooks};
use lease_wire::{frame_len, frame_messages, Dir, FrameBuilder, WireValue};

use crate::{rng_next, rng_seed, run_config, SweepRow, R};

/// How long a pending op may go unanswered before the generator
/// retransmits it (the socket analogue of the rt client's
/// `retry_interval`).
const RETRANSMIT_AFTER: Duration = Duration::from_millis(200);

/// What `svc_load --net` runs.
pub(crate) struct NetOpts {
    pub shards: usize,
    pub gens: u32,
    pub files: u64,
    pub window: Duration,
    pub batch: usize,
    pub quick: bool,
    pub json_path: String,
    pub check_path: Option<String>,
}

/// One measured wire-side row.
#[derive(serde::Serialize, serde::Deserialize)]
struct NetRow {
    ops: u64,
    ops_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    /// Server-side `read(2)` + `write(2)` calls per completed op.
    syscalls_per_op: f64,
    /// Server-side bytes in + out per completed op.
    bytes_per_op: f64,
    /// Wire messages in + out per completed op (requests, grants,
    /// approvals, retransmissions — the protocol's real message cost).
    wire_msgs_per_op: f64,
}

/// The server process's counters, as it prints them on exit.
#[derive(Default, serde::Serialize, serde::Deserialize)]
struct ServerSide {
    read_calls: u64,
    bytes_in: u64,
    msgs_in: u64,
    write_calls: u64,
    bytes_out: u64,
    msgs_out: u64,
    expired_at_door: u64,
    bad_frames: u64,
    grants: u64,
    expired_drops: u64,
}

/// Single-thread codec throughput over one pre-built frame.
#[derive(serde::Serialize, serde::Deserialize)]
struct CodecBench {
    encode_msgs_per_sec: f64,
    decode_msgs_per_sec: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct NetBench {
    schema: String,
    /// `quick` or `full` — `--check` refuses to compare across modes.
    mode: String,
    gens: u32,
    shards: usize,
    files: u64,
    batch: usize,
    window_ms: u64,
    net: NetRow,
    inproc: SweepRow,
    ratio_net_vs_inproc: f64,
    codec: CodecBench,
    server: ServerSide,
}

/// What one generator process prints as its `RESULT` line.
#[derive(serde::Serialize, serde::Deserialize)]
struct GenResult {
    /// Every completed op, including the post-window drain.
    ops: u64,
    elapsed_ns: u64,
    /// Ops completed inside the measured window and that window's exact
    /// span — the throughput basis.
    win_ops: u64,
    win_ns: u64,
    /// Sparse latency histogram: (microseconds, count), sorted.
    hist: Vec<(u64, u64)>,
    sheds: u64,
}

// ---------------------------------------------------------------------
// Parent: orchestrate, merge, gate.
// ---------------------------------------------------------------------

/// Entry point for `svc_load --net`: measure, then write or gate.
pub(crate) fn run_net(o: &NetOpts) {
    let fresh = measure_net(o);
    match &o.check_path {
        Some(path) => {
            if let Err(first) = check_net(&fresh, path) {
                if first.ends_with("[no-retry]") {
                    eprintln!("svc_load --net --check FAILED: {first}");
                    std::process::exit(1);
                }
                eprintln!("svc_load --net --check below floor ({first}); re-measuring once");
                let again = measure_net(o);
                if let Err(e) = check_net(&again, path) {
                    eprintln!("svc_load --net --check FAILED: {e}");
                    std::process::exit(1);
                }
            }
            println!("svc_load --net --check OK");
        }
        None => match serde_json::to_string_pretty(&fresh) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&o.json_path, s + "\n") {
                    eprintln!("warning: cannot write {}: {e}", o.json_path);
                } else {
                    println!("wrote {}", o.json_path);
                }
            }
            Err(e) => eprintln!("warning: cannot serialize net bench: {e:?}"),
        },
    }
}

/// The gate. Mode-matched baselines only; the ratio floors are relative
/// (75% of baseline) plus the absolute bars the tentpole claims: wire
/// throughput >= 0.5x the same-run in-process row and decode >= 5M
/// msgs/s single-core.
fn check_net(fresh: &NetBench, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e} [no-retry]"))?;
    let baseline: NetBench = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse {baseline_path}: {e:?} [no-retry]"))?;
    if baseline.mode != fresh.mode {
        // Refuse, naming both modes: a quick window and a full window
        // measure different steady states and must not gate each other.
        return Err(format!(
            "baseline {baseline_path} was recorded in `{}` mode but this run measured `{}` mode; \
             re-record the baseline in `{}` mode or rerun with matching flags [no-retry]",
            baseline.mode, fresh.mode, fresh.mode
        ));
    }
    let ratio = fresh.ratio_net_vs_inproc;
    let floor = (baseline.ratio_net_vs_inproc * 0.75).max(0.5);
    println!(
        "check net/inproc: {ratio:.2}x ({:.0} over the wire vs {:.0} in-process ops/s), \
         baseline {:.2}x (floor {floor:.2}x)",
        fresh.net.ops_per_sec, fresh.inproc.ops_per_sec, baseline.ratio_net_vs_inproc
    );
    if ratio < floor {
        return Err(format!(
            "wire throughput ratio {ratio:.2}x fell below floor {floor:.2}x \
             (baseline {:.2}x, absolute bar 0.5x)",
            baseline.ratio_net_vs_inproc
        ));
    }
    let dec = fresh.codec.decode_msgs_per_sec;
    println!(
        "check codec: decode {:.1}M msgs/s, encode {:.1}M msgs/s (floor 5M decode)",
        dec / 1e6,
        fresh.codec.encode_msgs_per_sec / 1e6
    );
    if dec < 5_000_000.0 {
        return Err(format!(
            "single-core decode throughput {:.1}M msgs/s below the 5M floor",
            dec / 1e6
        ));
    }
    if fresh.server.bad_frames > 0 {
        return Err(format!(
            "server counted {} corrupt frames on a clean loopback run [no-retry]",
            fresh.server.bad_frames
        ));
    }
    Ok(())
}

fn measure_net(o: &NetOpts) -> NetBench {
    let codec = codec_bench(o.batch);
    println!(
        "codec: encode {:.1}M msgs/s, decode {:.1}M msgs/s (single thread, {}-msg frames)",
        codec.encode_msgs_per_sec / 1e6,
        codec.decode_msgs_per_sec / 1e6,
        o.batch
    );

    let exe = std::env::current_exe().expect("current_exe");
    let mut server = Command::new(&exe)
        .args([
            "--net-server",
            "--shards",
            &o.shards.to_string(),
            "--files",
            &o.files.to_string(),
            "--clients",
            &o.gens.to_string(),
            "--batch",
            &o.batch.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn --net-server");
    let port = read_tagged_line(&mut server, "PORT ")
        .and_then(|s| s.parse::<u16>().ok())
        .expect("server must print its port");

    let gens: Vec<Child> = (0..o.gens)
        .map(|i| {
            Command::new(&exe)
                .args([
                    "--net-gen",
                    "--addr",
                    &format!("127.0.0.1:{port}"),
                    "--id",
                    &i.to_string(),
                    "--ms",
                    &o.window.as_millis().to_string(),
                    "--files",
                    &o.files.to_string(),
                    "--batch",
                    &o.batch.to_string(),
                    "--shards",
                    &o.shards.to_string(),
                ])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn --net-gen")
        })
        .collect();

    // The aggregate rate sums each generator's own measured rate (its
    // ops over its own main-loop window): the generators run
    // concurrently, and the parent's clock would otherwise charge
    // process spawn, pipe draining, and the bounded post-window drain
    // against the throughput.
    let mut ops = 0u64;
    let mut rate = 0f64;
    let mut sheds = 0u64;
    let mut hist: HashMap<u64, u64> = HashMap::new();
    for mut g in gens {
        let r = read_tagged_line(&mut g, "RESULT ")
            .and_then(|s| serde_json::from_str::<GenResult>(&s).ok())
            .expect("generator must print a RESULT line");
        assert!(g.wait().expect("wait gen").success(), "generator failed");
        ops += r.ops;
        if r.win_ns > 0 {
            rate += r.win_ops as f64 / (r.win_ns as f64 / 1e9);
        }
        sheds += r.sheds;
        for (us, n) in r.hist {
            *hist.entry(us).or_insert(0) += n;
        }
    }

    // Closing the server's stdin asks it to drain and report.
    drop(server.stdin.take());
    let srv: ServerSide = read_tagged_line(&mut server, "COUNTERS ")
        .and_then(|s| serde_json::from_str(&s).ok())
        .expect("server must print a COUNTERS line");
    assert!(
        server.wait().expect("wait server").success(),
        "server failed"
    );

    // Merge the sparse per-process histograms into percentiles.
    let mut buckets: Vec<(u64, u64)> = hist.into_iter().collect();
    buckets.sort_unstable();
    let pct = |p: f64| -> u64 {
        let rank = ((ops as f64 * p).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(us, n) in &buckets {
            seen += n;
            if seen >= rank {
                return us;
            }
        }
        buckets.last().map_or(0, |&(us, _)| us)
    };
    let per_op = |v: u64| if ops == 0 { 0.0 } else { v as f64 / ops as f64 };
    let net = NetRow {
        ops,
        ops_per_sec: rate,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        syscalls_per_op: per_op(srv.read_calls + srv.write_calls),
        bytes_per_op: per_op(srv.bytes_in + srv.bytes_out),
        wire_msgs_per_op: per_op(srv.msgs_in + srv.msgs_out),
    };
    println!(
        "net    shards={:<2} gens={:<2} ops={:>8} ops/s={:>8.0} p50={:>5}us p95={:>5}us p99={:>5}us \
         syscalls/op={:.3} bytes/op={:.0} msgs/op={:.2} sheds={sheds}",
        o.shards, o.gens, net.ops, net.ops_per_sec, net.p50_us, net.p95_us, net.p99_us,
        net.syscalls_per_op, net.bytes_per_op, net.wire_msgs_per_op,
    );

    // The same-run in-process reference: the batched ring row this
    // topology is allowed to cost at most 2x of.
    print!("inproc ");
    let inproc = run_config(
        o.shards, o.gens, o.files, o.window, o.batch, None, false, true,
    );
    let ratio = if inproc.ops_per_sec > 0.0 {
        net.ops_per_sec / inproc.ops_per_sec
    } else {
        0.0
    };
    println!("net vs in-process: {ratio:.2}x");

    NetBench {
        schema: "lease-bench/BENCH_net/v1".to_string(),
        mode: if o.quick { "quick" } else { "full" }.to_string(),
        gens: o.gens,
        shards: o.shards,
        files: o.files,
        batch: o.batch,
        window_ms: o.window.as_millis() as u64,
        net,
        inproc,
        ratio_net_vs_inproc: ratio,
        codec,
        server: srv,
    }
}

/// Reads the child's stdout line by line until one starts with `tag`;
/// returns the rest of that line. Other lines pass through to our
/// stdout, indented, so child row output stays visible.
fn read_tagged_line(child: &mut Child, tag: &str) -> Option<String> {
    // Taking stdout would lose the pipe for later tags; keep a reader
    // around per call by reading from a re-inserted BufReader is not
    // possible with std, so we read incrementally off the raw handle.
    let out = child.stdout.as_mut()?;
    let mut rd = BufReader::new(out);
    let mut line = String::new();
    loop {
        line.clear();
        if rd.read_line(&mut line).ok()? == 0 {
            return None;
        }
        if let Some(rest) = line.trim_end().strip_prefix(tag) {
            return Some(rest.to_string());
        }
        print!("  [child] {line}");
    }
}

/// Single-thread codec throughput: one frame of `batch` messages (the
/// bench workload mix), encoded into a reused buffer and decoded by
/// slicing in place. The decode side is the bar the tentpole names:
/// > 5M msgs/s on one core.
fn codec_bench(batch: usize) -> CodecBench {
    let batch = batch.max(2);
    let msgs: Vec<ToServer<R, crate::D>> = (0..batch as u64)
        .map(|i| {
            if (i + 1).is_multiple_of(32) {
                ToServer::Write {
                    req: ReqId(i),
                    resource: i % 17,
                    data: i,
                }
            } else {
                ToServer::Fetch {
                    req: ReqId(i),
                    resource: i % 17,
                    cached: None,
                    also_extend: Vec::new(),
                }
            }
        })
        .collect();

    let mut wire: Vec<u8> = Vec::new();
    let encode = |wire: &mut Vec<u8>| {
        wire.clear();
        let mut fb = FrameBuilder::begin(wire, Dir::C2s, ClientId(7));
        for m in &msgs {
            fb.push_c2s(wire, m, Some(Dur::from_secs(30)));
        }
        fb.finish(wire);
    };

    let window = Duration::from_millis(150);
    let mut encoded = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < window {
        for _ in 0..64 {
            encode(&mut wire);
            encoded += batch as u64;
        }
    }
    let encode_rate = encoded as f64 / t0.elapsed().as_secs_f64();

    encode(&mut wire);
    let mut decoded = 0u64;
    let mut check = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < window {
        for _ in 0..64 {
            let (_, mut it) = frame_messages(&wire).expect("self-encoded frame");
            while let Some((m, _)) = it.next_c2s::<R, crate::D>().expect("self-encoded msg") {
                if let ToServer::Fetch { resource, .. } = m {
                    check ^= resource;
                }
                decoded += 1;
            }
        }
    }
    std::hint::black_box(check);
    CodecBench {
        encode_msgs_per_sec: encode_rate,
        decode_msgs_per_sec: decoded as f64 / t0.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------------
// Server role.
// ---------------------------------------------------------------------

struct ServerOpts {
    shards: usize,
    clients: usize,
    files: u64,
    batch: usize,
    port: u16,
    term: Dur,
    data: String,
    term_file: Option<String>,
    commit_log: Option<String>,
    epoch_unix_ns: Option<u64>,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `svc_load --net-server ...`: serve until stdin closes, then print
/// `COUNTERS {json}` and exit.
pub(crate) fn run_server_cli(args: &[String]) {
    let o = ServerOpts {
        shards: flag(args, "--shards")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
        clients: flag(args, "--clients")
            .and_then(|v| v.parse().ok())
            .unwrap_or(4),
        files: flag(args, "--files")
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
        batch: flag(args, "--batch")
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
        port: flag(args, "--port")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        term: Dur::from_millis(
            flag(args, "--term-ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(5_000),
        ),
        data: flag(args, "--data").unwrap_or_else(|| "u64".into()),
        term_file: flag(args, "--term-file"),
        commit_log: flag(args, "--commit-log"),
        epoch_unix_ns: flag(args, "--epoch-unix-ns").and_then(|v| v.parse().ok()),
    };
    match o.data.as_str() {
        "u64" => serve::<u64>(
            &o,
            |r| r,
            |d| d.to_le_bytes().to_vec(),
            |b| u64::from_le_bytes(b.try_into().unwrap_or_default()),
        ),
        "bytes" => serve::<bytes::Bytes>(
            &o,
            |r| bytes::Bytes::from(r.to_le_bytes().to_vec()),
            |d| d.to_vec(),
            bytes::Bytes::from,
        ),
        other => {
            eprintln!("--data must be u64 or bytes, got {other}");
            std::process::exit(2);
        }
    }
}

/// Wraps a shard's storage to append every commit (resource, version,
/// true time, payload) to a shared log file, flushed per line so a
/// `kill -9` loses nothing the client may have been told about. The
/// multi-process oracle merges these lines into the recorded history.
struct CommitLogStore<D> {
    inner: MemStorage<u64, D>,
    log: Arc<Mutex<std::io::BufWriter<std::fs::File>>>,
    clock: Arc<dyn Clock>,
    raw: fn(&D) -> Vec<u8>,
}

impl<D: Clone> Storage<u64, D> for CommitLogStore<D> {
    fn read(&self, resource: &u64) -> Option<(D, Version)> {
        self.inner.read(resource)
    }

    fn version(&self, resource: &u64) -> Option<Version> {
        self.inner.version(resource)
    }

    fn write(&mut self, resource: &u64, data: D) -> Version {
        let v = self.inner.write(resource, data);
        let (payload, at) = {
            let d = self.inner.read(resource).map(|(d, _)| d);
            (
                d.map(|d| (self.raw)(&d)).unwrap_or_default(),
                self.clock.now(),
            )
        };
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(log, "{} {} {} {}", resource, v.0, at.0, hex(&payload));
        let _ = log.flush();
        v
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + 1);
    s.push('x'); // never empty, so the line always splits into 4 fields
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Vec<u8> {
    let s = s.strip_prefix('x').unwrap_or(s);
    (0..s.len() / 2)
        .filter_map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

fn serve<D>(o: &ServerOpts, datum: fn(u64) -> D, raw: fn(&D) -> Vec<u8>, unraw: fn(Vec<u8>) -> D)
where
    D: Clone + Send + WireValue + 'static,
{
    let clock: Arc<dyn Clock> = match o.epoch_unix_ns {
        Some(epoch) => Arc::new(SysClock::new(epoch)),
        None => Arc::new(WallClock::new()),
    };

    // §5 persistence: the max granted term survives the process, so a
    // restart can refuse grants / defer writes for exactly that long.
    let mut hooks = SvcHooks {
        clock: Some(Arc::clone(&clock)),
        ..SvcHooks::default()
    };
    if let Some(path) = &o.term_file {
        let persist_path = path.clone();
        hooks.persist_max_term = Some(Arc::new(move |d: Dur| {
            let tmp = format!("{persist_path}.tmp");
            if std::fs::write(&tmp, d.as_nanos().to_le_bytes()).is_ok() {
                let _ = std::fs::rename(&tmp, &persist_path);
            }
        }));
        let recover_path = path.clone();
        hooks.recover_max_term = Some(Arc::new(move || {
            let bytes = std::fs::read(&recover_path).ok()?;
            Some(Dur(u64::from_le_bytes(bytes.try_into().ok()?)))
        }));
    }

    // A prior incarnation's commits replay into every shard's store
    // (each preloads the full set; the router partitions), *without*
    // re-logging, so versions and payloads continue where the killed
    // process left off.
    let mut replay: HashMap<u64, (Version, Vec<u8>)> = HashMap::new();
    let log = o.commit_log.as_ref().map(|path| {
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                let mut f = line.split_whitespace();
                if let (Some(r), Some(v), Some(_at), Some(hx)) =
                    (f.next(), f.next(), f.next(), f.next())
                {
                    if let (Ok(r), Ok(v)) = (r.parse::<u64>(), v.parse::<u64>()) {
                        let e = replay.entry(r).or_insert((Version(0), Vec::new()));
                        if Version(v) > e.0 {
                            *e = (Version(v), unhex(hx));
                        }
                    }
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open commit log");
        Arc::new(Mutex::new(std::io::BufWriter::new(file)))
    });

    let egress: Egress<u64, D> = Egress::new(o.clients, 1024);
    let sink = Arc::new(EgressSink::new(egress.clone()));
    let files = o.files;
    let term = o.term;
    let store_clock = Arc::clone(&clock);
    let replay = Arc::new(replay);
    let base = SvcConfig::default();
    let service = LeaseService::spawn(
        SvcConfig {
            shards: o.shards,
            batch: base.batch.max(o.batch * 2),
            ..base
        },
        sink,
        hooks,
        move |_| {
            let mut store: MemStorage<u64, D> = MemStorage::new();
            for r in 0..files {
                store.insert(r, datum(r));
            }
            for (&r, (v, payload)) in replay.iter() {
                if v.0 > 1 {
                    store.set(r, unraw(payload.clone()), *v);
                }
            }
            let storage: Box<dyn Storage<u64, D> + Send> = match &log {
                Some(log) => Box::new(CommitLogStore {
                    inner: store,
                    log: Arc::clone(log),
                    clock: Arc::clone(&store_clock),
                    raw,
                }),
                None => Box::new(store),
            };
            (LeaseServer::new(ServerConfig::fixed(term)), storage)
        },
    );

    let net = NetServer::bind(
        &format!("127.0.0.1:{}", o.port),
        service.handle(),
        &egress,
        Arc::clone(&clock),
    )
    .expect("bind net server");
    println!("PORT {}", net.local_addr().port());
    let _ = std::io::stdout().flush();

    // Serve until the parent closes our stdin (or we are killed).
    let mut sink = String::new();
    while matches!(std::io::stdin().read_line(&mut sink), Ok(n) if n > 0) {
        sink.clear();
    }

    let c = net.counters().snapshot();
    let (grants, expired_drops) = service
        .stats()
        .map(|s| (s.counters.grants, s.counters.expired_drops))
        .unwrap_or_default();
    let side = ServerSide {
        read_calls: c.read_calls,
        bytes_in: c.bytes_in,
        msgs_in: c.msgs_in,
        write_calls: c.write_calls,
        bytes_out: c.bytes_out,
        msgs_out: c.msgs_out,
        expired_at_door: c.expired_at_door,
        bad_frames: c.bad_frames,
        grants,
        expired_drops,
    };
    net.shutdown();
    service.shutdown();
    println!(
        "COUNTERS {}",
        serde_json::to_string(&side).expect("serialize counters")
    );
}

// ---------------------------------------------------------------------
// Generator role.
// ---------------------------------------------------------------------

struct GenOpts {
    addr: SocketAddr,
    id: u32,
    window: Duration,
    files: u64,
    batch: usize,
    shards: usize,
}

/// `svc_load --net-gen ...`: one windowed pipelined client over a
/// socket; prints `RESULT {json}` and exits.
pub(crate) fn run_gen_cli(args: &[String]) {
    let o = GenOpts {
        addr: flag(args, "--addr")
            .and_then(|v| v.parse().ok())
            .expect("--net-gen needs --addr host:port"),
        id: flag(args, "--id").and_then(|v| v.parse().ok()).unwrap_or(0),
        window: Duration::from_millis(
            flag(args, "--ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1_000),
        ),
        files: flag(args, "--files")
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
        batch: flag(args, "--batch")
            .and_then(|v| v.parse().ok())
            .unwrap_or(32),
        shards: flag(args, "--shards")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
    };
    let result = run_gen(&o);
    println!(
        "RESULT {}",
        serde_json::to_string(&result).expect("serialize result")
    );
}

struct PendingOp {
    t0: Instant,
    last_tx: Instant,
    resource: u64,
    msg: ToServer<R, crate::D>,
}

fn run_gen(o: &GenOpts) -> GenResult {
    // Single-threaded on purpose: the one socket is written (staged
    // frames) and read (short-timeout fill, decoded in place) from the
    // same loop. No reader thread means no per-burst channel hop, no
    // futex wake, and one fewer context switch per round trip — on a
    // loaded box the scheduler hops are what separate the wire path
    // from the ring path. Reconnection is inline; the retransmit timer
    // recovers whatever a dead socket dropped (the §2 contract: a lost
    // reply, a dropped connection, and a restarted server all look the
    // same to the client).
    let who = ClientId(o.id);
    let window = o.batch * 2 * o.shards;
    let mut rng = rng_seed(who);
    let mut next_req: u64 = 1;
    let mut pending: HashMap<u64, PendingOp> = HashMap::new();
    let mut staged: Vec<ToServer<R, crate::D>> = Vec::new();
    let mut hist: HashMap<u64, u64> = HashMap::new();
    let mut ops = 0u64;
    let mut sheds = 0u64;
    let mut wire: Vec<u8> = Vec::new();

    let connect = |timeout: Duration| -> Option<(TcpStream, FrameAccum)> {
        let s = connect_as(&o.addr, who).ok()?;
        s.set_read_timeout(Some(timeout)).ok()?;
        Some((s, FrameAccum::new()))
    };
    const READ_SLICE: Duration = Duration::from_millis(1);

    // Establish the first connection before starting the clock:
    // connection ramp-up is setup, not throughput.
    let mut conn: Option<(TcpStream, FrameAccum)> = None;
    let connect_deadline = Instant::now() + Duration::from_secs(2);
    while conn.is_none() && Instant::now() < connect_deadline {
        conn = connect(READ_SLICE);
        if conn.is_none() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let start = Instant::now();
    let mut drain_until: Option<Instant> = None;
    let mut last_connect = Instant::now();
    // The rate basis is [warmup, window): the first quarter covers TCP
    // ramp-up, lease-table population, and scheduler settling; the
    // post-window drain completes at a decaying rate. Both still count
    // toward totals and the latency histogram — they just must not
    // dilute the steady-state number.
    let warmup = o.window / 4;
    let mut warm_snap: Option<(u64, u64)> = None;
    let mut window_snap: Option<(u64, u64)> = None;

    loop {
        let elapsed = start.elapsed();
        if warm_snap.is_none() && elapsed >= warmup {
            warm_snap = Some((ops, elapsed.as_nanos() as u64));
        }
        let stopping = elapsed >= o.window;
        if stopping {
            if window_snap.is_none() {
                window_snap = Some((ops, elapsed.as_nanos() as u64));
            }
            if pending.is_empty() {
                break;
            }
            let deadline =
                *drain_until.get_or_insert_with(|| Instant::now() + Duration::from_secs(2));
            if Instant::now() >= deadline {
                break;
            }
        } else {
            // Refill the pipeline up to the window, one batch at a time.
            while staged.len() < o.batch && staged.len() + pending.len() < window {
                let resource = (rng_next(&mut rng) >> 33) % o.files;
                let req = next_req;
                next_req += 1;
                let msg = if next_req.is_multiple_of(32) {
                    ToServer::Write {
                        req: ReqId(req),
                        resource,
                        data: next_req,
                    }
                } else {
                    ToServer::Fetch {
                        req: ReqId(req),
                        resource,
                        cached: None,
                        also_extend: Vec::new(),
                    }
                };
                let now = Instant::now();
                pending.insert(
                    req,
                    PendingOp {
                        t0: now,
                        last_tx: now,
                        resource,
                        msg: msg.clone(),
                    },
                );
                staged.push(msg);
            }
        }

        // Retransmission: any op unanswered past the interval rides the
        // next frame again.
        let now = Instant::now();
        for p in pending.values_mut() {
            if now.duration_since(p.last_tx) >= RETRANSMIT_AFTER {
                p.last_tx = now;
                staged.push(p.msg.clone());
            }
        }

        // Inline reconnect, rate-limited so a dead server is polled,
        // not hammered.
        if conn.is_none() && last_connect.elapsed() >= Duration::from_millis(10) {
            last_connect = Instant::now();
            conn = connect(READ_SLICE);
        }

        // One frame per flush, one write per frame.
        if !staged.is_empty() {
            match conn.as_mut() {
                Some((stream, _)) => {
                    wire.clear();
                    let mut fb = FrameBuilder::begin(&mut wire, Dir::C2s, who);
                    for m in &staged {
                        fb.push_c2s(&mut wire, m, None);
                    }
                    fb.finish(&mut wire);
                    if stream.write_all(&wire).is_ok() {
                        staged.clear();
                    } else {
                        conn = None;
                    }
                }
                None => std::thread::sleep(Duration::from_millis(1)),
            }
            if conn.is_none() {
                // Ops stay pending (the retransmit timer re-stages
                // them); only non-op messages (approvals) stay staged.
                staged.retain(|m| matches!(m, ToServer::Approve { .. }));
            }
        }

        // Read and decode replies in place. `fill` blocks at most
        // READ_SLICE, returning as soon as any bytes land.
        let mut dead = false;
        if let Some((stream, accum)) = conn.as_mut() {
            match accum.fill(stream) {
                Ok(0) => dead = true, // server closed
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => dead = true,
            }
            while !dead {
                let len = match frame_len(accum.bytes()) {
                    Ok(Some(len)) if accum.bytes().len() >= len => len,
                    Ok(_) => break,
                    Err(_) => {
                        dead = true; // corrupt stream: reconnect
                        break;
                    }
                };
                {
                    let frame = &accum.bytes()[..len];
                    let Ok((h, mut it)) = frame_messages(frame) else {
                        dead = true;
                        break;
                    };
                    if h.dir == Dir::S2c {
                        while let Ok(Some(m)) = it.next_s2c::<R, crate::D>() {
                            match m {
                                ToClient::Grants { req, grants } => {
                                    if let Some(p) = pending.get(&req.0) {
                                        if grants.iter().any(|g| g.resource == p.resource) {
                                            let t0 = p.t0;
                                            pending.remove(&req.0);
                                            ops += 1;
                                            *hist
                                                .entry(t0.elapsed().as_micros() as u64)
                                                .or_insert(0) += 1;
                                        }
                                    }
                                }
                                ToClient::WriteDone { req, .. } => {
                                    if let Some(p) = pending.remove(&req.0) {
                                        ops += 1;
                                        *hist
                                            .entry(p.t0.elapsed().as_micros() as u64)
                                            .or_insert(0) += 1;
                                    }
                                }
                                ToClient::ApprovalRequest { write_id, .. } => {
                                    // Approvals ride the next flush; a
                                    // peer's write is blocked on them.
                                    staged.push(ToServer::Approve { write_id });
                                }
                                ToClient::Error { req, .. } => {
                                    // Shed or unknown resource: done as
                                    // far as the wire is concerned, but
                                    // not a completed op.
                                    sheds += u64::from(pending.remove(&req.0).is_some());
                                }
                                _ => {}
                            }
                        }
                    }
                }
                accum.consume(len);
            }
        }
        if dead {
            conn = None;
        }
    }

    // The measured interval ends when the op loop ends: the approval
    // grace period below completes no ops and must not dilute the rate.
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    // Grace drain: peers may still be waiting on approvals from us.
    let grace = Instant::now();
    'grace: while grace.elapsed() < Duration::from_millis(100) {
        let Some((stream, accum)) = conn.as_mut() else {
            break;
        };
        match accum.fill(stream) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
        loop {
            let len = match frame_len(accum.bytes()) {
                Ok(Some(len)) if accum.bytes().len() >= len => len,
                Ok(_) => break,
                Err(_) => break 'grace,
            };
            wire.clear();
            let mut fb = FrameBuilder::begin(&mut wire, Dir::C2s, who);
            let mut any = false;
            {
                let frame = &accum.bytes()[..len];
                let Ok((h, mut it)) = frame_messages(frame) else {
                    break 'grace;
                };
                if h.dir == Dir::S2c {
                    while let Ok(Some(m)) = it.next_s2c::<R, crate::D>() {
                        if let ToClient::ApprovalRequest { write_id, .. } = m {
                            fb.push_c2s(
                                &mut wire,
                                &ToServer::Approve::<R, crate::D> { write_id },
                                None,
                            );
                            any = true;
                        }
                    }
                }
            }
            accum.consume(len);
            fb.finish(&mut wire);
            if any && stream.write_all(&wire).is_err() {
                break 'grace;
            }
        }
    }

    let mut buckets: Vec<(u64, u64)> = hist.into_iter().collect();
    buckets.sort_unstable();
    let (end_ops, end_ns) = window_snap.unwrap_or((ops, elapsed_ns));
    let (warm_ops, warm_ns) = warm_snap.unwrap_or((0, 0));
    let (win_ops, win_ns) = (
        end_ops.saturating_sub(warm_ops),
        end_ns.saturating_sub(warm_ns),
    );
    GenResult {
        ops,
        elapsed_ns,
        win_ops,
        win_ns,
        hist: buckets,
        sheds,
    }
}
