//! Closed-loop load generator for the `lease-svc` runtime.
//!
//! For each shard count (1, 2, 4, 8 by default) this spawns a sharded
//! lease service over in-memory storage and drives it two ways:
//!
//! * **per-op** (`batch=1`): closed-loop client threads issuing one
//!   fetch (plus an occasional write, exercising the approval round trip
//!   and cross-shard write-id translation) and waiting for its reply —
//!   the pre-batching submission path, kept as the latency-oriented
//!   baseline;
//! * **batched** (`batch=N`): windowed pipelined clients that stage `N`
//!   ops into a [`BatchBuf`], submit them with one routing pass and one
//!   locked enqueue per touched shard (`try_send_batch`), and keep
//!   `batch × 2 × shards` ops in flight — the throughput path the
//!   sharded service is built around.
//!
//! Each closed-loop configuration runs twice: once with replies on
//! per-client channels (`egress=channel`, the pre-ring reply path kept
//! as the executable baseline) and once over per-(shard→client) SPSC
//! ring lanes with coalesced doorbells (`egress=ring`, the hot path).
//! Ring rows also record **wakes/op** — futex-backed doorbell wakeups
//! per completed op — the figure the coalesced flush is built to
//! collapse.
//!
//! It reports sustained ops/sec, grants/sec and p50/p95/p99 op latency
//! per row. Results are written to `BENCH_svc.json` so future PRs can
//! diff the sweep against a recorded baseline, and `--check PATH` turns
//! the sweep into a regression gate (see `--help`).
//!
//! Flags (see `--help`) take precedence over the environment knobs:
//!
//! | variable             | meaning                              | default   |
//! |----------------------|--------------------------------------|-----------|
//! | `LEASE_LOAD_MS`      | measured window per configuration    | 1000      |
//! | `LEASE_LOAD_CLIENTS` | closed-loop client threads           | 4         |
//! | `LEASE_LOAD_FILES`   | distinct resources                   | 256       |
//! | `LEASE_LOAD_SHARDS`  | comma-separated shard counts         | 1,2,4,8   |
//! | `LEASE_LOAD_BATCH`   | client batch size for batched rows   | 32        |

mod net;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use lease_bench::percentile;
use lease_bench::sweep::{parse_threads, pin_to_core};
use lease_clock::Dur;
use lease_core::{
    ClientId, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, ToClient, ToServer,
};
use lease_svc::{
    BatchBuf, ClientSink, Egress, EgressRx, EgressSink, FaultPlan, LeaseService, OverloadPlan,
    SvcConfig, SvcHandle, SvcHooks,
};

type R = u64;
type D = u64;

const HELP: &str = "\
svc_load: closed-loop load generator for the sharded lease service

  --threads N     closed-loop client threads; `auto` detects the host's
                  parallelism (default: 4, or LEASE_LOAD_CLIENTS)
  --shards LIST   comma-separated shard counts to sweep (default 1,2,4,8)
  --ms N          measured window per configuration in ms (default 1000)
  --files N       distinct resources (default 256)
  --batch N       client batch size for the batched rows (default 32)
  --open-loop R   open-loop mode: replace the closed-loop rows with one
                  row per shard count driving Poisson arrivals at R
                  ops/sec total (split across clients), submitted with
                  try_send — arrivals the mailboxes refuse are dropped,
                  and latency is measured from the *intended* arrival
                  instant. Rows are marked batch=0; not compatible with
                  --check (the scaling gate needs the batched rows).
                  Env: LEASE_LOAD_RATE. Skips the scaling section.
  --scale LIST    shard counts for the core-pinned scaling curve
                  (default 1,2,4,8; `none` disables the section). Each
                  scaling row pins shard workers to cores 0..s
                  (SvcConfig::pin) and clients to the cores after them,
                  so on a multi-core host the curve measures true
                  per-core speedup rather than scheduler luck.
  --net           multi-process loopback mode: spawn one server process
                  (the sharded service behind lease-net's TCP transport)
                  and --threads generator processes hammering it over
                  127.0.0.1 with lease-wire frames, then measure the
                  same-run in-process batched ring row and an inline
                  codec microbench for comparison. Uses the *first*
                  --shards value, writes BENCH_net.json (see --json),
                  and gates with --check against a BENCH_net baseline
                  (mode-matched quick/full; wire/in-process ratio >=
                  max(0.5, 75% of baseline); decode >= 5M msgs/s).
  --quick         with --net: a short (300ms) window, recorded with
                  mode=quick so full baselines never gate quick runs
                  (and vice versa).
  --json PATH     where to write the sweep results (default BENCH_svc.json)
  --check PATH    measure, then gate against the baseline at PATH instead
                  of writing. Fails unless batched ops/s at shards=4
                  beats shards=1, and unless the fresh s4/s1 ratios are
                  within 25% of the baseline's — compared same-mode
                  (per-op against per-op, batched against batched,
                  channel egress against channel, ring against ring; a
                  mode the baseline never recorded, e.g. a v3 baseline's
                  missing ring rows, is skipped). On a host with >= 4
                  cores the pinned scaling curve must also show batched
                  s4 >= 2x batched s1, and pinned per-op s4 with ring
                  egress must beat channel egress by at least 75% of the
                  baseline's recorded ring/channel ratio (and at least
                  1.0x); on smaller hosts both gates are skipped with a
                  visible notice. One re-measure before failing.
  --help          this text

Client threads are pinned round-robin across cores (best effort, Linux
only) so the sweep measures shard *speedup* on multi-core hosts. On a
single hardware thread the per-op rows land within ~1.2x of each other
(one worker futex wake per op that a single shard amortizes across
clients); the batched rows still scale with shards there because the
in-flight window — and so the work a shard drains per wakeup — grows
with the shard count.";

/// Delivers shard output onto per-client reply channels.
struct ChannelSink {
    txs: Vec<Sender<ToClient<R, D>>>,
}

impl ClientSink<R, D> for ChannelSink {
    fn deliver(&self, to: ClientId, msg: ToClient<R, D>) {
        let _ = self.txs[to.0 as usize].send(msg);
    }

    fn deliver_batch(&self, msgs: &mut Vec<(ClientId, ToClient<R, D>)>) {
        // Group consecutive same-client replies so each run costs one
        // locked enqueue instead of one per message.
        let mut run: Vec<ToClient<R, D>> = Vec::new();
        let mut it = msgs.drain(..).peekable();
        while let Some((to, msg)) = it.next() {
            run.push(msg);
            while it.peek().is_some_and(|(next, _)| *next == to) {
                run.push(it.next().unwrap().1);
            }
            let _ = self.txs[to.0 as usize].send_many(run.drain(..));
        }
    }
}

/// Where one client's replies come from: its channel (`egress=channel`)
/// or its adopted SPSC egress lanes (`egress=ring`). The client loops
/// are written against this adapter so the two reply paths run the
/// *same* workload logic; only the transport differs.
enum Replies {
    Chan(Receiver<ToClient<R, D>>),
    Ring {
        lanes: EgressRx<R, D>,
        /// Drained-but-undelivered messages (lanes drain in bulk; the
        /// loops consume one at a time).
        q: VecDeque<ToClient<R, D>>,
        scratch: Vec<ToClient<R, D>>,
        /// Spin briefly before parking (multicore hosts only — on one
        /// core spinning just steals the shard worker's timeslice).
        spin: u32,
    },
}

impl Replies {
    fn ring(lanes: EgressRx<R, D>) -> Replies {
        let multicore = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        Replies::Ring {
            lanes,
            q: VecDeque::new(),
            scratch: Vec::new(),
            spin: if multicore { 256 } else { 0 },
        }
    }

    /// Blocking receive with a deadline, mirroring
    /// `Receiver::recv_timeout`: the ring side drains its lanes with the
    /// ticket-before-final-poll spin-then-park loop and reports
    /// `Timeout` (lanes cannot disconnect mid-run; the service outlives
    /// every measuring client).
    fn recv_timeout(&mut self, timeout: Duration) -> Result<ToClient<R, D>, RecvTimeoutError> {
        match self {
            Replies::Chan(rx) => rx.recv_timeout(timeout),
            Replies::Ring {
                lanes,
                q,
                scratch,
                spin,
            } => {
                if let Some(m) = q.pop_front() {
                    return Ok(m);
                }
                let deadline = Instant::now() + timeout;
                loop {
                    let ticket = lanes.bell().ticket();
                    if lanes.drain_into(scratch, 1024) > 0 {
                        q.extend(scratch.drain(..));
                        return Ok(q.pop_front().expect("drained non-empty"));
                    }
                    let mut found = false;
                    for _ in 0..*spin {
                        if lanes.drain_into(scratch, 1024) > 0 {
                            found = true;
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    if found {
                        q.extend(scratch.drain(..));
                        return Ok(q.pop_front().expect("drained non-empty"));
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    lanes.bell().wait(ticket, deadline - now);
                }
            }
        }
    }

    /// Non-blocking receive, mirroring `Receiver::try_recv`.
    fn try_recv(&mut self) -> Option<ToClient<R, D>> {
        match self {
            Replies::Chan(rx) => rx.try_recv().ok(),
            Replies::Ring {
                lanes, q, scratch, ..
            } => {
                if q.is_empty() && lanes.drain_into(scratch, 1024) > 0 {
                    q.extend(scratch.drain(..));
                }
                q.pop_front()
            }
        }
    }
}

/// Deterministic per-client LCG so runs are comparable.
fn rng_seed(id: ClientId) -> u64 {
    0x9e37_79b9_7f4a_7c15 ^ (u64::from(id.0)).wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

fn rng_next(rng: &mut u64) -> u64 {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *rng
}

/// One closed-loop client: send an op, wait for its reply, repeat.
/// Returns per-op latencies in nanoseconds.
fn client_loop(
    id: ClientId,
    core: usize,
    handle: SvcHandle<R, D>,
    mut replies: Replies,
    files: u64,
    stop: Arc<AtomicBool>,
) -> Vec<u64> {
    pin_to_core(core);
    let mut rng = rng_seed(id);
    let mut next_req: u64 = 1;
    let mut latencies = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let resource = (rng_next(&mut rng) >> 33) % files;
        let req = ReqId(next_req);
        next_req += 1;
        let msg = if next_req.is_multiple_of(32) {
            ToServer::Write {
                req,
                resource,
                data: next_req,
            }
        } else {
            ToServer::Fetch {
                req,
                resource,
                cached: None,
                also_extend: Vec::new(),
            }
        };
        let t0 = Instant::now();
        if handle.send(id, msg).is_err() {
            break;
        }
        // Closed loop: wait for this op's reply, approving any write
        // callbacks that arrive meanwhile (other clients' writes cannot
        // commit without our approval).
        loop {
            let m = match replies.recv_timeout(Duration::from_secs(5)) {
                Ok(m) => m,
                Err(_) => return latencies,
            };
            match m {
                // A fetch may be answered in parts (the cross-shard split,
                // or a write-blocked target); done once the target resource
                // is granted.
                ToClient::Grants { req: r, grants }
                    if r == req && grants.iter().any(|g| g.resource == resource) =>
                {
                    break;
                }
                ToClient::WriteDone { req: r, .. } if r == req => break,
                ToClient::ApprovalRequest { write_id, .. } => {
                    let _ = handle.send(id, ToServer::Approve { write_id });
                }
                _ => {}
            }
        }
        latencies.push(t0.elapsed().as_nanos() as u64);
    }
    // Grace drain: peers may still be waiting on approvals from us for
    // their final in-flight write.
    let grace = Instant::now();
    while grace.elapsed() < Duration::from_millis(100) {
        if let Ok(ToClient::ApprovalRequest { write_id, .. }) =
            replies.recv_timeout(Duration::from_millis(20))
        {
            let _ = handle.send(id, ToServer::Approve { write_id });
        }
    }
    latencies
}

/// One windowed pipelined client: keep `batch × 2 × shards` ops in
/// flight, staging `batch` at a time into a [`BatchBuf`] and submitting
/// each buffer with a single `try_send_batch`. Refused messages stay in
/// the buffer and are resubmitted after draining replies (the same
/// pacing lease-rt applies on `RetryAfter`). Latency is measured from
/// staging, so it includes time spent queued in the buffer and window.
#[allow(clippy::too_many_arguments)] // one knob per argument
fn client_loop_batched(
    id: ClientId,
    core: usize,
    handle: SvcHandle<R, D>,
    mut replies: Replies,
    files: u64,
    stop: Arc<AtomicBool>,
    batch: usize,
    shards: usize,
) -> Vec<u64> {
    pin_to_core(core);
    // Per-shard pipeline depth is constant, so the aggregate window (and
    // the work a shard drains per wakeup) grows with the shard count.
    let window = batch * 2 * shards;
    let mut rng = rng_seed(id);
    let mut next_req: u64 = 1;
    let mut latencies = Vec::new();
    // In-flight ops: req id -> (staged-at, target resource).
    let mut pending: HashMap<u64, (Instant, u64)> = HashMap::new();
    let mut buf: BatchBuf<R, D> = BatchBuf::new();
    // After `stop`, drain what is in flight (bounded) so the final
    // window's writes can still collect their approvals.
    let mut drain_until: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        if stopping {
            if pending.is_empty() {
                break;
            }
            let deadline =
                *drain_until.get_or_insert_with(|| Instant::now() + Duration::from_secs(2));
            if Instant::now() >= deadline {
                break;
            }
        } else {
            // Refill the pipeline up to the window, one batch at a time.
            while buf.len() < batch && buf.len() + pending.len() < window {
                let resource = (rng_next(&mut rng) >> 33) % files;
                let req = next_req;
                next_req += 1;
                let msg = if next_req.is_multiple_of(32) {
                    ToServer::Write {
                        req: ReqId(req),
                        resource,
                        data: next_req,
                    }
                } else {
                    ToServer::Fetch {
                        req: ReqId(req),
                        resource,
                        cached: None,
                        also_extend: Vec::new(),
                    }
                };
                pending.insert(req, (Instant::now(), resource));
                buf.push(id, msg);
            }
        }
        // One routing pass, one locked enqueue per touched shard; what
        // the mailboxes refuse stays in `buf` for the next pass.
        if !buf.is_empty() && handle.try_send_batch(&mut buf).is_err() {
            return latencies;
        }
        // Drain replies: block for one, then sweep the queue dry.
        let first =
            match replies.recv_timeout(Duration::from_millis(if stopping { 20 } else { 5000 })) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return latencies,
            };
        let mut next = Some(first);
        while let Some(m) = next {
            match m {
                ToClient::Grants { req, grants } => {
                    if let Some((t0, resource)) = pending.get(&req.0).copied() {
                        if grants.iter().any(|g| g.resource == resource) {
                            pending.remove(&req.0);
                            latencies.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                }
                ToClient::WriteDone { req, .. } => {
                    if let Some((t0, _)) = pending.remove(&req.0) {
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    }
                }
                ToClient::ApprovalRequest { write_id, .. } => {
                    // Approvals ride the next batch; they must not wait
                    // for the window (a peer's write is blocked on them).
                    buf.push(id, ToServer::Approve { write_id });
                }
                _ => {}
            }
            next = replies.try_recv();
        }
    }
    // Grace drain: peers may still be waiting on approvals from us.
    let grace = Instant::now();
    while grace.elapsed() < Duration::from_millis(100) {
        if let Ok(ToClient::ApprovalRequest { write_id, .. }) =
            replies.recv_timeout(Duration::from_millis(20))
        {
            let _ = handle.send(id, ToServer::Approve { write_id });
        }
    }
    latencies
}

/// One open-loop client: fire fetches (and the occasional write) at
/// deterministic Poisson arrival instants at `rate` ops/sec, whether or
/// not earlier ops have completed, draining replies between arrivals.
/// Arrivals the mailbox refuses (`try_send` backpressure) are dropped on
/// the floor — open loop means the generator does not slow down — and
/// latency is measured from the *intended* arrival instant, so queueing
/// delay under overload is visible instead of throttling the offered
/// load. Returns per-op latencies in nanoseconds.
fn client_loop_open(
    id: ClientId,
    core: usize,
    handle: SvcHandle<R, D>,
    mut replies: Replies,
    files: u64,
    stop: Arc<AtomicBool>,
    rate: f64,
) -> Vec<u64> {
    pin_to_core(core);
    let mut arr = FaultPlan::new(rng_seed(id))
        .with_overload(OverloadPlan {
            base_rate: rate,
            burst_rate: rate,
            burst_at: Dur::ZERO,
            burst_len: Dur::ZERO,
            herd: false,
        })
        .arrivals(u64::from(id.0))
        .expect("overload plan");
    let mut rng = rng_seed(id);
    let mut next_req: u64 = 1;
    let mut latencies = Vec::new();
    // In-flight ops: req id -> (intended arrival, target resource).
    let mut pending: HashMap<u64, (Instant, u64)> = HashMap::new();
    let start = Instant::now();
    let mut drain_until: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        if stopping {
            if pending.is_empty()
                || Instant::now()
                    >= *drain_until.get_or_insert_with(|| Instant::now() + Duration::from_secs(2))
            {
                break;
            }
        } else {
            let at = Duration::from(arr.next_at());
            // Drain replies until the next arrival instant.
            loop {
                let now = start.elapsed();
                if now >= at {
                    break;
                }
                match replies.recv_timeout((at - now).min(Duration::from_millis(1))) {
                    Ok(m) => drain_open(&handle, id, m, &mut pending, &mut latencies),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return latencies,
                }
            }
            let resource = (rng_next(&mut rng) >> 33) % files;
            let req = next_req;
            next_req += 1;
            let msg = if next_req.is_multiple_of(32) {
                ToServer::Write {
                    req: ReqId(req),
                    resource,
                    data: next_req,
                }
            } else {
                ToServer::Fetch {
                    req: ReqId(req),
                    resource,
                    cached: None,
                    also_extend: Vec::new(),
                }
            };
            if handle.try_send(id, msg).is_ok() {
                pending.insert(req, (start + at, resource));
            }
            continue;
        }
        match replies.recv_timeout(Duration::from_millis(20)) {
            Ok(m) => drain_open(&handle, id, m, &mut pending, &mut latencies),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    latencies
}

/// Handles one reply in the open loop: completions are timed from the
/// intended arrival instant; approval requests are answered immediately
/// (a peer's write is blocked on them).
fn drain_open(
    handle: &SvcHandle<R, D>,
    id: ClientId,
    m: ToClient<R, D>,
    pending: &mut HashMap<u64, (Instant, u64)>,
    latencies: &mut Vec<u64>,
) {
    match m {
        ToClient::Grants { req, grants } => {
            if let Some(&(t0, resource)) = pending.get(&req.0) {
                if grants.iter().any(|g| g.resource == resource) {
                    pending.remove(&req.0);
                    latencies.push(t0.elapsed().as_nanos() as u64);
                }
            }
        }
        ToClient::WriteDone { req, .. } => {
            if let Some((t0, _)) = pending.remove(&req.0) {
                latencies.push(t0.elapsed().as_nanos() as u64);
            }
        }
        ToClient::Error { req, .. } => {
            pending.remove(&req.0);
        }
        ToClient::ApprovalRequest { write_id, .. } => {
            let _ = handle.try_send(id, ToServer::Approve { write_id });
        }
        _ => {}
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `egress` tag a pre-v4 baseline row gets when parsed: every row
/// recorded before the ring reply path existed measured the channel
/// sink.
fn default_egress() -> String {
    "channel".to_string()
}

/// One row of the sweep, as printed and as recorded in `BENCH_svc.json`.
/// `batch == 1` rows come from the per-op closed loop; larger batches
/// from the windowed pipelined loop. `egress` (new in schema v4) says
/// which reply path the row measured — v3 baselines parse as
/// channel-mode rows — and ring rows also record `wakes_per_op`, the
/// futex-backed doorbell wakeups per completed op.
#[derive(serde::Serialize, serde::Deserialize)]
struct SweepRow {
    shards: usize,
    batch: usize,
    #[serde(default = "default_egress")]
    egress: String,
    ops: u64,
    ops_per_sec: f64,
    grants_per_sec: f64,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    wakes_per_op: Option<f64>,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// The core-pinned scaling-curve section of the v3 schema: the same
/// per-op and batched rows, but with shard workers pinned to cores
/// `0..s` and clients to the cores after them. `cores` records the
/// host's parallelism so a reader (and the `--check` gate) knows
/// whether the curve had real cores to scale across.
#[derive(serde::Serialize, serde::Deserialize)]
struct ScalingCurve {
    cores: usize,
    rows: Vec<SweepRow>,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct SvcBench {
    schema: String,
    clients: u32,
    files: u64,
    window_ms: u64,
    rows: Vec<SweepRow>,
    /// Absent in `--open-loop` mode and in pre-v3 baselines.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    scaling: Option<ScalingCurve>,
}

/// Runs one configuration. `batch == 1` uses the per-op closed loop,
/// larger batches the windowed pipelined loop; `open_loop = Some(rate)`
/// instead drives Poisson arrivals at `rate` ops/sec split across the
/// clients (the row is marked `batch = 0`). With `pin`, shard workers
/// are pinned to cores `0..shards` and clients to the cores after them
/// (the scaling-curve placement); without it, clients pin round-robin
/// from core 0 and workers float, as the main sweep always has. With
/// `ring_egress`, replies travel per-client SPSC lanes with coalesced
/// doorbells instead of the crossbeam channel, and the row records
/// `wakes_per_op` (sleeper-present doorbell wakes / completed ops).
#[allow(clippy::too_many_arguments)] // one knob per argument
fn run_config(
    shards: usize,
    clients: u32,
    files: u64,
    window: Duration,
    batch: usize,
    open_loop: Option<f64>,
    pin: bool,
    ring_egress: bool,
) -> SweepRow {
    // Open-loop rows are tagged batch=0 in the sweep output.
    let batch = if open_loop.is_some() { 0 } else { batch };
    let egress: Egress<R, D> = Egress::new(clients as usize, 1024);
    let mut replies: Vec<Replies> = Vec::new();
    let sink: Arc<dyn lease_svc::ClientSink<R, D>> = if ring_egress {
        for i in 0..clients as usize {
            replies.push(Replies::ring(egress.rx(i)));
        }
        Arc::new(EgressSink::new(egress.clone()))
    } else {
        let mut txs = Vec::new();
        for _ in 0..clients {
            let (tx, rx) = unbounded();
            txs.push(tx);
            replies.push(Replies::Chan(rx));
        }
        Arc::new(ChannelSink { txs })
    };
    let base = SvcConfig::default();
    let service = LeaseService::spawn(
        SvcConfig {
            shards,
            // Let a worker drain a whole client sub-batch per wakeup.
            batch: base.batch.max(batch * 2),
            pin: pin.then_some(0),
            ..base
        },
        sink,
        SvcHooks::default(),
        move |_| {
            // Every shard preloads the full set; the router only sends a
            // shard its own partition, so the copies never disagree.
            let mut store: MemStorage<R, D> = MemStorage::new();
            for r in 0..files {
                store.insert(r, r);
            }
            (
                LeaseServer::new(ServerConfig::fixed(Dur::from_secs(5))),
                Box::new(store) as Box<dyn Storage<R, D> + Send>,
            )
        },
    );
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let workers: Vec<_> = replies
        .into_iter()
        .enumerate()
        .map(|(i, replies)| {
            let handle = handle.clone();
            let stop = stop.clone();
            // Pinned (scaling) runs give workers cores 0..shards and put
            // clients on the cores after them, so neither side evicts
            // the other on a host with enough cores.
            let core = if pin { shards + i } else { i };
            std::thread::spawn(move || {
                let id = ClientId(i as u32);
                if let Some(rate) = open_loop {
                    client_loop_open(
                        id,
                        core,
                        handle,
                        replies,
                        files,
                        stop,
                        rate / f64::from(clients),
                    )
                } else if batch > 1 {
                    client_loop_batched(id, core, handle, replies, files, stop, batch, shards)
                } else {
                    client_loop(id, core, handle, replies, files, stop)
                }
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed();
    let mut lats: Vec<u64> = Vec::new();
    for w in workers {
        lats.extend(w.join().expect("client thread"));
    }
    let grants = service
        .stats()
        .map(|s| s.counters.grants)
        .unwrap_or_default();
    service.shutdown();
    lats.sort_unstable();
    let ops = lats.len() as u64;
    let wakes_per_op = (ring_egress && ops > 0).then(|| egress.wakes() as f64 / ops as f64);
    let row = SweepRow {
        shards,
        batch,
        egress: if ring_egress { "ring" } else { "channel" }.to_string(),
        ops,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
        grants_per_sec: grants as f64 / elapsed.as_secs_f64(),
        wakes_per_op,
        p50_us: percentile(&lats, 0.50) / 1_000,
        p95_us: percentile(&lats, 0.95) / 1_000,
        p99_us: percentile(&lats, 0.99) / 1_000,
    };
    println!(
        "shards={:<2} batch={:<3} egress={:<7} ops={:>8} ops/s={:>8.0} grants/s={:>8.0} p50={:>5}us p95={:>5}us p99={:>5}us{}{}",
        row.shards,
        row.batch,
        row.egress,
        row.ops,
        row.ops_per_sec,
        row.grants_per_sec,
        row.p50_us,
        row.p95_us,
        row.p99_us,
        match row.wakes_per_op {
            Some(w) => format!(" wakes/op={w:.3}"),
            None => String::new(),
        },
        if pin { " [pinned]" } else { "" },
    );
    row
}

struct Opts {
    window: Duration,
    clients: u32,
    files: u64,
    batch: usize,
    shard_counts: Vec<usize>,
    scale_counts: Vec<usize>,
    open_loop: Option<f64>,
}

/// Runs the full sweep: per shard count, a per-op and a batched row in
/// *each* egress mode — channel (the spec path) then ring (the SPSC
/// lane path) — or one channel open-loop row per shard count in
/// `--open-loop` mode, followed by the core-pinned scaling curve over
/// `scale_counts`, again in both egress modes.
fn measure(o: &Opts) -> SvcBench {
    let mut rows = Vec::new();
    for &s in &o.shard_counts {
        if o.open_loop.is_some() {
            rows.push(run_config(
                s,
                o.clients,
                o.files,
                o.window,
                0,
                o.open_loop,
                false,
                false,
            ));
        } else {
            for ring in [false, true] {
                rows.push(run_config(
                    s, o.clients, o.files, o.window, 1, None, false, ring,
                ));
                rows.push(run_config(
                    s, o.clients, o.files, o.window, o.batch, None, false, ring,
                ));
            }
        }
    }
    let scaling = if o.open_loop.is_none() && !o.scale_counts.is_empty() {
        let cores = lease_bench::sweep::available_cores();
        println!("scaling curve ({cores} cores, workers pinned 0..s, clients after):");
        let mut rows = Vec::new();
        for &s in &o.scale_counts {
            for ring in [false, true] {
                rows.push(run_config(
                    s, o.clients, o.files, o.window, 1, None, true, ring,
                ));
                rows.push(run_config(
                    s, o.clients, o.files, o.window, o.batch, None, true, ring,
                ));
            }
        }
        Some(ScalingCurve { cores, rows })
    } else {
        None
    };
    SvcBench {
        schema: "lease-bench/BENCH_svc/v4".to_string(),
        clients: o.clients,
        files: o.files,
        window_ms: o.window.as_millis() as u64,
        rows,
        scaling,
    }
}

/// Ops/s of the row at `shards` in the given mode. A mode is the pair
/// (`batched`, `egress`): batched rows never compare against per-op
/// rows, and ring rows never compare against channel rows.
fn mode_ops(rows: &[SweepRow], shards: usize, batched: bool, egress: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.shards == shards && (r.batch > 1) == batched && r.egress == egress)
        .map(|r| r.ops_per_sec)
}

/// The s4/s1 throughput ratio in one mode, when both rows are present.
fn mode_ratio(rows: &[SweepRow], batched: bool, egress: &str) -> Option<f64> {
    match (
        mode_ops(rows, 1, batched, egress),
        mode_ops(rows, 4, batched, egress),
    ) {
        (Some(s1), Some(s4)) => Some(s4 / s1),
        _ => None,
    }
}

/// The per-op ring/channel throughput ratio at `shards`, when both rows
/// are present — the number the egress gate protects.
fn egress_ratio(rows: &[SweepRow], shards: usize) -> Option<f64> {
    match (
        mode_ops(rows, shards, false, "channel"),
        mode_ops(rows, shards, false, "ring"),
    ) {
        (Some(chan), Some(ring)) => Some(ring / chan),
        _ => None,
    }
}

/// The `kind/egress` mode pairs a baseline's rows actually contain (with
/// an s4/s1 ratio to compare against), for the skip notice: when a mode
/// the fresh run measured is missing from the baseline, the notice names
/// both sides instead of only one.
fn recorded_modes(rows: &[SweepRow]) -> Vec<String> {
    let mut out = Vec::new();
    for (kind, batched) in [("per-op", false), ("batched", true)] {
        for egress in ["channel", "ring"] {
            if mode_ratio(rows, batched, egress).is_some() {
                out.push(format!("{kind}/{egress}"));
            }
        }
    }
    out
}

/// The scaling gate. Always: batched throughput at 4 shards must
/// strictly beat 1 shard (ring rows preferred, channel rows otherwise),
/// and the fresh s4/s1 ratio in *each* mode must sit within 25% of the
/// same mode's ratio in the checked-in baseline (raw ops/s is
/// machine-dependent; the per-mode ratio is what the ingress and egress
/// paths are supposed to protect). A mode is (batch class, egress):
/// batched never compares against per-op, ring never against channel,
/// and modes the baseline did not record — every ring mode under a v3
/// baseline — are skipped, so old baselines keep parsing and gating
/// what they know about. On a host with >= 4 cores the pinned scaling
/// curve must additionally show batched s4 >= 2x batched s1, and the
/// pinned per-op s4 *ring/channel* ratio must hold at least
/// `max(1.0, 0.75 x baseline ratio)` — the ring reply path must keep
/// beating the channel it replaced; on smaller hosts both multicore
/// gates are skipped with a visible notice.
fn check(fresh: &SvcBench, baseline_path: &str) -> Result<(), String> {
    let scale_mode = if mode_ops(&fresh.rows, 1, true, "ring").is_some() {
        "ring"
    } else {
        "channel"
    };
    let (s1, s4) = match (
        mode_ops(&fresh.rows, 1, true, scale_mode),
        mode_ops(&fresh.rows, 4, true, scale_mode),
    ) {
        (Some(s1), Some(s4)) => (s1, s4),
        _ => return Err("check needs batched rows for shards=1 and shards=4".into()),
    };
    println!(
        "check scaling: batched s4/s1 = {:.2}x ({s4:.0} vs {s1:.0} ops/s)",
        s4 / s1
    );
    if s4 <= s1 {
        return Err(format!(
            "batched ops/s did not scale: shards=4 ({s4:.0}) <= shards=1 ({s1:.0})"
        ));
    }
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: SvcBench =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {baseline_path}: {e:?}"))?;
    // Same-mode ratio comparison, for the main rows and (when both the
    // fresh run and the baseline recorded one) the pinned scaling curve.
    // The scaling section only gates when both recordings had >= 2 cores:
    // on one core pinning is a no-op, so those rows measure scheduler
    // luck with wide run-to-run variance — the main rows gate instead.
    let scaling_cores = |b: &SvcBench| b.scaling.as_ref().map_or(0, |s| s.cores);
    let scaling_gated = scaling_cores(fresh) >= 2 && scaling_cores(&baseline) >= 2;
    if !scaling_gated && fresh.scaling.is_some() && baseline.scaling.is_some() {
        println!(
            "check scaling section: informational only ({} fresh / {} baseline cores, need >= 2 to gate)",
            scaling_cores(fresh),
            scaling_cores(&baseline)
        );
    }
    type Section<'a> = (&'a str, Option<&'a [SweepRow]>, Option<&'a [SweepRow]>);
    let sections: [Section<'_>; 2] = [
        ("rows", Some(&fresh.rows[..]), Some(&baseline.rows[..])),
        (
            "scaling",
            fresh
                .scaling
                .as_ref()
                .filter(|_| scaling_gated)
                .map(|s| &s.rows[..]),
            baseline
                .scaling
                .as_ref()
                .filter(|_| scaling_gated)
                .map(|s| &s.rows[..]),
        ),
    ];
    for (section, fresh_rows, base_rows) in sections {
        let (Some(fresh_rows), Some(base_rows)) = (fresh_rows, base_rows) else {
            continue;
        };
        for (kind, batched) in [("per-op", false), ("batched", true)] {
            for egress in ["channel", "ring"] {
                let Some(ratio) = mode_ratio(fresh_rows, batched, egress) else {
                    continue;
                };
                let Some(b_ratio) = mode_ratio(base_rows, batched, egress) else {
                    // A v3 baseline has no ring rows; name both sides —
                    // the mode this run measured AND the modes the
                    // baseline can actually vouch for — rather than
                    // silently passing.
                    let recorded = recorded_modes(base_rows);
                    println!(
                        "check {section}/{kind}/{egress}: s4/s1 = {ratio:.2}x, but the baseline \
                         recorded no {kind}/{egress} rows (it has: {}) — this run's {kind}/{egress} \
                         mode is skipped, not gated",
                        if recorded.is_empty() {
                            "none".to_string()
                        } else {
                            recorded.join(", ")
                        }
                    );
                    continue;
                };
                let floor = b_ratio * 0.75;
                println!(
                    "check {section}/{kind}/{egress}: s4/s1 = {ratio:.2}x, baseline {b_ratio:.2}x (floor {floor:.2}x)"
                );
                if ratio < floor {
                    return Err(format!(
                        "{section}/{kind}/{egress} s4/s1 ratio {ratio:.2}x regressed >25% below baseline {b_ratio:.2}x"
                    ));
                }
            }
        }
    }
    // The multicore gates: with >= 4 real cores and pinned workers,
    // (a) the batched path must scale at least 2x from 1 shard to 4,
    // and (b) the per-op s4 ring egress must beat the channel egress it
    // replaced — in-run ratio >= max(1.0, 0.75 x the baseline's ratio).
    match fresh.scaling.as_ref() {
        Some(curve) if curve.cores >= 4 => {
            let mode = if mode_ratio(&curve.rows, true, "ring").is_some() {
                "ring"
            } else {
                "channel"
            };
            let Some(ratio) = mode_ratio(&curve.rows, true, mode) else {
                return Err("scaling curve lacks batched rows for shards=1 and shards=4".into());
            };
            println!(
                "check multicore gate ({} cores): pinned batched/{mode} s4/s1 = {ratio:.2}x (need >= 2x)",
                curve.cores
            );
            if ratio < 2.0 {
                return Err(format!(
                    "pinned batched/{mode} s4/s1 = {ratio:.2}x on a {}-core host (need >= 2x)",
                    curve.cores
                ));
            }
            match egress_ratio(&curve.rows, 4) {
                Some(er) => {
                    let b_er = baseline
                        .scaling
                        .as_ref()
                        .filter(|b| b.cores >= 4)
                        .and_then(|b| egress_ratio(&b.rows, 4));
                    let floor = b_er.map_or(1.0, |b| (b * 0.75).max(1.0));
                    match b_er {
                        Some(b_er) => println!(
                            "check egress gate ({} cores): pinned per-op s4 ring/channel = {er:.2}x, \
                             baseline {b_er:.2}x (floor {floor:.2}x)",
                            curve.cores
                        ),
                        None => println!(
                            "check egress gate ({} cores): pinned per-op s4 ring/channel = {er:.2}x \
                             (no >=4-core baseline ratio; floor {floor:.2}x)",
                            curve.cores
                        ),
                    }
                    if er < floor {
                        return Err(format!(
                            "per-op s4 ring egress no longer beats the channel: {er:.2}x < floor {floor:.2}x"
                        ));
                    }
                }
                None => println!(
                    "check egress gate SKIPPED: scaling curve lacks per-op s4 rows in both egress modes"
                ),
            }
        }
        Some(curve) => println!(
            "check multicore + egress gates SKIPPED: only {} core(s), need >= 4 for the 2x batched \
             s4/s1 gate and the per-op s4 ring-vs-channel gate",
            curve.cores
        ),
        None => println!(
            "check multicore + egress gates SKIPPED: no scaling curve in this run (--scale none)"
        ),
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The hidden multi-process roles parse their own flags.
    match args.first().map(String::as_str) {
        Some("--net-server") => return net::run_server_cli(&args[1..]),
        Some("--net-gen") => return net::run_gen_cli(&args[1..]),
        _ => {}
    }

    let mut window = Duration::from_millis(env_u64("LEASE_LOAD_MS", 1_000));
    let mut ms_set = std::env::var("LEASE_LOAD_MS").is_ok();
    let mut clients = env_u64("LEASE_LOAD_CLIENTS", 4) as u32;
    let mut files = env_u64("LEASE_LOAD_FILES", 256);
    let mut batch = env_u64("LEASE_LOAD_BATCH", 32) as usize;
    let mut open_loop: Option<f64> = std::env::var("LEASE_LOAD_RATE")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut shard_list = std::env::var("LEASE_LOAD_SHARDS").unwrap_or_else(|_| "1,2,4,8".into());
    let mut scale_list = std::env::var("LEASE_LOAD_SCALE").unwrap_or_else(|_| "1,2,4,8".into());
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut net_mode = false;
    let mut quick = false;

    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match (args[i].as_str(), value) {
            ("--help", _) | ("-h", _) => {
                println!("{HELP}");
                return;
            }
            ("--threads", Some(v)) => {
                clients = parse_threads(v).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }) as u32;
                i += 2;
            }
            ("--shards", Some(v)) => {
                shard_list = v.clone();
                i += 2;
            }
            ("--scale", Some(v)) => {
                scale_list = v.clone();
                i += 2;
            }
            ("--ms", Some(v)) => {
                window = Duration::from_millis(v.parse().unwrap_or(1_000));
                ms_set = true;
                i += 2;
            }
            ("--net", _) => {
                net_mode = true;
                i += 1;
            }
            ("--quick", _) => {
                quick = true;
                i += 1;
            }
            ("--files", Some(v)) => {
                files = v.parse().unwrap_or(256);
                i += 2;
            }
            ("--batch", Some(v)) => {
                batch = v.parse::<usize>().unwrap_or(32).max(2);
                i += 2;
            }
            ("--open-loop", Some(v)) => {
                match v.parse::<f64>() {
                    Ok(r) if r > 0.0 => open_loop = Some(r),
                    _ => {
                        eprintln!("--open-loop needs a positive ops/sec rate, got {v}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            ("--json", Some(v)) => {
                json_path = Some(v.clone());
                i += 2;
            }
            ("--check", Some(v)) => {
                check_path = Some(v.clone());
                i += 2;
            }
            (other, _) => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    if net_mode {
        if open_loop.is_some() {
            eprintln!("--net drives its own closed-loop generators; drop --open-loop");
            std::process::exit(2);
        }
        let shards = shard_list
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .map(|s| s.max(1))
            .next()
            .unwrap_or(1);
        if !ms_set {
            window = Duration::from_millis(if quick { 300 } else { 1_000 });
        }
        println!(
            "svc_load --net: {clients} generator processes, {shards} shard(s), {files} files, \
             batch {batch}, {}ms window, {} mode",
            window.as_millis(),
            if quick { "quick" } else { "full" },
        );
        net::run_net(&net::NetOpts {
            shards,
            gens: clients,
            files,
            window,
            batch,
            quick,
            json_path: json_path.unwrap_or_else(|| "BENCH_net.json".to_string()),
            check_path,
        });
        return;
    }
    let json_path = json_path.unwrap_or_else(|| "BENCH_svc.json".to_string());
    if open_loop.is_some() && check_path.is_some() {
        eprintln!("--check needs the closed-loop batched rows; drop --open-loop");
        std::process::exit(2);
    }
    let opts = Opts {
        window,
        clients,
        files,
        batch,
        open_loop,
        shard_counts: shard_list
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .map(|s| s.max(1))
            .collect(),
        scale_counts: if scale_list.trim() == "none" {
            Vec::new()
        } else {
            scale_list
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .map(|s| s.max(1))
                .collect()
        },
    };
    println!(
        "svc_load: {clients} {} clients, {files} files, batch {batch}, {}ms window per config ({} cores)",
        match open_loop {
            Some(r) => format!("open-loop ({r:.0} ops/s)"),
            None => "closed-loop".to_string(),
        },
        window.as_millis(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let fresh = measure(&opts);
    match check_path {
        Some(path) => {
            if let Err(first) = check(&fresh, &path) {
                // One retry before failing: even batched-throughput
                // ratios can be unlucky on a loaded host.
                eprintln!("svc_load --check below floor ({first}); re-measuring once");
                let again = measure(&opts);
                if let Err(e) = check(&again, &path) {
                    eprintln!("svc_load --check FAILED: {e}");
                    std::process::exit(1);
                }
            }
            println!("svc_load --check OK");
        }
        None => match serde_json::to_string_pretty(&fresh) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&json_path, s + "\n") {
                    eprintln!("warning: cannot write {json_path}: {e}");
                } else {
                    println!("wrote {json_path}");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize sweep: {e:?}"),
        },
    }
}
