//! Goodput-vs-offered-load sweep for the overload-robustness stack.
//!
//! Drives the sharded lease service **open loop** — deterministic Poisson
//! arrivals at a fixed multiple of the shard's capacity, whether or not
//! earlier ops have completed — and measures *goodput*: completions whose
//! open-loop latency (from the intended arrival instant, so queueing and
//! sender blocking count) lands within an SLO. A single shard is pinned
//! to a known capacity with the chaos slow-shard knob, so offered load is
//! expressed as a machine-independent fraction of saturation.
//!
//! Two modes per offered load:
//!
//! * **controlled** — the overload stack on: admission control (cold
//!   fetches shed with a server-suggested `retry_after`, which the
//!   client honours from a token-bucket retry budget), the adaptive term
//!   controller, and per-op deadlines propagated into the mailbox so the
//!   shard drops work whose caller has already given up;
//! * **ablated** — the same service with every protection off: blocking
//!   sends, no admission, no controller, no deadlines. Past saturation
//!   its queue fills with work that is already dead by the time it is
//!   drained, and goodput collapses even though raw throughput holds.
//!
//! Results go to `BENCH_overload.json`; `--check PATH` re-measures and
//! gates against a recorded baseline (see `--help`). `--quick` shrinks
//! the per-row window for CI smoke; the flag is recorded in the JSON and
//! checking a quick run against a full baseline (or vice versa) is
//! refused.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use lease_bench::percentile;
use lease_clock::{Clock, Dur, Time, WallClock};
use lease_core::{
    ClientId, ErrorReason, LeaseServer, MemStorage, ReqId, ServerConfig, Storage, TermController,
    ToClient, ToServer,
};
use lease_svc::{
    AdmissionControl, ClientSink, FaultPlan, LeaseService, OverloadPlan, SvcConfig, SvcHandle,
    SvcHooks,
};

type R = u64;
type D = u64;

/// The slow-shard injection: 2ms per processed input ≈ 500 ops/sec of
/// genuine capacity, independent of the host.
const PER_INPUT: Dur = Dur::from_millis(2);
const CAPACITY: f64 = 500.0;
const SLO: Dur = Dur::from_millis(100);
const CLIENTS: u32 = 4;
const FILES: u64 = 256;
/// Mailbox and drain batch are sized so the backlog admission control
/// permits (shed watermark × mailbox, plus one drain batch in hand)
/// costs well under the SLO at 2ms per input — otherwise every admitted
/// op would already be late and shedding could not preserve goodput.
const MAILBOX: usize = 64;
const BATCH: usize = 8;
/// Offered load as fractions of saturation.
const OFFERED: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

const HELP: &str = "\
overload_bench: open-loop goodput sweep for the overload stack

Sweeps offered load at 0.5x/1x/2x/4x of a capacity-pinned shard
(2ms/input slow-shard injection, ~500 ops/s), in two modes: `controlled`
(admission control + term controller + retry budget + propagated
deadlines) and `ablated` (blocking sends, no protections). Goodput is
completions within a 100ms SLO, measured from the *intended* arrival
instant.

  --quick         short measurement windows (CI smoke); recorded in the
                  JSON, and --check refuses to compare across modes
  --json PATH     where to write results (default BENCH_overload.json)
  --check PATH    measure, then gate against the baseline at PATH:
                  controlled goodput at 2x must hold >=50% of the
                  controlled peak, the ablated run at 2x must collapse
                  below half of the controlled one, controlled p99 must
                  stay within 2x the SLO, and the controlled 2x/peak
                  ratio must be within 25% of the baseline's. One
                  re-measure before failing.
  --help          this text";

/// Delivers shard output onto per-client reply channels.
struct ChannelSink {
    txs: Vec<Sender<ToClient<R, D>>>,
}

impl ClientSink<R, D> for ChannelSink {
    fn deliver(&self, to: ClientId, msg: ToClient<R, D>) {
        let _ = self.txs[to.0 as usize].send(msg);
    }
}

/// An op registered by the sender, awaiting its reply.
struct Pend {
    /// Intended arrival instant — open-loop latency is measured from
    /// here, so time spent blocked in `send` or queued counts.
    t0: Instant,
    /// The op's deadline on the service clock (controlled mode only).
    deadline: Option<Time>,
    resource: u64,
}

#[derive(Default)]
struct Tally {
    /// Latencies (ns from intended arrival) of every completion.
    lats: Vec<u64>,
    good: u64,
    shed_seen: u64,
    refused: u64,
    unanswered: u64,
}

/// One open-loop sender: fires fetches at the plan's arrival instants.
/// Controlled mode attaches `now + SLO` as the op deadline and treats
/// transport backpressure as a refusal; ablated mode blocks.
#[allow(clippy::too_many_arguments)]
fn sender(
    id: ClientId,
    handle: &SvcHandle<R, D>,
    clock: &WallClock,
    plan: &FaultPlan,
    start: Instant,
    window: Duration,
    controlled: bool,
    reg: &Sender<(u64, Pend)>,
    refused: &AtomicU64,
) {
    let mut arr = plan.arrivals(u64::from(id.0)).expect("overload plan");
    let mut rng = 0x9e37_79b9_7f4a_7c15 ^ u64::from(id.0).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let mut next_req: u64 = 1;
    loop {
        let at = Duration::from(arr.next_at());
        if at >= window {
            return;
        }
        let elapsed = start.elapsed();
        if at > elapsed {
            std::thread::sleep(at - elapsed);
        }
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let resource = (rng >> 33) % FILES;
        let req = ReqId(next_req);
        next_req += 1;
        let msg = ToServer::Fetch {
            req,
            resource,
            cached: None,
            also_extend: Vec::new(),
        };
        let t0 = start + at;
        if controlled {
            let deadline = clock.now() + SLO;
            let pend = Pend {
                t0,
                deadline: Some(deadline),
                resource,
            };
            if handle.try_send_at(id, msg, Some(deadline)).is_ok() {
                let _ = reg.send((req.0, pend));
            } else {
                refused.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            let pend = Pend {
                t0,
                deadline: None,
                resource,
            };
            let _ = reg.send((req.0, pend));
            if handle.send(id, msg).is_err() {
                return;
            }
        }
    }
}

/// A shed retry waiting out its server-suggested pause.
struct Parked {
    due: Instant,
    req: u64,
}

/// One reply drainer: matches grants to registered ops, turns shed
/// replies into budgeted paced retries (controlled mode), and tallies
/// goodput. Runs until the stop flag plus a drain grace.
fn receiver(
    id: ClientId,
    handle: &SvcHandle<R, D>,
    clock: &WallClock,
    rx: &Receiver<ToClient<R, D>>,
    reg: &Receiver<(u64, Pend)>,
    stop: &AtomicBool,
    controlled: bool,
) -> Tally {
    let mut t = Tally::default();
    let mut pending: HashMap<u64, Pend> = HashMap::new();
    let mut parked: Vec<Parked> = Vec::new();
    // Token-bucket budget for shed retries: the server asked us to pace,
    // the budget caps how much paced re-offering we add on top.
    let (rate, burst) = (50.0, 16.0);
    let mut tokens = burst;
    let mut refill = Instant::now();
    let mut drain_until: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Relaxed) {
            let until =
                *drain_until.get_or_insert_with(|| Instant::now() + 3 * Duration::from(SLO));
            if Instant::now() >= until {
                break;
            }
        }
        while let Ok((req, pend)) = reg.try_recv() {
            pending.insert(req, pend);
        }
        // Flush shed retries whose pause has elapsed (and whose op is
        // still alive on its original deadline).
        tokens = (tokens + refill.elapsed().as_secs_f64() * rate).min(burst);
        refill = Instant::now();
        let now = Instant::now();
        for p in parked.extract_if(.., |p| p.due <= now).collect::<Vec<_>>() {
            let Some(pend) = pending.get(&p.req) else {
                continue;
            };
            let dead = pend.deadline.is_some_and(|d| clock.now() > d);
            if dead
                || handle
                    .try_send_at(
                        id,
                        ToServer::Fetch {
                            req: ReqId(p.req),
                            resource: pend.resource,
                            cached: None,
                            also_extend: Vec::new(),
                        },
                        pend.deadline,
                    )
                    .is_err()
            {
                pending.remove(&p.req);
                t.refused += 1;
            }
        }
        let msg = match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(m) => m,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            ToClient::Grants { req, grants } => {
                if let Some(pend) = pending.get(&req.0) {
                    if grants.iter().any(|g| g.resource == pend.resource) {
                        let lat = pend.t0.elapsed().as_nanos() as u64;
                        if lat <= Duration::from(SLO).as_nanos() as u64 {
                            t.good += 1;
                        }
                        t.lats.push(lat);
                        pending.remove(&req.0);
                    }
                }
            }
            ToClient::Error {
                req,
                reason: ErrorReason::Shed { retry_after },
            } => {
                t.shed_seen += 1;
                if controlled && pending.contains_key(&req.0) && tokens >= 1.0 {
                    tokens -= 1.0;
                    parked.push(Parked {
                        due: Instant::now() + Duration::from(retry_after),
                        req: req.0,
                    });
                } else {
                    pending.remove(&req.0);
                }
            }
            ToClient::Error { req, .. } => {
                pending.remove(&req.0);
            }
            ToClient::ApprovalRequest { write_id, .. } => {
                let _ = handle.try_send(id, ToServer::Approve { write_id });
            }
            _ => {}
        }
    }
    t.unanswered = pending.len() as u64;
    t
}

#[derive(serde::Serialize, serde::Deserialize)]
struct Row {
    mode: String,
    offered_x: f64,
    offered_per_sec: f64,
    completed: u64,
    good: u64,
    goodput_per_sec: f64,
    /// Server-side admission refusals (cold fetches shed).
    shed: u64,
    /// Grants issued at a controller-degraded term.
    degraded: u64,
    /// Inputs the shard dropped because their deadline had passed.
    expired_drops: u64,
    /// Client-side drops: transport backpressure + exhausted retry budget.
    refused: u64,
    /// Ops never answered (dead in a queue at shutdown).
    unanswered: u64,
    p99_ms: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct OverloadBench {
    schema: String,
    quick: bool,
    slo_ms: u64,
    capacity_per_sec: f64,
    clients: u32,
    rows: Vec<Row>,
}

fn run_row(offered_x: f64, controlled: bool, window: Duration) -> Row {
    let offered = offered_x * CAPACITY;
    let clock = Arc::new(WallClock::new());
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..CLIENTS {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let service = LeaseService::spawn(
        SvcConfig {
            shards: 1,
            mailbox: MAILBOX,
            batch: BATCH,
            admission: controlled.then_some(AdmissionControl {
                shed_watermark: 0.25,
                stats_watermark: 0.9,
                retry_after: Dur::from_millis(10),
            }),
            slow_shard: Some((0, PER_INPUT)),
            ..SvcConfig::default()
        },
        Arc::new(ChannelSink { txs }),
        SvcHooks {
            clock: Some(clock.clone()),
            ..SvcHooks::default()
        },
        move |_| {
            let mut store: MemStorage<R, D> = MemStorage::new();
            for r in 0..FILES {
                store.insert(r, r);
            }
            let mut sc = ServerConfig::fixed(Dur::from_millis(100));
            if controlled {
                sc.overload = Some(TermController::new(Dur::from_millis(25), 0.05, 0.15));
            }
            (
                LeaseServer::new(sc),
                Box::new(store) as Box<dyn Storage<R, D> + Send>,
            )
        },
    );
    let handle = service.handle();
    // A flat plan: the "burst" is the whole window, at the offered rate
    // split across the client streams.
    let plan = FaultPlan::new(0x0bad_cafe ^ offered_x.to_bits()).with_overload(OverloadPlan {
        base_rate: offered / f64::from(CLIENTS),
        burst_rate: offered / f64::from(CLIENTS),
        burst_at: Dur::ZERO,
        burst_len: Dur::ZERO,
        herd: false,
    });
    let stop = Arc::new(AtomicBool::new(false));
    let refused = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut tallies: Vec<Tally> = Vec::new();
    std::thread::scope(|s| {
        let mut drainers = Vec::new();
        for (i, rx) in rxs.into_iter().enumerate() {
            let id = ClientId(i as u32);
            let (reg_tx, reg_rx) = unbounded();
            let (handle2, clock2, stop2) = (handle.clone(), clock.clone(), stop.clone());
            drainers.push(
                s.spawn(move || receiver(id, &handle2, &clock2, &rx, &reg_rx, &stop2, controlled)),
            );
            let (handle2, clock2, plan2, refused2) =
                (handle.clone(), clock.clone(), plan.clone(), refused.clone());
            s.spawn(move || {
                sender(
                    id, &handle2, &clock2, &plan2, start, window, controlled, &reg_tx, &refused2,
                );
                drop(reg_tx);
            });
        }
        // Senders exit on their own at the window edge; the drainers get
        // the stop flag then, and a grace period to drain.
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        tallies = drainers.into_iter().map(|d| d.join().unwrap()).collect();
    });
    let counters = service.stats().map(|s| s.counters).unwrap_or_default();
    service.shutdown();
    let mut lats: Vec<u64> = Vec::new();
    let (mut good, mut shed_seen, mut client_refused, mut unanswered) = (0, 0, 0, 0);
    for t in tallies {
        lats.extend(t.lats);
        good += t.good;
        shed_seen += t.shed_seen;
        client_refused += t.refused;
        unanswered += t.unanswered;
    }
    let _ = shed_seen; // Server-side counter below is the authority.
    lats.sort_unstable();
    let row = Row {
        mode: if controlled { "controlled" } else { "ablated" }.to_string(),
        offered_x,
        offered_per_sec: offered,
        completed: lats.len() as u64,
        good,
        goodput_per_sec: good as f64 / window.as_secs_f64(),
        shed: counters.sheds,
        degraded: counters.degraded_grants,
        expired_drops: counters.expired_drops,
        refused: refused.load(Ordering::Relaxed) + client_refused,
        unanswered,
        p99_ms: percentile(&lats, 0.99) as f64 / 1e6,
    };
    println!(
        "{:<10} {:>4.1}x ({:>6.0}/s) goodput={:>6.1}/s good={:>5} completed={:>5} shed={:>5} degraded={:>5} expired={:>5} refused={:>5} p99={:>8.1}ms",
        row.mode,
        row.offered_x,
        row.offered_per_sec,
        row.goodput_per_sec,
        row.good,
        row.completed,
        row.shed,
        row.degraded,
        row.expired_drops,
        row.refused,
        row.p99_ms,
    );
    row
}

fn measure(quick: bool) -> OverloadBench {
    let window = Duration::from_millis(if quick { 400 } else { 1000 });
    let mut rows = Vec::new();
    for &x in &OFFERED {
        rows.push(run_row(x, true, window));
    }
    for &x in &OFFERED {
        rows.push(run_row(x, false, window));
    }
    OverloadBench {
        schema: "lease-bench/BENCH_overload/v1".to_string(),
        quick,
        slo_ms: (Duration::from(SLO).as_millis()) as u64,
        capacity_per_sec: CAPACITY,
        clients: CLIENTS,
        rows,
    }
}

fn goodput(b: &OverloadBench, mode: &str, x: f64) -> Option<f64> {
    b.rows
        .iter()
        .find(|r| r.mode == mode && r.offered_x == x)
        .map(|r| r.goodput_per_sec)
}

/// The graceful-degradation gate. All thresholds are on *fresh*
/// measurements except the 2x/peak ratio, which is compared against the
/// baseline's (raw goodput is capacity-pinned but still jitters; the
/// shape of the curve is what the stack protects).
fn check(fresh: &OverloadBench, baseline_path: &str) -> Result<(), String> {
    let peak = fresh
        .rows
        .iter()
        .filter(|r| r.mode == "controlled")
        .map(|r| r.goodput_per_sec)
        .fold(0.0, f64::max);
    let c2 =
        goodput(fresh, "controlled", 2.0).ok_or_else(|| "missing controlled 2x row".to_string())?;
    let a2 = goodput(fresh, "ablated", 2.0).ok_or_else(|| "missing ablated 2x row".to_string())?;
    println!("check: controlled peak={peak:.1}/s, controlled@2x={c2:.1}/s, ablated@2x={a2:.1}/s");
    if peak <= 0.0 {
        return Err("controlled goodput is zero at every offered load".into());
    }
    if c2 < 0.5 * peak {
        return Err(format!(
            "not graceful: controlled goodput at 2x ({c2:.1}/s) fell below 50% of peak ({peak:.1}/s)"
        ));
    }
    if a2 >= 0.5 * c2 {
        return Err(format!(
            "ablation did not collapse: ablated@2x ({a2:.1}/s) >= half of controlled@2x ({c2:.1}/s)"
        ));
    }
    for r in fresh.rows.iter().filter(|r| r.mode == "controlled") {
        if r.completed > 0 && r.p99_ms > 2.0 * fresh.slo_ms as f64 {
            return Err(format!(
                "controlled p99 unbounded at {:.1}x: {:.1}ms > 2x SLO",
                r.offered_x, r.p99_ms
            ));
        }
    }
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: OverloadBench =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {baseline_path}: {e:?}"))?;
    if baseline.quick != fresh.quick {
        return Err(format!(
            "baseline was recorded with quick={} but this run used quick={} — \
             re-record the baseline in the same mode",
            baseline.quick, fresh.quick
        ));
    }
    let b_peak = baseline
        .rows
        .iter()
        .filter(|r| r.mode == "controlled")
        .map(|r| r.goodput_per_sec)
        .fold(0.0, f64::max);
    if let Some(b2) = goodput(&baseline, "controlled", 2.0) {
        if b_peak > 0.0 && b2 > 0.0 {
            let (ratio, b_ratio) = (c2 / peak, b2 / b_peak);
            let floor = b_ratio * 0.75;
            println!(
                "check baseline: 2x/peak = {b_ratio:.2} (floor {floor:.2}), fresh = {ratio:.2}"
            );
            if ratio < floor {
                return Err(format!(
                    "degradation ratio {ratio:.2} regressed >25% below baseline {b_ratio:.2}"
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let mut quick = false;
    let mut json_path = "BENCH_overload.json".to_string();
    let mut check_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--help", _) | ("-h", _) => {
                println!("{HELP}");
                return;
            }
            ("--quick", _) => {
                quick = true;
                i += 1;
            }
            ("--json", Some(v)) => {
                json_path = v.clone();
                i += 2;
            }
            ("--check", Some(v)) => {
                check_path = Some(v.clone());
                i += 2;
            }
            (other, _) => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    println!(
        "overload_bench: {CLIENTS} open-loop clients vs a {CAPACITY:.0} ops/s shard, \
         SLO {}ms, offered {:?}x{}",
        Duration::from(SLO).as_millis(),
        OFFERED,
        if quick { " (quick)" } else { "" },
    );
    let fresh = measure(quick);
    match check_path {
        Some(path) => {
            if let Err(first) = check(&fresh, &path) {
                // One retry: open-loop goodput on a loaded CI host can be
                // unlucky; a real regression fails twice.
                eprintln!("overload_bench --check below floor ({first}); re-measuring once");
                let again = measure(quick);
                if let Err(e) = check(&again, &path) {
                    eprintln!("overload_bench --check FAILED: {e}");
                    std::process::exit(1);
                }
            }
            println!("overload_bench --check OK");
        }
        None => match serde_json::to_string_pretty(&fresh) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&json_path, s + "\n") {
                    eprintln!("warning: cannot write {json_path}: {e}");
                } else {
                    println!("wrote {json_path}");
                }
            }
            Err(e) => eprintln!("warning: cannot serialize sweep: {e:?}"),
        },
    }
}
