//! Figure 3: added delay on a wide-area network (100 ms round trip).
//!
//! Section 3.3: with higher propagation delay, the consistency-induced
//! delay grows and slightly longer terms pay off, but 10–30 s terms remain
//! adequate — "a 10 second term degrades response by 10.1% over using an
//! infinite term and a 30 second term degrades it by 3.6%".

use lease_analytic::Params;
use lease_bench::sweep::{self, available_cores, take_threads_arg};
use lease_bench::{figure_terms, pct, save_json, spark, table};
use lease_clock::Dur;
use lease_net::NetParams;
use lease_vsys::{run_trace, SystemConfig, TermSpec};
use lease_workload::VTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Row {
    term: f64,
    s1_ms: f64,
    s10_ms: f64,
    trace_ms: f64,
    degradation_vs_infinite: f64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads_arg(&mut args, available_cores()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a} (only --threads N|auto is accepted)");
        std::process::exit(2);
    }
    let base = Params::v_system_wan();
    let baseline_response = 0.0995; // seconds; see EXPERIMENTS.md
    let trace = VTrace::calibrated(1989).generate();
    let mut terms = figure_terms();
    terms.push(60.0);

    // The WAN runs use a custom config, so fan the per-term sims across
    // the sweep runner directly rather than via run_sim_sweep.
    let measured: Vec<f64> = sweep::run(threads, &terms, |_, &t| {
        let cfg = SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs_f64(t)),
            net: NetParams::wan_100ms(),
            warmup: Dur::from_secs(60),
            seed: 7,
            ..SystemConfig::default()
        };
        run_trace(&cfg, &trace).mean_delay_ms()
    });

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (i, &t) in terms.iter().enumerate() {
        let row = Fig3Row {
            term: t,
            s1_ms: base.added_delay(t) * 1e3,
            s10_ms: base.with_sharing(10.0).added_delay(t) * 1e3,
            trace_ms: measured[i],
            degradation_vs_infinite: base.response_degradation(t, baseline_response),
        };
        rows.push(vec![
            format!("{t:.1}"),
            format!("{:.2}", row.s1_ms),
            format!("{:.2}", row.s10_ms),
            format!("{:.2}", row.trace_ms),
            pct(row.degradation_vs_infinite),
        ]);
        json.push(row);
    }

    println!("Figure 3: added delay with a 100 ms round-trip network\n");
    println!(
        "{}",
        table(
            &[
                "term (s)",
                "S=1 (ms)",
                "S=10 (ms)",
                "Trace (ms)",
                "degradation vs inf."
            ],
            &rows
        )
    );
    println!(
        "S=1 {}",
        spark(&json.iter().map(|r| r.s1_ms).collect::<Vec<_>>())
    );
    println!();
    let at = |t: f64| {
        json.iter()
            .find(|r| r.term == t)
            .unwrap()
            .degradation_vs_infinite
    };
    println!(
        "paper: 10 s term degrades response by 10.1% over an infinite term; ours {}",
        pct(at(10.0))
    );
    println!(
        "paper: 30 s term degrades response by  3.6% over an infinite term; ours {}",
        pct(at(30.0))
    );
    save_json("fig3", &json);
}
