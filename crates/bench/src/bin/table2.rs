//! Table 2: parameters for file caching in V, recovered from the
//! synthetic compile trace.
//!
//! The surviving copies of the paper preserve only `R = 0.864/s`; the
//! other targets below are the reconstruction documented in DESIGN.md and
//! EXPERIMENTS.md. This binary regenerates the trace, measures it, and
//! prints the Table 2 rows next to their targets.

use lease_bench::sweep::{self, available_cores, take_threads_arg};
use lease_bench::{save_json, table};
use lease_workload::{TraceStats, VTrace};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads_arg(&mut args, available_cores()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if let Some(a) = args.first() {
        eprintln!("unknown argument {a} (only --threads N|auto is accepted)");
        std::process::exit(2);
    }
    // Regenerate and measure the trace at the canonical seed plus a few
    // neighbors (in parallel): the table reports seed 1989, the spread
    // shows the reconstruction is a property of the generator, not of one
    // lucky seed.
    let seeds: Vec<u64> = (1989..1995).collect();
    let all: Vec<TraceStats> = sweep::run(threads, &seeds, |_, &seed| {
        let trace = VTrace::calibrated(seed).generate();
        trace.validate().expect("trace is well-formed");
        TraceStats::from_trace(&trace)
    });
    let s = all[0];

    println!("Table 2: parameters for file caching in V (synthetic compile trace)\n");
    let rows = vec![
        vec![
            "rate of reads R (1/s)".into(),
            format!("{:.3}", s.read_rate),
            "0.864".into(),
        ],
        vec![
            "rate of writes W (1/s)".into(),
            format!("{:.3}", s.write_rate),
            "0.040 (reconstructed)".into(),
        ],
        vec![
            "read/write ratio".into(),
            format!("{:.1}", s.rw_ratio),
            "~22 (reconstructed)".into(),
        ],
        vec![
            "installed fraction of reads".into(),
            format!("{:.1}%", s.installed_read_fraction * 100.0),
            "~50% (\"almost half\", section 4)".into(),
        ],
        vec![
            "directory fraction of reads".into(),
            format!("{:.1}%", s.directory_read_fraction * 100.0),
            "substantial (section 3.2)".into(),
        ],
        vec!["clients N".into(), format!("{}", s.clients), "1".into()],
        vec![
            "trace duration (s)".into(),
            format!("{:.0}", s.duration_secs),
            "-".into(),
        ],
        vec![
            "reads (non-temporary)".into(),
            format!("{}", s.reads),
            "-".into(),
        ],
        vec![
            "writes (non-temporary)".into(),
            format!("{}", s.writes),
            "-".into(),
        ],
        vec![
            "temporary ops (excluded)".into(),
            format!("{}", s.temp_ops),
            "majority of raw writes (section 2)".into(),
        ],
        vec![
            "burstiness (dispersion)".into(),
            format!("{:.1}", s.burstiness),
            "> 1 (burstier than Poisson)".into(),
        ],
    ];
    println!(
        "{}",
        table(&["parameter", "measured", "paper / target"], &rows)
    );
    let lo = all.iter().map(|s| s.read_rate).fold(f64::MAX, f64::min);
    let hi = all.iter().map(|s| s.read_rate).fold(f64::MIN, f64::max);
    println!(
        "stability: R across seeds {}..{} spans {lo:.3}-{hi:.3}/s",
        seeds.first().unwrap(),
        seeds.last().unwrap(),
    );
    save_json("table2", &s);
}
