//! Before/after microbenchmark of the server's lease table: the slab
//! (`lease_core::table::slab`, the shipping implementation) against the
//! map+`BTreeSet` reference (`table::reference`, the executable spec).
//!
//! Emits `BENCH_table.json` — one row per operation with sustained ops/s,
//! p50/p95/p99 per-op latency, allocations per op (when built with
//! `--features alloc-count`; `null` otherwise), and the slab/reference
//! speedup. The speedup is the number future PRs are gated on: raw ops/s
//! varies machine to machine, but both tables run on the *same* machine in
//! the *same* process, so the ratio travels.
//!
//! Usage:
//!
//! ```text
//! table_bench [--out PATH]        # measure and (re)write the JSON
//! table_bench --check PATH        # measure, compare against a baseline:
//!                                 # exit 1 if the grant or renewal speedup
//!                                 # fell more than 25% below the baseline
//! ```
//!
//! Latency percentiles time each operation individually, so they carry
//! ~20-30 ns of `Instant::now` overhead; throughput comes from a separate
//! untimed-per-op pass. Both tables pay the same overhead, keeping the
//! ratio honest.

use std::time::Instant;

use lease_bench::{allocations, op_stats, table, OpStats};
use lease_clock::Time;
use lease_core::table::{LeaseHandle, ReferenceTable, SlabTable};
use lease_core::ClientId;

const RESOURCES: u64 = 512;
const CLIENTS: u32 = 32;
const PAIRS: u64 = RESOURCES * CLIENTS as u64;
/// Renewal cadence: each round re-extends every pair by one STEP.
const STEP: u64 = 1_000_000; // 1 ms in ns
/// Rounds per measured pass (after an equal warm-up).
const ROUNDS: u64 = 12;

#[derive(serde::Serialize, serde::Deserialize)]
struct OpRow {
    /// Operation name: `grant`, `renewal`, `holders`, or `prune`.
    op: String,
    slab: OpStats,
    reference: OpStats,
    /// slab ops/s over reference ops/s — the machine-normalized number.
    speedup: f64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct TableBench {
    schema: String,
    rows: Vec<OpRow>,
}

fn pairs() -> impl Iterator<Item = (u64, ClientId)> + Clone {
    (0..RESOURCES).flat_map(|r| (0..CLIENTS).map(move |c| (r, ClientId(c))))
}

/// Runs `round` (taking the round number) `ROUNDS` times for warm-up, then
/// `ROUNDS` more measured, returning (ops/s, allocs-per-op) for
/// `ops_per_round`. Throughput is the *best* measured round: on a shared
/// box the mean smears scheduler preemptions into the result and the
/// run-to-run ratio wobbles far more than the code under test; the best
/// round is what the machine can actually do and is stable enough for
/// `--check` to gate on. Allocations still count across every measured
/// round (a hiccup cannot hide an allocation).
fn throughput(mut round: impl FnMut(u64), ops_per_round: u64) -> (f64, Option<f64>) {
    for i in 0..ROUNDS {
        round(i);
    }
    let a0 = allocations();
    let mut best = f64::INFINITY;
    for i in ROUNDS..2 * ROUNDS {
        let t0 = Instant::now();
        round(i);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let ops = ops_per_round * ROUNDS;
    let allocs = allocations()
        .zip(a0)
        .map(|(a1, a0)| (a1 - a0) as f64 / ops as f64);
    (ops_per_round as f64 / best, allocs)
}

/// Times each op of one extra round individually, for the percentiles.
fn latencies(mut op: impl FnMut(u64), ops: u64) -> Vec<u64> {
    (0..ops)
        .map(|i| {
            let t0 = Instant::now();
            op(i);
            t0.elapsed().as_nanos() as u64
        })
        .collect()
}

/// Fresh grants: each round wipes the table (capacity retained) and
/// re-creates every (resource, client) record.
fn bench_grant() -> (OpStats, OpStats) {
    let far = Time(u64::MAX / 2);

    let mut slab: SlabTable<u64> = SlabTable::new();
    let (ops, allocs) = throughput(
        |_| {
            slab.clear();
            for (i, (r, c)) in pairs().enumerate() {
                slab.grant(r, c, Time(far.0 + i as u64));
            }
        },
        PAIRS,
    );
    slab.clear();
    let mut it = pairs().cycle();
    let mut lats = latencies(
        |i| {
            let (r, c) = it.next().unwrap();
            slab.grant(r, c, Time(far.0 + i));
        },
        PAIRS,
    );
    let slab_stats = op_stats(&mut lats, ops, allocs);

    let mut reference: ReferenceTable<u64> = ReferenceTable::new();
    let (ops, allocs) = throughput(
        |_| {
            reference.clear();
            for (i, (r, c)) in pairs().enumerate() {
                reference.grant(r, c, Time(far.0 + i as u64));
            }
        },
        PAIRS,
    );
    reference.clear();
    let mut it = pairs().cycle();
    let mut lats = latencies(
        |i| {
            let (r, c) = it.next().unwrap();
            reference.grant(r, c, Time(far.0 + i));
        },
        PAIRS,
    );
    (slab_stats, op_stats(&mut lats, ops, allocs))
}

/// Renewals: every pair's lease is re-extended each round; the slab takes
/// the handle fast path. A prune per round advances time just past the
/// superseded expiries so the slab's wheel drains its stale entries — the
/// steady-state maintenance a live server performs — while the reference
/// prune finds nothing expired (its index is always exact).
fn bench_renewal() -> (OpStats, OpStats) {
    let expiry = |round: u64| Time((round + 2) * STEP);
    let prune_at = |round: u64| Time((round + 1) * STEP + STEP / 2);

    let mut slab: SlabTable<u64> = SlabTable::new();
    let mut handles: Vec<LeaseHandle> = Vec::with_capacity(PAIRS as usize);
    for (r, c) in pairs() {
        handles.push(slab.grant(r, c, expiry(0)));
    }
    let (ops, allocs) = throughput(
        |round| {
            let e = expiry(round + 1);
            for (i, (r, c)) in pairs().enumerate() {
                handles[i] = slab.extend(handles[i], r, c, e);
            }
            slab.prune(prune_at(round + 1));
        },
        PAIRS,
    );
    let base = 2 * ROUNDS + 1;
    let mut it = pairs().enumerate().cycle();
    let mut lats = latencies(
        |_| {
            let (i, (r, c)) = it.next().unwrap();
            handles[i] = slab.extend(handles[i], r, c, expiry(base));
        },
        PAIRS,
    );
    let slab_stats = op_stats(&mut lats, ops, allocs);

    let mut reference: ReferenceTable<u64> = ReferenceTable::new();
    for (r, c) in pairs() {
        reference.grant(r, c, expiry(0));
    }
    let (ops, allocs) = throughput(
        |round| {
            let e = expiry(round + 1);
            for (r, c) in pairs() {
                reference.grant(r, c, e);
            }
            reference.prune(prune_at(round + 1));
        },
        PAIRS,
    );
    let mut it = pairs().cycle();
    let mut lats = latencies(
        |_| {
            let (r, c) = it.next().unwrap();
            reference.grant(r, c, expiry(base));
        },
        PAIRS,
    );
    (slab_stats, op_stats(&mut lats, ops, allocs))
}

/// Read path: count the live holders of one resource. The slab walks its
/// intrusive list allocation-free; the reference materializes a `Vec`.
fn bench_holders() -> (OpStats, OpStats) {
    let far = Time(u64::MAX / 2);
    let now = Time(1);
    let queries = RESOURCES * 64;

    let mut slab: SlabTable<u64> = SlabTable::new();
    let mut reference: ReferenceTable<u64> = ReferenceTable::new();
    for (i, (r, c)) in pairs().enumerate() {
        slab.grant(r, c, Time(far.0 + i as u64));
        reference.grant(r, c, Time(far.0 + i as u64));
    }

    let mut sink = 0usize;
    let (ops, allocs) = throughput(
        |_| {
            for r in 0..queries {
                sink = sink.wrapping_add(slab.holder_count_at(r % RESOURCES, now));
            }
        },
        queries,
    );
    let mut lats = latencies(
        |i| {
            sink = sink.wrapping_add(slab.holder_count_at(i % RESOURCES, now));
        },
        queries,
    );
    let slab_stats = op_stats(&mut lats, ops, allocs);

    let (ops, allocs) = throughput(
        |_| {
            for r in 0..queries {
                sink = sink.wrapping_add(reference.holders_at(r % RESOURCES, now).len());
            }
        },
        queries,
    );
    let mut lats = latencies(
        |i| {
            sink = sink.wrapping_add(reference.holders_at(i % RESOURCES, now).len());
        },
        queries,
    );
    std::hint::black_box(sink);
    (slab_stats, op_stats(&mut lats, ops, allocs))
}

/// Expiry sweep: grant every pair with staggered deadlines, then one prune
/// removes them all. Reported per *record removed*; the setup grants are
/// outside the timed region.
fn bench_prune() -> (OpStats, OpStats) {
    fn run<T>(
        mut grant: impl FnMut(&mut T, u64, ClientId, Time),
        mut prune: impl FnMut(&mut T, Time) -> usize,
        table: &mut T,
    ) -> (f64, Option<f64>, Vec<u64>) {
        let mut per_record = Vec::new();
        let mut best_ns = u64::MAX;
        let mut removed = 0u64;
        let mut allocs = (None, None);
        for round in 0..2 * ROUNDS {
            let base = Time((round + 1) * 1_000_000_000);
            for (i, (r, c)) in pairs().enumerate() {
                grant(table, r, c, Time(base.0 + i as u64 * 17));
            }
            if round == ROUNDS {
                allocs.0 = allocations();
            }
            // Half a second past the last deadline: comfortably beyond the
            // slab's 1 ms prune-lag tick, so every record in the round fires.
            let t0 = Instant::now();
            let n = prune(table, Time(base.0 + 500_000_000));
            let dt = t0.elapsed().as_nanos() as u64;
            assert_eq!(n, PAIRS as usize, "prune must drain the round");
            if round >= ROUNDS {
                best_ns = best_ns.min(dt);
                removed += n as u64;
                per_record.push(dt / n as u64);
            }
        }
        allocs.1 = allocations();
        let allocs_per = allocs
            .1
            .zip(allocs.0)
            .map(|(a1, a0)| (a1 - a0) as f64 / removed as f64);
        // Best measured round, for the same reason as `throughput`.
        (
            PAIRS as f64 / (best_ns as f64 / 1e9),
            allocs_per,
            per_record,
        )
    }

    let mut slab: SlabTable<u64> = SlabTable::new();
    let (ops, allocs, mut lats) = run(
        |t, r, c, e| {
            t.grant(r, c, e);
        },
        |t, now| t.prune(now),
        &mut slab,
    );
    let slab_stats = op_stats(&mut lats, ops, allocs);

    let mut reference: ReferenceTable<u64> = ReferenceTable::new();
    let (ops, allocs, mut lats) = run(
        |t, r, c, e| {
            t.grant(r, c, e);
        },
        |t, now| t.prune(now),
        &mut reference,
    );
    (slab_stats, op_stats(&mut lats, ops, allocs))
}

fn row(op: &str, (slab, reference): (OpStats, OpStats)) -> OpRow {
    let speedup = slab.ops_per_sec / reference.ops_per_sec;
    OpRow {
        op: op.to_string(),
        slab,
        reference,
        speedup,
    }
}

fn fmt_allocs(a: Option<f64>) -> String {
    a.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into())
}

fn measure() -> TableBench {
    eprintln!(
        "table_bench: {RESOURCES} resources x {CLIENTS} clients ({PAIRS} records), {ROUNDS} warm + {ROUNDS} measured rounds{}",
        if allocations().is_some() { ", counting allocations" } else { "" }
    );
    TableBench {
        schema: "lease-bench/BENCH_table/v1".to_string(),
        rows: vec![
            row("grant", bench_grant()),
            row("renewal", bench_renewal()),
            row("holders", bench_holders()),
            row("prune", bench_prune()),
        ],
    }
}

fn print_report(b: &TableBench) {
    let rows: Vec<Vec<String>> = b
        .rows
        .iter()
        .map(|r| {
            vec![
                r.op.clone(),
                format!("{:.2}M", r.slab.ops_per_sec / 1e6),
                format!("{:.2}M", r.reference.ops_per_sec / 1e6),
                format!("{:.2}x", r.speedup),
                format!("{}", r.slab.p50_ns),
                format!("{}", r.reference.p50_ns),
                fmt_allocs(r.slab.allocs_per_op),
                fmt_allocs(r.reference.allocs_per_op),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &[
                "op",
                "slab ops/s",
                "ref ops/s",
                "speedup",
                "slab p50ns",
                "ref p50ns",
                "slab allocs/op",
                "ref allocs/op",
            ],
            &rows,
        )
    );
    // Keep the latency tails visible without widening the main table.
    for r in &b.rows {
        println!(
            "  {:<8} slab p95/p99 {}/{} ns   ref p95/p99 {}/{} ns",
            r.op, r.slab.p95_ns, r.slab.p99_ns, r.reference.p95_ns, r.reference.p99_ns
        );
    }
}

/// Gate: the machine-normalized speedup for `grant` and `renewal` must be
/// within 25% of the checked-in baseline (raw ops/s is machine-dependent;
/// the within-process ratio is not).
fn check(fresh: &TableBench, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: TableBench =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {baseline_path}: {e:?}"))?;
    let mut failures = Vec::new();
    for op in ["grant", "renewal"] {
        let f = fresh.rows.iter().find(|r| r.op == op);
        let b = baseline.rows.iter().find(|r| r.op == op);
        match (f, b) {
            (Some(f), Some(b)) => {
                let floor = b.speedup * 0.75;
                println!(
                    "check {op}: fresh speedup {:.2}x vs baseline {:.2}x (floor {:.2}x)",
                    f.speedup, b.speedup, floor
                );
                if f.speedup < floor {
                    failures.push(format!(
                        "{op}: speedup {:.2}x regressed >25% below baseline {:.2}x",
                        f.speedup, b.speedup
                    ));
                }
            }
            _ => failures.push(format!("{op}: row missing from fresh run or baseline")),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_table.json".to_string();
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 2;
            }
            "--check" if i + 1 < args.len() => {
                check_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "table_bench: slab vs reference lease-table microbench\n\
                     \n\
                       --out PATH     write BENCH_table.json here (default ./BENCH_table.json)\n\
                       --check PATH   compare against a baseline instead of writing;\n\
                                      exit 1 if grant/renewal speedup regressed >25%\n\
                     \n\
                     Build with --features alloc-count to include allocs-per-op."
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let fresh = measure();
    print_report(&fresh);

    match check_path {
        Some(path) => {
            if let Err(first) = check(&fresh, &path) {
                // One retry before failing: even best-round ratios can be
                // depressed when the whole measurement window lands on a
                // scheduler storm (single shared core). A real regression
                // fails both attempts.
                eprintln!("table_bench --check below floor ({first}); re-measuring once");
                let again = measure();
                print_report(&again);
                if let Err(e) = check(&again, &path) {
                    eprintln!("table_bench --check FAILED: {e}");
                    std::process::exit(1);
                }
            }
            println!("table_bench --check OK");
        }
        None => match serde_json::to_string_pretty(&fresh) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&out, s + "\n") {
                    eprintln!("cannot write {out}: {e}");
                    std::process::exit(1);
                }
                println!("wrote {out}");
            }
            Err(e) => {
                eprintln!("cannot serialize results: {e:?}");
                std::process::exit(1);
            }
        },
    }
}
