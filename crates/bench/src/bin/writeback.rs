//! Extension experiment: write-through leases (the paper's system) vs
//! non-write-through tokens (its noted extension; MFS/Echo, §2/§6).
//!
//! The paper chose write-through because it "gives clean failure
//! semantics" and argued the cost "can be largely eliminated by giving
//! special handling to temporary files". This experiment quantifies the
//! other side of the trade: what write buffering saves as the write rate
//! grows, and what a crash then costs.

use lease_bench::{save_json, table};
use lease_clock::{Dur, Time};
use lease_faults::check_history;
use lease_vsys::{run_trace, CrashEvent, HistoryEvent, NodeSel, SystemConfig, TermSpec};
use lease_wb::{run_wb_with_history, WbConfig};
use lease_workload::PoissonWorkload;
use serde::Serialize;

#[derive(Serialize)]
struct WbRow {
    write_rate: f64,
    wt_server_msgs: u64,
    wb_server_msgs: u64,
    wt_write_delay_ms: f64,
    wb_write_delay_ms: f64,
}

fn main() {
    println!("Write-through leases vs write-back tokens (1 client, R = 0.2/s)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in [0.1f64, 0.5, 2.0, 8.0] {
        let trace = PoissonWorkload {
            n: 1,
            r: 0.2,
            w,
            s: 1,
            duration: Dur::from_secs(300),
            seed: 17,
        }
        .generate();
        let wt = run_trace(
            &SystemConfig {
                term: TermSpec::Fixed(Dur::from_secs(10)),
                warmup: Dur::from_secs(30),
                ..SystemConfig::default()
            },
            &trace,
        );
        let (wb, h) = run_wb_with_history(
            &WbConfig {
                warmup: Dur::from_secs(30),
                flush_interval: Dur::from_secs(5),
                ..WbConfig::default()
            },
            &trace,
        );
        check_history(&h.borrow()).expect("consistent");
        let row = WbRow {
            write_rate: w,
            wt_server_msgs: wt.consistency_msgs + wt.data_msgs,
            wb_server_msgs: wb.consistency_msgs + wb.data_msgs,
            wt_write_delay_ms: wt.write_delay.mean * 1e3,
            wb_write_delay_ms: wb.write_delay.mean * 1e3,
        };
        rows.push(vec![
            format!("{w:.1}"),
            row.wt_server_msgs.to_string(),
            row.wb_server_msgs.to_string(),
            format!("{:.3}", row.wt_write_delay_ms),
            format!("{:.4}", row.wb_write_delay_ms),
        ]);
        json.push(row);
    }
    println!(
        "{}",
        table(
            &[
                "W (writes/s)",
                "WT msgs",
                "WB msgs",
                "WT write delay ms",
                "WB write delay ms"
            ],
            &rows
        )
    );
    println!("(tokens buffer writes locally: zero write latency and collapsed traffic,");
    println!(" increasingly so as the write rate grows)\n");

    // The cost side: a crash loses the buffered tail.
    println!("The price of buffering: a client crash mid-stream\n");
    // A sole writer (no recalls force early flushes), crashing mid-run.
    let trace = PoissonWorkload {
        n: 1,
        r: 0.2,
        w: 1.0,
        s: 1,
        duration: Dur::from_secs(200),
        seed: 23,
    }
    .generate();
    let crash = CrashEvent {
        at: Time::from_secs(100),
        node: NodeSel::Client(0),
        recover_at: Some(Time::from_secs(110)),
    };
    let mut rows = Vec::new();
    for flush_s in [1u64, 5, 30] {
        let (_, h) = run_wb_with_history(
            &WbConfig {
                // A long token so only the background flush bounds the
                // loss window.
                term: Dur::from_secs(120),
                flush_interval: Dur::from_secs(flush_s),
                crashes: vec![crash],
                seed: 23,
                ..WbConfig::default()
            },
            &trace,
        );
        let hist = h.borrow();
        check_history(&hist).expect("lost writes, never inconsistency");
        // Count distinct versions destroyed (a commit is lost if some
        // discard covers it: committed before the discard, above its
        // durable floor).
        let discards: Vec<(
            u64,
            lease_core::Version,
            lease_core::Version,
            lease_clock::Time,
        )> = hist
            .events
            .iter()
            .filter_map(|e| match e {
                HistoryEvent::Discard {
                    resource,
                    last_durable,
                    last_lost,
                    at,
                } => Some((*resource, *last_durable, *last_lost, *at)),
                _ => None,
            })
            .collect();
        let mut lost = 0u64;
        for e in &hist.events {
            if let HistoryEvent::Commit {
                resource,
                version,
                at,
                ..
            } = e
            {
                if discards.iter().any(|(r, last, lost_hi, d_at)| {
                    r == resource && *version > *last && *version <= *lost_hi && *at < *d_at
                }) {
                    lost += 1;
                }
            }
        }
        rows.push(vec![format!("{flush_s}"), lost.to_string(), "yes".into()]);
    }
    println!(
        "{}",
        table(
            &[
                "flush interval (s)",
                "writes lost in crash",
                "single-copy held"
            ],
            &rows
        )
    );
    println!("(write-through loses nothing, ever — the paper's §2 argument; shorter");
    println!(" flush intervals shrink the write-back loss window at more traffic)");
    save_json("writeback", &json);
}
