#![warn(missing_docs)]

//! Shared utilities for the experiment regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) and prints the same rows/series the
//! paper reports, optionally persisting machine-readable results under
//! `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

use lease_clock::Dur;
use lease_vsys::{run_trace, RunReport, SystemConfig, TermSpec};
use lease_workload::Trace;

mod alloc_count;
pub mod sweep;

pub use alloc_count::allocations;

/// Throughput and latency summary for one benchmarked operation, the row
/// format of the machine-readable `BENCH_*.json` perf-trajectory files.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OpStats {
    /// Sustained operations per second over the measured window.
    pub ops_per_sec: f64,
    /// Median per-operation latency in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile per-operation latency in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile per-operation latency in nanoseconds.
    pub p99_ns: u64,
    /// Heap allocations per operation, `None` when the binary was built
    /// without the `alloc-count` feature (not measured ≠ zero).
    pub allocs_per_op: Option<f64>,
}

/// The value at quantile `p` (0.0–1.0) of an ascending-sorted slice;
/// zero when empty.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Summarizes a set of per-op latency samples plus an independently
/// measured throughput and allocation rate into an [`OpStats`] row.
pub fn op_stats(latencies_ns: &mut [u64], ops_per_sec: f64, allocs_per_op: Option<f64>) -> OpStats {
    latencies_ns.sort_unstable();
    OpStats {
        ops_per_sec,
        p50_ns: percentile(latencies_ns, 0.50),
        p95_ns: percentile(latencies_ns, 0.95),
        p99_ns: percentile(latencies_ns, 0.99),
        allocs_per_op,
    }
}

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// let t = lease_bench::table(
///     &["term", "load"],
///     &[vec!["0".into(), "1.00".into()], vec!["10".into(), "0.10".into()]],
/// );
/// assert!(t.contains("term"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// A tiny ASCII rendition of a decreasing curve, for terminal output.
pub fn spark(values: &[f64]) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = ((v - min) / span * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// The directory experiment outputs are written to (`results/` beside the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("LEASE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Persists a serializable result as pretty JSON under [`results_dir`].
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Runs the simulated system at a fixed term over `trace` with standard
/// experiment settings (60 s warmup, batched extensions).
pub fn run_at_term(trace: &Trace, term: Dur, seed: u64) -> RunReport {
    run_at_term_with(trace, term, seed, lease_sim::QueueKind::default())
}

/// [`run_at_term`] with an explicit event-queue backend, for the
/// wheel-vs-heap benchmark comparisons.
pub fn run_at_term_with(
    trace: &Trace,
    term: Dur,
    seed: u64,
    queue: lease_sim::QueueKind,
) -> RunReport {
    let cfg = SystemConfig {
        term: TermSpec::Fixed(term),
        warmup: Dur::from_secs(60),
        seed,
        queue,
        ..SystemConfig::default()
    };
    run_trace(&cfg, trace)
}

/// One cell of a simulation sweep: the headline results of running the
/// trace at `(seed, term)`. The fields are exactly what the figure
/// binaries and the determinism tests consume; equality of two rows means
/// the two runs were observationally identical.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimSweepRow {
    /// RNG seed of the run.
    pub seed: u64,
    /// Lease term, seconds.
    pub term_s: f64,
    /// Consistency messages at the server (the Figure 1–3 y-axis input).
    pub consistency_msgs: u64,
    /// Cache hits.
    pub hits: u64,
    /// Reads that contacted the server.
    pub remote_reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Mean added delay per operation, milliseconds.
    pub mean_delay_ms: f64,
    /// Simulator events processed.
    pub sim_events: u64,
}

/// Runs the full `seeds × terms` grid of simulations over `trace` on up
/// to `threads` workers (see [`sweep::run`]) and returns one row per
/// cell, in grid order (seed-major). Each cell is a self-contained
/// deterministic simulation, so the output is identical for any thread
/// count.
pub fn run_sim_sweep(
    trace: &Trace,
    seeds: &[u64],
    terms: &[f64],
    threads: usize,
) -> Vec<SimSweepRow> {
    let tasks: Vec<(u64, f64)> = seeds
        .iter()
        .flat_map(|&s| terms.iter().map(move |&t| (s, t)))
        .collect();
    sweep::run(threads, &tasks, |_, &(seed, term_s)| {
        let r = run_at_term(trace, Dur::from_secs_f64(term_s), seed);
        SimSweepRow {
            seed,
            term_s,
            consistency_msgs: r.consistency_msgs,
            hits: r.hits,
            remote_reads: r.remote_reads,
            writes: r.writes,
            mean_delay_ms: r.mean_delay_ms(),
            sim_events: r.sim_events,
        }
    })
}

/// A stable digest of a sweep's rows (via [`lease_core::fx_hash`] over
/// the serialized JSON), used to assert byte-identical outputs across
/// thread counts without checking in the whole row set.
pub fn sweep_digest(rows: &[SimSweepRow]) -> String {
    let json = serde_json::to_string(rows).unwrap_or_default();
    format!("{:016x}", lease_core::fx_hash(&json))
}

/// The standard term grid used by the figures (seconds).
pub fn figure_terms() -> Vec<f64> {
    let mut v = vec![
        0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 25.0, 30.0,
    ];
    v.dedup();
    v
}

/// Formats a float with three significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn spark_renders_monotone() {
        let s = spark(&[1.0, 0.5, 0.25, 0.1]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('█'));
        assert!(s.ends_with('▁'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.271), "27.1%");
    }

    #[test]
    fn percentile_picks_expected_ranks() {
        let v = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 0.5), 60);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn op_stats_round_trips_through_json() {
        let mut lats = vec![5, 1, 3, 2, 4];
        let s = op_stats(&mut lats, 1000.0, Some(0.5));
        assert_eq!(s.p50_ns, 3);
        let json = serde_json::to_string(&s).unwrap();
        let back: OpStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.p99_ns, s.p99_ns);
        assert_eq!(back.allocs_per_op, Some(0.5));
    }

    #[test]
    fn figure_terms_start_at_zero() {
        let t = figure_terms();
        assert_eq!(t[0], 0.0);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }
}
