#![warn(missing_docs)]

//! Shared utilities for the experiment regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) and prints the same rows/series the
//! paper reports, optionally persisting machine-readable results under
//! `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

use lease_clock::Dur;
use lease_vsys::{run_trace, RunReport, SystemConfig, TermSpec};
use lease_workload::Trace;

/// Renders an aligned text table.
///
/// # Examples
///
/// ```
/// let t = lease_bench::table(
///     &["term", "load"],
///     &[vec!["0".into(), "1.00".into()], vec!["10".into(), "0.10".into()]],
/// );
/// assert!(t.contains("term"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// A tiny ASCII rendition of a decreasing curve, for terminal output.
pub fn spark(values: &[f64]) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = ((v - min) / span * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// The directory experiment outputs are written to (`results/` beside the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("LEASE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Persists a serializable result as pretty JSON under [`results_dir`].
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Runs the simulated system at a fixed term over `trace` with standard
/// experiment settings (60 s warmup, batched extensions).
pub fn run_at_term(trace: &Trace, term: Dur, seed: u64) -> RunReport {
    let cfg = SystemConfig {
        term: TermSpec::Fixed(term),
        warmup: Dur::from_secs(60),
        seed,
        ..SystemConfig::default()
    };
    run_trace(&cfg, trace)
}

/// The standard term grid used by the figures (seconds).
pub fn figure_terms() -> Vec<f64> {
    let mut v = vec![
        0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 25.0, 30.0,
    ];
    v.dedup();
    v
}

/// Formats a float with three significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn spark_renders_monotone() {
        let s = spark(&[1.0, 0.5, 0.25, 0.1]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('█'));
        assert!(s.ends_with('▁'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.271), "27.1%");
    }

    #[test]
    fn figure_terms_start_at_zero() {
        let t = figure_terms();
        assert_eq!(t[0], 0.0);
        assert!(t.windows(2).all(|w| w[1] > w[0]));
    }
}
