//! Property tests for time arithmetic and clock models.

use lease_clock::{ClockFailure, ClockModel, Dur, Time};
use proptest::prelude::*;

proptest! {
    /// Adding then subtracting a duration is the identity when no
    /// saturation occurs.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let time = Time(t);
        let dur = Dur(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur) - time, dur);
    }

    /// `saturating_since` never panics and agrees with `since` when ordered.
    #[test]
    fn saturating_since_consistent(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (Time(a), Time(b));
        let d = tb.saturating_since(ta);
        if b >= a {
            prop_assert_eq!(d, tb.since(ta));
        } else {
            prop_assert_eq!(d, Dur::ZERO);
        }
    }

    /// Local clock readings are monotone for sane models.
    #[test]
    fn sane_clock_is_monotone(
        offset in -1_000_000_000i64..1_000_000_000,
        drift in -500_000.0f64..500_000.0,
        fail_at in 1u64..100,
        step in 0i64..1_000_000_000,
        new_drift in -500_000.0f64..500_000.0,
        samples in proptest::collection::vec(0u64..200_000_000_000, 1..64),
    ) {
        let model = ClockModel::new(offset, drift).with_failure(ClockFailure {
            at: Time::from_secs(fail_at),
            step_nanos: step,
            new_drift_ppm: new_drift,
        });
        prop_assume!(model.is_sane());
        let mut sorted = samples;
        sorted.sort_unstable();
        let mut last = None;
        for s in sorted {
            let local = model.local(Time(s));
            if let Some(prev) = last {
                prop_assert!(local >= prev, "clock went backwards: {:?} -> {:?}", prev, local);
            }
            last = Some(local);
        }
    }

    /// Drift error grows linearly: error at 2t is at least error at t for
    /// failure-free models.
    #[test]
    fn drift_error_monotone(drift in -100_000.0f64..100_000.0, t in 1u64..1_000_000) {
        let model = ClockModel::drifting(drift);
        let e1 = model.error_at(Time::from_micros(t));
        let e2 = model.error_at(Time::from_micros(2 * t));
        prop_assert!(e2 >= e1);
    }

    /// Dur float conversion roundtrips to within a nanosecond per second.
    #[test]
    fn dur_f64_roundtrip(ns in 0u64..1_000_000_000_000) {
        let d = Dur(ns);
        let back = Dur::from_secs_f64(d.as_secs_f64());
        let err = back.as_nanos().abs_diff(ns);
        prop_assert!(err <= 1 + ns / 1_000_000_000);
    }
}
