//! Per-host clock models mapping true time to local clock readings.
//!
//! Section 5 of the paper analyses exactly which clock misbehaviours matter:
//!
//! * a **fast server clock** may let the server regard a lease as expired
//!   while the client still trusts it — writes can then proceed too early and
//!   consistency is lost;
//! * a **slow client clock** lets the client keep using a lease the server
//!   regards as expired — the same hazard from the other side;
//! * the dual failures (slow server, fast client) are harmless: they only
//!   generate extra extension traffic.
//!
//! [`ClockModel`] expresses a host clock as `local(t) = t + offset +
//! drift_ppm * (t - start)`, plus optional step failures, so experiments can
//! inject each of these cases and let the consistency oracle observe the
//! consequences.

use serde::{Deserialize, Serialize};

use crate::time::Time;

/// A discrete clock fault injected at a point in true time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockFailure {
    /// True time at which the failure takes effect.
    pub at: Time,
    /// Step adjustment applied to the local clock, in nanoseconds.
    pub step_nanos: i64,
    /// New drift rate from this point on, in parts per million.
    pub new_drift_ppm: f64,
}

/// A deterministic mapping from true (global simulation) time to a host's
/// local clock reading.
///
/// The model is piecewise linear: a base offset and drift rate, modified by
/// an ordered list of [`ClockFailure`] steps. Drift is expressed in parts
/// per million of elapsed true time, so `drift_ppm = 100.0` means the clock
/// gains 100 µs per second of true time.
///
/// # Examples
///
/// ```
/// use lease_clock::{ClockModel, Time};
///
/// let perfect = ClockModel::perfect();
/// assert_eq!(perfect.local(Time::from_secs(3)), Time::from_secs(3));
///
/// let fast = ClockModel::new(0, 1_000_000.0); // 2x speed: +1s per second
/// assert_eq!(fast.local(Time::from_secs(1)), Time::from_secs(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockModel {
    /// Base offset from true time at the epoch, in nanoseconds.
    pub offset_nanos: i64,
    /// Base drift rate, in parts per million of elapsed true time.
    pub drift_ppm: f64,
    /// Step failures, ordered by `at`.
    pub failures: Vec<ClockFailure>,
}

impl ClockModel {
    /// A perfect clock: local time equals true time.
    pub fn perfect() -> ClockModel {
        ClockModel::new(0, 0.0)
    }

    /// A clock with fixed skew (nanoseconds) and drift (ppm), no failures.
    pub fn new(offset_nanos: i64, drift_ppm: f64) -> ClockModel {
        ClockModel {
            offset_nanos,
            drift_ppm,
            failures: Vec::new(),
        }
    }

    /// A clock that is `skew_nanos` ahead (positive) or behind (negative).
    pub fn skewed(skew_nanos: i64) -> ClockModel {
        ClockModel::new(skew_nanos, 0.0)
    }

    /// A clock drifting at `ppm` parts per million (positive runs fast).
    pub fn drifting(ppm: f64) -> ClockModel {
        ClockModel::new(0, ppm)
    }

    /// Adds a step failure; failures must be added in increasing `at` order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes an already-registered failure.
    pub fn with_failure(mut self, failure: ClockFailure) -> ClockModel {
        if let Some(last) = self.failures.last() {
            assert!(failure.at >= last.at, "clock failures must be time-ordered");
        }
        self.failures.push(failure);
        self
    }

    /// Local clock reading at true time `t`.
    ///
    /// The mapping is monotone non-decreasing in `t` provided all drift
    /// rates exceed -1 000 000 ppm (a clock cannot run backwards, only
    /// slowly), which [`ClockModel::is_sane`] checks.
    pub fn local(&self, t: Time) -> Time {
        let mut seg_start = Time::ZERO;
        let mut offset = self.offset_nanos;
        let mut drift = self.drift_ppm;
        for f in &self.failures {
            if f.at > t {
                break;
            }
            offset += drift_nanos(drift, f.at.saturating_since(seg_start).as_nanos());
            offset += f.step_nanos;
            drift = f.new_drift_ppm;
            seg_start = f.at;
        }
        let elapsed = t.saturating_since(seg_start).as_nanos();
        t.offset(offset.saturating_add(drift_nanos(drift, elapsed)))
    }

    /// The clock's instantaneous rate (d local / d true) at true time `t`.
    pub fn rate_at(&self, t: Time) -> f64 {
        let mut drift = self.drift_ppm;
        for f in &self.failures {
            if f.at > t {
                break;
            }
            drift = f.new_drift_ppm;
        }
        1.0 + drift / 1e6
    }

    /// The true instant at which this clock will have advanced by
    /// `local_dur` beyond its reading at `true_now`, assuming the current
    /// segment's rate persists (harnesses use this to arm timers that the
    /// protocol specified in local time).
    pub fn true_after(&self, true_now: Time, local_dur: crate::time::Dur) -> Time {
        if local_dur.is_infinite() {
            return Time::MAX;
        }
        let rate = self.rate_at(true_now).max(1e-9);
        true_now + crate::time::Dur::from_secs_f64(local_dur.as_secs_f64() / rate)
    }

    /// The true instant at which this clock read `local_dur` *less* than
    /// its reading at `true_now` — the inverse of [`ClockModel::true_after`],
    /// assuming the current segment's rate held over the interval.
    ///
    /// Harnesses use this to backdate events a thread only *notices* after
    /// the fact: if a local deadline was overshot by `local_dur` on this
    /// clock, the deadline was actually crossed at
    /// `true_before(true_now, local_dur)` in true time. On a fast clock
    /// (rate > 1) the true interval is *shorter* than the local one, so the
    /// backdated instant stays conservative for expiry accounting.
    pub fn true_before(&self, true_now: Time, local_dur: crate::time::Dur) -> Time {
        if local_dur.is_infinite() {
            return Time::ZERO;
        }
        let rate = self.rate_at(true_now).max(1e-9);
        true_now - crate::time::Dur::from_secs_f64(local_dur.as_secs_f64() / rate)
    }

    /// Absolute error `|local(t) - t|` at true time `t`, in nanoseconds.
    pub fn error_at(&self, t: Time) -> u64 {
        let local = self.local(t);
        local.as_nanos().abs_diff(t.as_nanos())
    }

    /// Whether every segment keeps the clock monotone (drift > -10^6 ppm)
    /// and steps never move it backwards.
    pub fn is_sane(&self) -> bool {
        let drifts =
            std::iter::once(self.drift_ppm).chain(self.failures.iter().map(|f| f.new_drift_ppm));
        drifts.into_iter().all(|d| d > -1_000_000.0) && self.check_monotone_steps()
    }

    fn check_monotone_steps(&self) -> bool {
        // A negative step is allowed by the type but makes the local clock
        // jump backwards, which real clock disciplines avoid; flag it.
        self.failures.iter().all(|f| f.step_nanos >= 0)
    }
}

impl Default for ClockModel {
    fn default() -> ClockModel {
        ClockModel::perfect()
    }
}

fn drift_nanos(ppm: f64, elapsed_nanos: u64) -> i64 {
    let v = ppm / 1e6 * elapsed_nanos as f64;
    if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn perfect_clock_is_identity() {
        let c = ClockModel::perfect();
        for s in [0u64, 1, 60, 3600] {
            assert_eq!(c.local(Time::from_secs(s)), Time::from_secs(s));
        }
        assert!(c.is_sane());
    }

    #[test]
    fn fixed_skew() {
        let ahead = ClockModel::skewed(Dur::from_millis(5).as_signed());
        assert_eq!(
            ahead.local(Time::from_secs(1)),
            Time::from_secs(1) + Dur::from_millis(5)
        );
        let behind = ClockModel::skewed(-Dur::from_millis(5).as_signed());
        assert_eq!(
            behind.local(Time::from_secs(1)),
            Time::from_secs(1) - Dur::from_millis(5)
        );
    }

    #[test]
    fn drift_accumulates() {
        // 1000 ppm fast: gains 1 ms per second.
        let c = ClockModel::drifting(1000.0);
        assert_eq!(
            c.local(Time::from_secs(10)),
            Time::from_secs(10) + Dur::from_millis(10)
        );
        assert_eq!(
            c.error_at(Time::from_secs(10)),
            Dur::from_millis(10).as_nanos()
        );
    }

    #[test]
    fn slow_drift() {
        let c = ClockModel::drifting(-1000.0);
        assert_eq!(
            c.local(Time::from_secs(10)),
            Time::from_secs(10) - Dur::from_millis(10)
        );
    }

    #[test]
    fn step_failure_applies_after_at() {
        let c = ClockModel::perfect().with_failure(ClockFailure {
            at: Time::from_secs(5),
            step_nanos: Dur::from_secs(2).as_signed(),
            new_drift_ppm: 0.0,
        });
        assert_eq!(c.local(Time::from_secs(4)), Time::from_secs(4));
        assert_eq!(c.local(Time::from_secs(6)), Time::from_secs(8));
    }

    #[test]
    fn failure_changes_drift() {
        let c = ClockModel::perfect().with_failure(ClockFailure {
            at: Time::from_secs(10),
            step_nanos: 0,
            new_drift_ppm: 1_000_000.0, // runs 2x fast afterwards
        });
        assert_eq!(c.local(Time::from_secs(10)), Time::from_secs(10));
        assert_eq!(c.local(Time::from_secs(12)), Time::from_secs(14));
    }

    #[test]
    fn drift_before_failure_is_preserved() {
        // Fast 1000 ppm for 10 s (+10 ms), then perfect.
        let c = ClockModel::drifting(1000.0).with_failure(ClockFailure {
            at: Time::from_secs(10),
            step_nanos: 0,
            new_drift_ppm: 0.0,
        });
        let expected = Time::from_secs(20) + Dur::from_millis(10);
        assert_eq!(c.local(Time::from_secs(20)), expected);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn failures_must_be_ordered() {
        let f1 = ClockFailure {
            at: Time::from_secs(5),
            step_nanos: 0,
            new_drift_ppm: 0.0,
        };
        let f2 = ClockFailure {
            at: Time::from_secs(1),
            step_nanos: 0,
            new_drift_ppm: 0.0,
        };
        let _ = ClockModel::perfect().with_failure(f1).with_failure(f2);
    }

    #[test]
    fn rate_reflects_active_segment() {
        let c = ClockModel::drifting(1_000_000.0).with_failure(ClockFailure {
            at: Time::from_secs(10),
            step_nanos: 0,
            new_drift_ppm: 0.0,
        });
        assert_eq!(c.rate_at(Time::from_secs(5)), 2.0);
        assert_eq!(c.rate_at(Time::from_secs(15)), 1.0);
    }

    #[test]
    fn true_after_divides_by_rate() {
        // A 2x-fast clock reaches +10 s local after +5 s true.
        let fast = ClockModel::drifting(1_000_000.0);
        let t = fast.true_after(Time::from_secs(100), Dur::from_secs(10));
        assert_eq!(t, Time::from_secs(105));
        let perfect = ClockModel::perfect();
        assert_eq!(
            perfect.true_after(Time::from_secs(1), Dur::from_secs(3)),
            Time::from_secs(4)
        );
        assert_eq!(perfect.true_after(Time::ZERO, Dur::MAX), Time::MAX);
    }

    #[test]
    fn true_before_inverts_true_after() {
        // A 2x-fast clock overshot a local deadline by 10 s: the deadline
        // was crossed 5 s of true time ago.
        let fast = ClockModel::drifting(1_000_000.0);
        let t = fast.true_before(Time::from_secs(100), Dur::from_secs(10));
        assert_eq!(t, Time::from_secs(95));
        // Round trip with true_after on a homogeneous segment.
        let slow = ClockModel::drifting(-500_000.0);
        let fwd = slow.true_after(Time::from_secs(50), Dur::from_secs(4));
        assert_eq!(
            slow.true_before(fwd, Dur::from_secs(4)),
            Time::from_secs(50)
        );
        // Saturates at the epoch and treats infinite spans as "forever ago".
        let perfect = ClockModel::perfect();
        assert_eq!(
            perfect.true_before(Time::from_secs(1), Dur::from_secs(9)),
            Time::ZERO
        );
        assert_eq!(
            perfect.true_before(Time::from_secs(1), Dur::MAX),
            Time::ZERO
        );
    }

    #[test]
    fn sanity_flags_backward_steps() {
        let c = ClockModel::perfect().with_failure(ClockFailure {
            at: Time::from_secs(1),
            step_nanos: -5,
            new_drift_ppm: 0.0,
        });
        assert!(!c.is_sane());
    }
}
