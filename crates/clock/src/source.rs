//! Clock sources: where protocol code gets "now" from.
//!
//! The lease state machines in `lease-core` are sans-IO and receive `now` as
//! an explicit argument, so most code never touches a [`Clock`] directly.
//! The trait exists for the edges: the real-time runtime (`lease-rt`) reads
//! a [`WallClock`], tests drive a [`ManualClock`], and harnesses can wrap
//! either in a [`ClockModel`](crate::ClockModel) to inject skew.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::time::Time;

/// A source of the current local time.
pub trait Clock: Send + Sync {
    /// The current reading of this clock.
    fn now(&self) -> Time;
}

/// A wall clock: nanoseconds since this clock was created.
///
/// Backed by [`std::time::Instant`], so it is monotone.
///
/// # Examples
///
/// ```
/// use lease_clock::{Clock, WallClock};
///
/// let c = WallClock::new();
/// let a = c.now();
/// let b = c.now();
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is now.
    pub fn new() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Time {
        Time(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// A system clock anchored at a caller-chosen unix-nanosecond epoch —
/// the one clock whose readings are comparable **across processes** on
/// the same host.
///
/// [`WallClock`]'s epoch is process start, so two processes' readings
/// share no origin. For the multi-process chaos harness the parent picks
/// one epoch (its own `SystemTime::now()` as unix nanos), passes it to
/// every child on the command line, and all processes then report
/// events — commits, reads — on the same true-time axis for the oracle.
///
/// Backed by [`std::time::SystemTime`], so it is *not* guaranteed
/// monotone under NTP steps; on the bench/CI hosts this drives (seconds
/// of runtime, no clock daemon churn) that is acceptable for an oracle
/// time axis, and protocol code keeps using monotone clocks.
#[derive(Debug, Clone, Copy)]
pub struct SysClock {
    epoch_unix_ns: u64,
}

impl SysClock {
    /// A clock reading nanoseconds since the unix-epoch instant
    /// `epoch_unix_ns` (saturating at zero for readings before it).
    pub fn new(epoch_unix_ns: u64) -> SysClock {
        SysClock { epoch_unix_ns }
    }

    /// The current unix time in nanoseconds — what a parent process
    /// passes to [`SysClock::new`] in each child to share an epoch.
    pub fn unix_now_ns() -> u64 {
        u64::try_from(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("system clock before unix epoch")
                .as_nanos(),
        )
        .unwrap_or(u64::MAX)
    }
}

impl Clock for SysClock {
    fn now(&self) -> Time {
        Time(Self::unix_now_ns().saturating_sub(self.epoch_unix_ns))
    }
}

/// A hand-advanced clock for unit tests.
///
/// Cloning shares the underlying time cell, so a test can hold one handle
/// while the code under test holds another.
///
/// # Examples
///
/// ```
/// use lease_clock::{Clock, Dur, ManualClock, Time};
///
/// let c = ManualClock::new(Time::ZERO);
/// let held = c.clone();
/// c.advance(Dur::from_secs(5));
/// assert_eq!(held.now(), Time::from_secs(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a manual clock reading `start`.
    pub fn new(start: Time) -> ManualClock {
        ManualClock {
            nanos: Arc::new(AtomicU64::new(start.as_nanos())),
        }
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: crate::time::Dur) {
        self.nanos.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading.
    ///
    /// Allows moving backwards; tests use this to model faulty clocks.
    pub fn set(&self, t: Time) {
        self.nanos.store(t.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Time {
        Time(self.nanos.load(Ordering::SeqCst))
    }
}

/// A clock viewed through a [`ClockModel`](crate::ClockModel): the inner
/// clock supplies *true* time, the model maps it to the host's (possibly
/// skewed, drifting, or stepping) local reading.
///
/// This is how the §5 clock-failure modes are injected into real-time
/// deployments: give one host a `ModelClock` over the shared wall clock
/// and its protocol code experiences a fast or slow clock while every
/// observer (and the consistency oracle) keeps the true timeline.
///
/// # Examples
///
/// ```
/// use lease_clock::{Clock, ClockModel, ManualClock, ModelClock, Time};
///
/// let truth = ManualClock::new(Time::from_secs(10));
/// let fast = ModelClock::new(truth.clone(), ClockModel::drifting(1_000_000.0));
/// assert_eq!(fast.now(), Time::from_secs(20)); // 2x speed
/// ```
#[derive(Debug, Clone)]
pub struct ModelClock<C> {
    inner: C,
    model: crate::ClockModel,
}

impl<C: Clock> ModelClock<C> {
    /// Views `inner` through `model`.
    pub fn new(inner: C, model: crate::ClockModel) -> ModelClock<C> {
        ModelClock { inner, model }
    }

    /// The model applied to the inner clock.
    pub fn model(&self) -> &crate::ClockModel {
        &self.model
    }
}

impl<C: Clock> Clock for ModelClock<C> {
    fn now(&self) -> Time {
        self.model.local(self.inner.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn wall_clock_monotone() {
        let c = WallClock::new();
        let mut last = c.now();
        for _ in 0..100 {
            let t = c.now();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn manual_clock_shared() {
        let c = ManualClock::new(Time::from_secs(1));
        let other = c.clone();
        assert_eq!(other.now(), Time::from_secs(1));
        c.advance(Dur::from_millis(500));
        assert_eq!(other.now(), Time::from_millis(1500));
        other.set(Time::ZERO);
        assert_eq!(c.now(), Time::ZERO);
    }

    #[test]
    fn clock_trait_object() {
        let c: Box<dyn Clock> = Box::new(ManualClock::new(Time::from_secs(7)));
        assert_eq!(c.now(), Time::from_secs(7));
    }
}
