//! Nanosecond-precision instants and durations.
//!
//! The simulator, the protocol state machines, and the real-time runtime all
//! speak these two types. `Time` is an absolute instant (nanoseconds since an
//! arbitrary epoch — simulation start, or process start for wall clocks);
//! `Dur` is a non-negative span. Both are plain `u64` newtypes so they are
//! `Copy`, totally ordered, and hashable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant, in nanoseconds since the epoch.
///
/// The epoch is context-dependent: simulation start in simulated runs,
/// process start in the real-time runtime. Only differences between `Time`
/// values are meaningful across contexts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

/// A non-negative duration, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dur(pub u64);

impl Time {
    /// The epoch itself.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Time {
        Time(secs * 1_000_000_000)
    }

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for the analytic model and plots).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or [`Dur::ZERO`] if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(earlier <= self, "Time::since: {earlier:?} > {self:?}");
        Dur(self.0 - earlier.0)
    }

    /// Adds a signed nanosecond offset, saturating at both ends.
    pub fn offset(self, nanos: i64) -> Time {
        if nanos >= 0 {
            Time(self.0.saturating_add(nanos as u64))
        } else {
            Time(self.0.saturating_sub(nanos.unsigned_abs()))
        }
    }

    /// Adds a duration, saturating at [`Time::MAX`].
    pub fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable duration; used as "infinite term".
    pub const MAX: Dur = Dur(u64::MAX);

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Dur {
        Dur(secs * 1_000_000_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Creates a duration from (possibly fractional) seconds, saturating.
    ///
    /// Negative and NaN inputs map to zero; overly large inputs to [`Dur::MAX`].
    pub fn from_secs_f64(secs: f64) -> Dur {
        if secs.is_nan() || secs <= 0.0 {
            return Dur::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            Dur::MAX
        } else {
            Dur(nanos as u64)
        }
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration as a signed nanosecond offset (for clock skews).
    ///
    /// Saturates at `i64::MAX` for durations beyond ~292 years.
    pub fn as_signed(self) -> i64 {
        i64::try_from(self.0).unwrap_or(i64::MAX)
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this stands for an infinite lease term.
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Difference, saturating at zero.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Sum, saturating at [`Dur::MAX`].
    pub fn saturating_add(self, other: Dur) -> Dur {
        Dur(self.0.saturating_add(other.0))
    }

    /// Scales by a non-negative float, saturating.
    pub fn mul_f64(self, k: f64) -> Dur {
        Dur::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, d: Dur) -> Time {
        Time(self.0.saturating_sub(d.0))
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, other: Time) -> Dur {
        self.since(other)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, other: Dur) -> Dur {
        self.saturating_add(other)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, other: Dur) {
        *self = *self + other;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, other: Dur) -> Dur {
        debug_assert!(other <= self, "Dur subtraction underflow");
        Dur(self.0 - other.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, other: Dur) {
        *self = *self - other;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", Dur(self.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
            let ms = ns / 1_000_000;
            if ms.is_multiple_of(1000) {
                write!(f, "{}s", ms / 1000)
            } else {
                write!(f, "{}.{:03}s", ms / 1000, ms % 1000)
            }
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<std::time::Duration> for Dur {
    fn from(d: std::time::Duration) -> Dur {
        Dur(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl From<Dur> for std::time::Duration {
    fn from(d: Dur) -> std::time::Duration {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1000));
        assert_eq!(Dur::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_secs(5);
        assert_eq!(t + Dur::from_secs(3), Time::from_secs(8));
        assert_eq!(t - Dur::from_secs(5), Time::ZERO);
        assert_eq!(Time::from_secs(8) - t, Dur::from_secs(3));
        assert_eq!(t.saturating_since(Time::from_secs(9)), Dur::ZERO);
    }

    #[test]
    fn signed_offsets() {
        let t = Time::from_secs(10);
        assert_eq!(t.offset(-1_000_000_000), Time::from_secs(9));
        assert_eq!(t.offset(1_000_000_000), Time::from_secs(11));
        assert_eq!(Time::from_secs(1).offset(i64::MIN), Time::ZERO);
    }

    #[test]
    fn dur_float_roundtrip() {
        let d = Dur::from_secs_f64(1.5);
        assert_eq!(d, Dur::from_millis(1500));
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
        assert_eq!(Dur::from_secs_f64(1e30), Dur::MAX);
    }

    #[test]
    fn dur_display_units() {
        assert_eq!(format!("{}", Dur::from_secs(10)), "10s");
        assert_eq!(format!("{}", Dur::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", Dur::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", Dur::from_micros(7)), "7.000us");
        assert_eq!(format!("{}", Dur(42)), "42ns");
        assert_eq!(format!("{}", Dur::MAX), "inf");
    }

    #[test]
    fn saturation() {
        assert_eq!(Time::MAX + Dur::from_secs(1), Time::MAX);
        assert_eq!(Dur::MAX + Dur::from_secs(1), Dur::MAX);
        assert_eq!(Dur::MAX * 2, Dur::MAX);
        assert!(Dur::MAX.is_infinite());
    }

    #[test]
    fn std_duration_conversion() {
        let d: Dur = std::time::Duration::from_millis(250).into();
        assert_eq!(d, Dur::from_millis(250));
        let back: std::time::Duration = d.into();
        assert_eq!(back, std::time::Duration::from_millis(250));
    }
}
