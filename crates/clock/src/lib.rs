#![warn(missing_docs)]

//! Time types and clock models for the leases reproduction.
//!
//! Leases (Gray & Cheriton, SOSP 1989) are a *time-based* mechanism: their
//! correctness rests on every host being able to measure the passage of
//! physical time with bounded error. This crate provides:
//!
//! * [`Time`] and [`Dur`] — nanosecond-precision instants and durations used
//!   uniformly by the simulator, the protocol state machines, and the
//!   real-time runtime.
//! * [`ClockModel`] — a per-host mapping from *true* (simulated global) time
//!   to that host's *local* clock reading, supporting fixed skew, bounded
//!   drift, and the failure modes §5 of the paper analyses (fast server
//!   clocks and slow client clocks, which can break consistency, and their
//!   harmless duals).
//! * [`Clock`] — the minimal clock-source abstraction used where protocol
//!   code needs "now" without caring whether it is simulated or wall time.
//!
//! # Examples
//!
//! ```
//! use lease_clock::{ClockModel, Dur, Time};
//!
//! // A client clock running 100 ppm fast, initially 2 ms ahead.
//! let model = ClockModel::new(Dur::from_millis(2).as_signed(), 100.0);
//! let true_now = Time::from_secs(10);
//! let local = model.local(true_now);
//! assert!(local > true_now);
//! ```

pub mod model;
pub mod source;
pub mod time;

pub use model::{ClockFailure, ClockModel};
pub use source::{Clock, ManualClock, ModelClock, SysClock, WallClock};
pub use time::{Dur, Time};
