#![warn(missing_docs)]

//! The lease protocol's wire format: compact little-endian binary frames.
//!
//! Everything in-process rides typed channels and SPSC rings; this crate
//! is the process boundary. A **frame** is a fixed 16-byte header followed
//! by a batch of N messages, so one socket write (and one read) carries a
//! whole `BatchBuf`-worth of requests or a whole egress-flush-worth of
//! replies — wire syscalls track the measured wakes/op of the ring paths,
//! not the message count.
//!
//! Design rules:
//!
//! * **Fixed little-endian headers, no varints.** Every integer is a
//!   plain LE `u8`/`u16`/`u32`/`u64` at a statically known offset from
//!   the start of its message, so decoding is bounds-checked slicing —
//!   no bit fiddling, no allocation, no copy of payload integers.
//! * **Zero-copy decode.** [`Messages`] iterates a frame *in place* over
//!   the receive buffer. Decoding a `Fetch`/`Write`/`Approve` with a
//!   fixed-size datum (`D = u64`) performs **zero** heap allocations;
//!   variable parts (`also_extend`, grant lists, `Bytes` data) allocate
//!   only when actually present.
//! * **Durations, never remote timestamps.** Deadlines cross the wire as
//!   *remaining microseconds at send time* (the T-Lease rule: a remote
//!   absolute clock reading is meaningless here). The receiver anchors
//!   the remainder to its own clock. Lease terms are already durations
//!   and cross as-is. The one exception is
//!   [`ToClient::InstalledExtend`]'s `sent_at`, whose semantics (§4
//!   multicast, clocks synchronized within ε) inherently require a
//!   shared clock; it round-trips verbatim and the TCP transport simply
//!   never sends it.
//! * **Versioned and refusal-friendly.** Byte 4 of every frame is a
//!   format version; decoders refuse unknown versions, directions, tags,
//!   truncated frames and oversized frames with a typed [`WireError`] —
//!   never a panic, never an over-read (pinned by fuzz/property tests).
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"LEAS"
//!      4     1  format version (currently 1)
//!      5     1  direction: 0 = client→server, 1 = server→client, 2 = hello
//!      6     2  message count (u16 LE)
//!      8     4  payload length in bytes (u32 LE, excludes this header)
//!     12     4  sender ClientId (u32 LE; 0 for server→client frames)
//! ```
//!
//! A **hello** frame (direction 2, count 0, empty payload) opens every
//! client connection and names the client; the server routes replies by
//! it. See `DESIGN.md` §2f for the per-message layouts.

use bytes::Bytes;
use lease_clock::Dur;
use lease_core::{
    ClientId, ErrorReason, Grant, LeaseHandle, ReqId, ToClient, ToServer, Version, WriteId,
};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"LEAS";

/// The wire-format version this crate encodes (header byte 4).
pub const VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a frame's payload; larger frames are refused at the
/// header ([`WireError::Oversized`]) before any buffer is sized by
/// attacker-controlled input.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;

/// Wire encoding of "no deadline" in the 4-byte remaining-micros field.
const NO_DEADLINE: u32 = u32::MAX;

/// A frame's direction (header byte 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client → server: a batch of [`ToServer`] messages.
    C2s,
    /// Server → client: a batch of [`ToClient`] messages.
    S2c,
    /// Connection opener: names the sending client, carries no messages.
    Hello,
}

impl Dir {
    fn to_byte(self) -> u8 {
        match self {
            Dir::C2s => 0,
            Dir::S2c => 1,
            Dir::Hello => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Dir, WireError> {
        match b {
            0 => Ok(Dir::C2s),
            1 => Ok(Dir::S2c),
            2 => Ok(Dir::Hello),
            other => Err(WireError::BadDir(other)),
        }
    }
}

/// Why a buffer failed to decode. Every variant is a clean refusal: the
/// decoder never panics and never reads past the slice it was given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended inside a header, message, or field.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The frame's format version is not [`VERSION`].
    BadVersion(u8),
    /// The direction byte names no known direction.
    BadDir(u8),
    /// A message tag byte names no message in this direction.
    BadTag(u8),
    /// The header declares a payload larger than [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// The payload holds bytes beyond the last declared message.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::BadDir(d) => write!(f, "unknown frame direction {d}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Oversized(n) => write!(f, "frame payload {n} bytes exceeds limit"),
            WireError::TrailingBytes => write!(f, "trailing bytes after last message"),
        }
    }
}

impl std::error::Error for WireError {}

/// A value that can ride the wire as a resource key or datum.
///
/// Implemented for `u64` (fixed 8 bytes, the benchmarks' resource and
/// datum type — decodes with zero allocations) and [`Bytes`]
/// (length-prefixed; decode copies into a fresh `Bytes`, the real-time
/// runtime's cold-path datum).
pub trait WireValue: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the reader.
    fn decode(rd: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl WireValue for u64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn decode(rd: &mut Reader<'_>) -> Result<u64, WireError> {
        rd.u64()
    }
}

impl WireValue for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(self);
    }

    fn decode(rd: &mut Reader<'_>) -> Result<Bytes, WireError> {
        let n = rd.u32()? as usize;
        let raw = rd.take(n)?;
        Ok(Bytes::copy_from_slice(raw))
    }
}

/// A bounds-checked cursor over a received byte slice. All accessors
/// return [`WireError::Truncated`] instead of reading past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes as a slice of the underlying buffer
    /// (the zero-copy primitive every accessor builds on).
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Next byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Next LE u16.
    #[inline]
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Next LE u32.
    #[inline]
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Next LE u64.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// An in-progress frame inside a caller-owned output buffer.
///
/// [`FrameBuilder::begin`] reserves the header, `push_*` appends
/// messages, and [`FrameBuilder::finish`] patches the count and payload
/// length. The buffer is never shrunk or copied, so a steady-state
/// sender reuses one `Vec<u8>` indefinitely (encode is allocation-free
/// once the buffer reaches its high-water mark).
pub struct FrameBuilder {
    start: usize,
    count: u16,
    dir: Dir,
}

impl FrameBuilder {
    /// Reserves a header for a frame of direction `dir` from `from` at
    /// the current end of `out`.
    pub fn begin(out: &mut Vec<u8>, dir: Dir, from: ClientId) -> FrameBuilder {
        let start = out.len();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(dir.to_byte());
        out.extend_from_slice(&0u16.to_le_bytes()); // count, patched later
        out.extend_from_slice(&0u32.to_le_bytes()); // payload len, patched later
        out.extend_from_slice(&from.0.to_le_bytes());
        FrameBuilder {
            start,
            count: 0,
            dir,
        }
    }

    /// Messages pushed so far. A frame holds at most `u16::MAX`; callers
    /// batching more must finish the frame and begin another.
    pub fn count(&self) -> u16 {
        self.count
    }

    /// Appends one client→server message. `deadline_remaining` is the
    /// originating op's time-to-live *as of this send* (the receiver
    /// re-anchors it to its own clock); `None` means no deadline.
    pub fn push_c2s<R: WireValue, D: WireValue>(
        &mut self,
        out: &mut Vec<u8>,
        msg: &ToServer<R, D>,
        deadline_remaining: Option<Dur>,
    ) {
        debug_assert_eq!(self.dir, Dir::C2s, "c2s message in a {:?} frame", self.dir);
        let rem = match deadline_remaining {
            None => NO_DEADLINE,
            Some(d) => {
                let us = d.as_nanos() / 1_000;
                u32::try_from(us)
                    .unwrap_or(NO_DEADLINE - 1)
                    .min(NO_DEADLINE - 1)
            }
        };
        match msg {
            ToServer::Fetch {
                req,
                resource,
                cached,
                also_extend,
            } => {
                out.push(0);
                out.extend_from_slice(&rem.to_le_bytes());
                out.extend_from_slice(&req.0.to_le_bytes());
                resource.encode(out);
                match cached {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.0.to_le_bytes());
                    }
                }
                out.extend_from_slice(&(also_extend.len() as u32).to_le_bytes());
                for (r, v, h) in also_extend {
                    r.encode(out);
                    out.extend_from_slice(&v.0.to_le_bytes());
                    encode_handle(out, *h);
                }
            }
            ToServer::Renew { req, resources } => {
                out.push(1);
                out.extend_from_slice(&rem.to_le_bytes());
                out.extend_from_slice(&req.0.to_le_bytes());
                out.extend_from_slice(&(resources.len() as u32).to_le_bytes());
                for (r, v, h) in resources {
                    r.encode(out);
                    out.extend_from_slice(&v.0.to_le_bytes());
                    encode_handle(out, *h);
                }
            }
            ToServer::Write {
                req,
                resource,
                data,
            } => {
                out.push(2);
                out.extend_from_slice(&rem.to_le_bytes());
                out.extend_from_slice(&req.0.to_le_bytes());
                resource.encode(out);
                data.encode(out);
            }
            ToServer::Approve { write_id } => {
                out.push(3);
                out.extend_from_slice(&rem.to_le_bytes());
                out.extend_from_slice(&write_id.0.to_le_bytes());
            }
            ToServer::Relinquish { resources } => {
                out.push(4);
                out.extend_from_slice(&rem.to_le_bytes());
                out.extend_from_slice(&(resources.len() as u32).to_le_bytes());
                for r in resources {
                    r.encode(out);
                }
            }
        }
        self.count += 1;
    }

    /// Appends one server→client message.
    pub fn push_s2c<R: WireValue, D: WireValue>(
        &mut self,
        out: &mut Vec<u8>,
        msg: &ToClient<R, D>,
    ) {
        debug_assert_eq!(self.dir, Dir::S2c, "s2c message in a {:?} frame", self.dir);
        match msg {
            ToClient::Grants { req, grants } => {
                out.push(0);
                out.extend_from_slice(&req.0.to_le_bytes());
                out.extend_from_slice(&(grants.len() as u32).to_le_bytes());
                for g in grants {
                    g.resource.encode(out);
                    out.extend_from_slice(&g.version.0.to_le_bytes());
                    match &g.data {
                        None => out.push(0),
                        Some(d) => {
                            out.push(1);
                            d.encode(out);
                        }
                    }
                    out.extend_from_slice(&g.term.as_nanos().to_le_bytes());
                    encode_handle(out, g.handle);
                }
            }
            ToClient::WriteDone {
                req,
                resource,
                version,
                term,
            } => {
                out.push(1);
                out.extend_from_slice(&req.0.to_le_bytes());
                resource.encode(out);
                out.extend_from_slice(&version.0.to_le_bytes());
                out.extend_from_slice(&term.as_nanos().to_le_bytes());
            }
            ToClient::ApprovalRequest {
                write_id,
                resource,
                replaces,
            } => {
                out.push(2);
                out.extend_from_slice(&write_id.0.to_le_bytes());
                resource.encode(out);
                out.extend_from_slice(&replaces.0.to_le_bytes());
            }
            ToClient::InstalledExtend {
                resources,
                term,
                sent_at,
            } => {
                out.push(3);
                out.extend_from_slice(&(resources.len() as u32).to_le_bytes());
                for (r, v) in resources {
                    r.encode(out);
                    out.extend_from_slice(&v.0.to_le_bytes());
                }
                out.extend_from_slice(&term.as_nanos().to_le_bytes());
                out.extend_from_slice(&sent_at.as_nanos().to_le_bytes());
            }
            ToClient::Error { req, reason } => {
                out.push(4);
                out.extend_from_slice(&req.0.to_le_bytes());
                match reason {
                    ErrorReason::NoSuchResource => out.push(0),
                    ErrorReason::Shed { retry_after } => {
                        out.push(1);
                        out.extend_from_slice(&retry_after.as_nanos().to_le_bytes());
                    }
                }
            }
        }
        self.count += 1;
    }

    /// Patches the header's count and payload length. Call exactly once,
    /// after the last message.
    pub fn finish(self, out: &mut [u8]) {
        let payload = out.len() - self.start - HEADER_LEN;
        debug_assert!(
            payload <= MAX_FRAME_PAYLOAD,
            "frame payload {payload} too large"
        );
        out[self.start + 6..self.start + 8].copy_from_slice(&self.count.to_le_bytes());
        out[self.start + 8..self.start + 12].copy_from_slice(&(payload as u32).to_le_bytes());
    }
}

/// Appends a complete hello frame naming `from` (a connection's first
/// frame).
pub fn hello_frame(out: &mut Vec<u8>, from: ClientId) {
    FrameBuilder::begin(out, Dir::Hello, from).finish(out);
}

fn encode_handle(out: &mut Vec<u8>, h: LeaseHandle) {
    let (idx, gen) = h.to_raw();
    out.extend_from_slice(&idx.to_le_bytes());
    out.extend_from_slice(&gen.to_le_bytes());
}

fn decode_handle(rd: &mut Reader<'_>) -> Result<LeaseHandle, WireError> {
    let idx = rd.u32()?;
    let gen = rd.u32()?;
    Ok(LeaseHandle::from_raw(idx, gen))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame's direction.
    pub dir: Dir,
    /// How many messages the payload holds.
    pub count: u16,
    /// Payload length in bytes (the frame is `HEADER_LEN + payload_len`
    /// bytes total).
    pub payload_len: usize,
    /// The sending client (meaningful for [`Dir::C2s`] and
    /// [`Dir::Hello`]).
    pub from: ClientId,
}

/// Parses and validates the 16-byte header at the start of `buf`.
pub fn decode_header(buf: &[u8]) -> Result<FrameHeader, WireError> {
    let mut rd = Reader::new(buf);
    let magic = rd.take(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = rd.u8()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let dir = Dir::from_byte(rd.u8()?)?;
    let count = rd.u16()?;
    let payload_len = rd.u32()?;
    if payload_len as usize > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized(payload_len));
    }
    let from = ClientId(rd.u32()?);
    Ok(FrameHeader {
        dir,
        count,
        payload_len: payload_len as usize,
        from,
    })
}

/// Streaming helper: how many bytes the frame starting at `buf[0]`
/// occupies in total, `Ok(None)` while fewer than [`HEADER_LEN`] bytes
/// have arrived. Errors are permanent (corrupt stream).
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let h = decode_header(buf)?;
    Ok(Some(HEADER_LEN + h.payload_len))
}

/// A decoded client→server message paired with the remaining
/// time-to-live its deadline crossed the wire with (`None` = no
/// deadline). The receiver re-anchors the remainder on its own clock.
pub type DecodedC2s<R, D> = (ToServer<R, D>, Option<Dur>);

/// An in-place iterator over one frame's messages. Created by
/// [`frame_messages`]; call the `next_*` matching the frame's direction
/// until it yields `Ok(None)` (which also verifies the payload was
/// consumed exactly).
pub struct Messages<'a> {
    rd: Reader<'a>,
    left: u16,
}

impl<'a> Messages<'a> {
    fn done(&mut self) -> Result<(), WireError> {
        if self.rd.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(())
    }

    /// Decodes the next client→server message and the remaining
    /// time-to-live its deadline crossed the wire with.
    pub fn next_c2s<R: WireValue, D: WireValue>(
        &mut self,
    ) -> Result<Option<DecodedC2s<R, D>>, WireError> {
        if self.left == 0 {
            self.done()?;
            return Ok(None);
        }
        self.left -= 1;
        let rd = &mut self.rd;
        let tag = rd.u8()?;
        let rem = rd.u32()?;
        let deadline = (rem != NO_DEADLINE).then(|| Dur::from_micros(u64::from(rem)));
        let msg = match tag {
            0 => {
                let req = ReqId(rd.u64()?);
                let resource = R::decode(rd)?;
                let cached = match rd.u8()? {
                    0 => None,
                    _ => Some(Version(rd.u64()?)),
                };
                let n = rd.u32()?;
                let mut also_extend = Vec::new();
                for _ in 0..n {
                    let r = R::decode(rd)?;
                    let v = Version(rd.u64()?);
                    let h = decode_handle(rd)?;
                    also_extend.push((r, v, h));
                }
                ToServer::Fetch {
                    req,
                    resource,
                    cached,
                    also_extend,
                }
            }
            1 => {
                let req = ReqId(rd.u64()?);
                let n = rd.u32()?;
                let mut resources = Vec::new();
                for _ in 0..n {
                    let r = R::decode(rd)?;
                    let v = Version(rd.u64()?);
                    let h = decode_handle(rd)?;
                    resources.push((r, v, h));
                }
                ToServer::Renew { req, resources }
            }
            2 => ToServer::Write {
                req: ReqId(rd.u64()?),
                resource: R::decode(rd)?,
                data: D::decode(rd)?,
            },
            3 => ToServer::Approve {
                write_id: WriteId(rd.u64()?),
            },
            4 => {
                let n = rd.u32()?;
                let mut resources = Vec::new();
                for _ in 0..n {
                    resources.push(R::decode(rd)?);
                }
                ToServer::Relinquish { resources }
            }
            other => return Err(WireError::BadTag(other)),
        };
        Ok(Some((msg, deadline)))
    }

    /// Decodes the next server→client message.
    pub fn next_s2c<R: WireValue, D: WireValue>(
        &mut self,
    ) -> Result<Option<ToClient<R, D>>, WireError> {
        if self.left == 0 {
            self.done()?;
            return Ok(None);
        }
        self.left -= 1;
        let rd = &mut self.rd;
        let msg = match rd.u8()? {
            0 => {
                let req = ReqId(rd.u64()?);
                let n = rd.u32()?;
                let mut grants = Vec::new();
                for _ in 0..n {
                    let resource = R::decode(rd)?;
                    let version = Version(rd.u64()?);
                    let data = match rd.u8()? {
                        0 => None,
                        _ => Some(D::decode(rd)?),
                    };
                    let term = Dur(rd.u64()?);
                    let handle = decode_handle(rd)?;
                    grants.push(Grant {
                        resource,
                        version,
                        data,
                        term,
                        handle,
                    });
                }
                ToClient::Grants { req, grants }
            }
            1 => ToClient::WriteDone {
                req: ReqId(rd.u64()?),
                resource: R::decode(rd)?,
                version: Version(rd.u64()?),
                term: Dur(rd.u64()?),
            },
            2 => ToClient::ApprovalRequest {
                write_id: WriteId(rd.u64()?),
                resource: R::decode(rd)?,
                replaces: Version(rd.u64()?),
            },
            3 => {
                let n = rd.u32()?;
                let mut resources = Vec::new();
                for _ in 0..n {
                    let r = R::decode(rd)?;
                    let v = Version(rd.u64()?);
                    resources.push((r, v));
                }
                let term = Dur(rd.u64()?);
                let sent_at = lease_clock::Time(rd.u64()?);
                ToClient::InstalledExtend {
                    resources,
                    term,
                    sent_at,
                }
            }
            4 => {
                let req = ReqId(rd.u64()?);
                let reason = match rd.u8()? {
                    0 => ErrorReason::NoSuchResource,
                    _ => ErrorReason::Shed {
                        retry_after: Dur(rd.u64()?),
                    },
                };
                ToClient::Error { req, reason }
            }
            other => return Err(WireError::BadTag(other)),
        };
        Ok(Some(msg))
    }
}

/// Validates the header of the complete frame in `frame`
/// (`HEADER_LEN + payload_len` bytes, as sized by [`frame_len`]) and
/// returns it with an in-place message iterator over the payload.
pub fn frame_messages(frame: &[u8]) -> Result<(FrameHeader, Messages<'_>), WireError> {
    let h = decode_header(frame)?;
    let end = HEADER_LEN
        .checked_add(h.payload_len)
        .ok_or(WireError::Truncated)?;
    if frame.len() < end {
        return Err(WireError::Truncated);
    }
    if frame.len() > end {
        return Err(WireError::TrailingBytes);
    }
    Ok((
        h,
        Messages {
            rd: Reader::new(&frame[HEADER_LEN..end]),
            left: h.count,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_c2s(msg: &ToServer<u64, u64>, deadline: Option<Dur>) -> Vec<u8> {
        let mut out = Vec::new();
        let mut fb = FrameBuilder::begin(&mut out, Dir::C2s, ClientId(7));
        fb.push_c2s(&mut out, msg, deadline);
        fb.finish(&mut out);
        out
    }

    #[test]
    fn fetch_roundtrip_with_deadline() {
        let msg = ToServer::Fetch {
            req: ReqId(42),
            resource: 9u64,
            cached: Some(Version(3)),
            also_extend: vec![(1, Version(2), LeaseHandle::NULL)],
        };
        let buf = one_c2s(&msg, Some(Dur::from_micros(1500)));
        assert_eq!(frame_len(&buf).unwrap(), Some(buf.len()));
        let (h, mut it) = frame_messages(&buf).unwrap();
        assert_eq!(h.dir, Dir::C2s);
        assert_eq!(h.from, ClientId(7));
        assert_eq!(h.count, 1);
        let (got, rem) = it.next_c2s::<u64, u64>().unwrap().unwrap();
        assert_eq!(got, msg);
        assert_eq!(rem, Some(Dur::from_micros(1500)));
        assert!(it.next_c2s::<u64, u64>().unwrap().is_none());
    }

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        hello_frame(&mut buf, ClientId(3));
        let (h, mut it) = frame_messages(&buf).unwrap();
        assert_eq!(h.dir, Dir::Hello);
        assert_eq!(h.from, ClientId(3));
        assert_eq!(h.count, 0);
        assert!(it.next_c2s::<u64, u64>().unwrap().is_none());
    }

    #[test]
    fn s2c_batch_roundtrip() {
        let msgs: Vec<ToClient<u64, u64>> = vec![
            ToClient::Grants {
                req: ReqId(1),
                grants: vec![Grant {
                    resource: 5,
                    version: Version(2),
                    data: Some(99),
                    term: Dur::from_secs(5),
                    handle: LeaseHandle::from_raw(3, 9),
                }],
            },
            ToClient::Error {
                req: ReqId(2),
                reason: ErrorReason::Shed {
                    retry_after: Dur::from_millis(2),
                },
            },
        ];
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::S2c, ClientId(0));
        for m in &msgs {
            fb.push_s2c(&mut buf, m);
        }
        fb.finish(&mut buf);
        let (h, mut it) = frame_messages(&buf).unwrap();
        assert_eq!(h.count, 2);
        let mut got = Vec::new();
        while let Some(m) = it.next_s2c::<u64, u64>().unwrap() {
            got.push(m);
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn bytes_datum_roundtrip() {
        let msg: ToServer<u64, Bytes> = ToServer::Write {
            req: ReqId(8),
            resource: 1,
            data: Bytes::copy_from_slice(b"hello leases"),
        };
        let mut out = Vec::new();
        let mut fb = FrameBuilder::begin(&mut out, Dir::C2s, ClientId(0));
        fb.push_c2s(&mut out, &msg, None);
        fb.finish(&mut out);
        let (_, mut it) = frame_messages(&out).unwrap();
        let (got, rem) = it.next_c2s::<u64, Bytes>().unwrap().unwrap();
        assert_eq!(got, msg);
        assert_eq!(rem, None);
    }

    #[test]
    fn header_refusals() {
        let mut buf = one_c2s(
            &ToServer::Approve {
                write_id: WriteId(1),
            },
            None,
        );
        assert_eq!(frame_len(&buf[..4]).unwrap(), None, "short header: wait");
        buf[0] = b'X';
        assert_eq!(decode_header(&buf), Err(WireError::BadMagic));
        buf[0] = b'L';
        buf[4] = 99;
        assert_eq!(decode_header(&buf), Err(WireError::BadVersion(99)));
        buf[4] = VERSION;
        buf[5] = 7;
        assert_eq!(decode_header(&buf), Err(WireError::BadDir(7)));
        buf[5] = 0;
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_header(&buf), Err(WireError::Oversized(u32::MAX)));
    }

    #[test]
    fn truncation_and_trailing_refused() {
        let buf = one_c2s(
            &ToServer::Fetch {
                req: ReqId(1),
                resource: 2u64,
                cached: None,
                also_extend: Vec::new(),
            },
            None,
        );
        // Whole-frame truncation at every prefix length.
        for cut in HEADER_LEN..buf.len() {
            let mut short = buf[..cut].to_vec();
            // Patch the payload length down so the header itself parses.
            let payload = (cut - HEADER_LEN) as u32;
            short[8..12].copy_from_slice(&payload.to_le_bytes());
            let (_, mut it) = frame_messages(&short).unwrap();
            assert!(
                it.next_c2s::<u64, u64>().is_err(),
                "cut at {cut} must refuse, not panic"
            );
        }
        // Trailing garbage after the last message.
        let mut long = buf.clone();
        long.push(0xAB);
        let padded = (long.len() - HEADER_LEN) as u32;
        long[8..12].copy_from_slice(&padded.to_le_bytes());
        let (_, mut it) = frame_messages(&long).unwrap();
        let first = it.next_c2s::<u64, u64>().unwrap();
        assert!(first.is_some());
        assert_eq!(
            it.next_c2s::<u64, u64>().unwrap_err(),
            WireError::TrailingBytes
        );
    }

    #[test]
    fn adversarial_count_does_not_preallocate() {
        // A Relinquish claiming u32::MAX resources in a 5-byte payload
        // must fail with Truncated (bounds checks fire long before any
        // giant buffer could be built).
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::C2s, ClientId(0));
        fb.push_c2s::<u64, u64>(
            &mut buf,
            &ToServer::Relinquish {
                resources: Vec::new(),
            },
            None,
        );
        fb.finish(&mut buf);
        // Patch the inner count to u32::MAX (offset: header + tag + rem).
        let off = HEADER_LEN + 1 + 4;
        buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (_, mut it) = frame_messages(&buf).unwrap();
        assert_eq!(it.next_c2s::<u64, u64>().unwrap_err(), WireError::Truncated);
    }
}
