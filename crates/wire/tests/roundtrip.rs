//! Property coverage for the wire format (the fuzz family from ISSUE 10):
//!
//! 1. encode ≡ decode for every message type, in mixed batches, for both
//!    fixed (`u64`) and variable (`Bytes`) datum types;
//! 2. truncated, garbage, and oversized inputs error cleanly — never a
//!    panic, never an over-read, never an attacker-sized allocation.

use bytes::Bytes;
use lease_clock::{Dur, Time};
use lease_core::{
    ClientId, ErrorReason, Grant, LeaseHandle, ReqId, ToClient, ToServer, Version, WriteId,
};
use lease_wire::{
    decode_header, frame_len, frame_messages, Dir, FrameBuilder, WireError, HEADER_LEN,
};
use proptest::prelude::*;

// ----------------------------------------------------------- strategies --

fn handle() -> impl Strategy<Value = LeaseHandle> {
    prop_oneof![
        Just(LeaseHandle::NULL),
        (any::<u32>(), any::<u32>()).prop_map(|(i, g)| LeaseHandle::from_raw(i, g)),
    ]
}

fn triple() -> impl Strategy<Value = (u64, Version, LeaseHandle)> {
    (any::<u64>(), any::<u64>(), handle()).prop_map(|(r, v, h)| (r, Version(v), h))
}

fn c2s() -> impl Strategy<Value = ToServer<u64, u64>> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
            proptest::collection::vec(triple(), 0..5)
        )
            .prop_map(|(req, resource, cached, also_extend)| ToServer::Fetch {
                req: ReqId(req),
                resource,
                cached: cached.map(Version),
                also_extend,
            }),
        (any::<u64>(), proptest::collection::vec(triple(), 0..8)).prop_map(|(req, resources)| {
            ToServer::Renew {
                req: ReqId(req),
                resources,
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(req, resource, data)| {
            ToServer::Write {
                req: ReqId(req),
                resource,
                data,
            }
        }),
        any::<u64>().prop_map(|w| ToServer::Approve {
            write_id: WriteId(w)
        }),
        proptest::collection::vec(any::<u64>(), 0..8)
            .prop_map(|resources| ToServer::Relinquish { resources }),
    ]
}

fn grant() -> impl Strategy<Value = Grant<u64, u64>> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        any::<u64>(),
        handle(),
    )
        .prop_map(|(resource, version, data, term, h)| Grant {
            resource,
            version: Version(version),
            data,
            term: Dur(term),
            handle: h,
        })
}

fn s2c() -> impl Strategy<Value = ToClient<u64, u64>> {
    prop_oneof![
        (any::<u64>(), proptest::collection::vec(grant(), 0..5)).prop_map(|(req, grants)| {
            ToClient::Grants {
                req: ReqId(req),
                grants,
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(req, resource, version, term)| ToClient::WriteDone {
                req: ReqId(req),
                resource,
                version: Version(version),
                term: Dur(term),
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(w, resource, replaces)| {
            ToClient::ApprovalRequest {
                write_id: WriteId(w),
                resource,
                replaces: Version(replaces),
            }
        }),
        (
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..6),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(rs, term, sent)| ToClient::InstalledExtend {
                resources: rs.into_iter().map(|(r, v)| (r, Version(v))).collect(),
                term: Dur(term),
                sent_at: Time(sent),
            }),
        (any::<u64>(), proptest::option::of(any::<u64>())).prop_map(|(req, shed)| {
            ToClient::Error {
                req: ReqId(req),
                reason: match shed {
                    None => ErrorReason::NoSuchResource,
                    Some(d) => ErrorReason::Shed {
                        retry_after: Dur(d),
                    },
                },
            }
        }),
    ]
}

/// Deadlines cross the wire at microsecond resolution in a u32, so the
/// roundtrip-exact domain is [0, u32::MAX) whole microseconds.
fn deadline() -> impl Strategy<Value = Option<Dur>> {
    proptest::option::of((0u64..u64::from(u32::MAX - 1)).prop_map(Dur::from_micros))
}

// ------------------------------------------------------------ roundtrip --

proptest! {
    /// Every client→server batch decodes to exactly what was encoded,
    /// message for message, deadline for deadline.
    #[test]
    fn c2s_roundtrip(
        from in any::<u32>(),
        batch in proptest::collection::vec((c2s(), deadline()), 1..20),
    ) {
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::C2s, ClientId(from));
        for (m, d) in &batch {
            fb.push_c2s(&mut buf, m, *d);
        }
        fb.finish(&mut buf);

        prop_assert_eq!(frame_len(&buf).unwrap(), Some(buf.len()));
        let (h, mut it) = frame_messages(&buf).unwrap();
        prop_assert_eq!(h.dir, Dir::C2s);
        prop_assert_eq!(h.from, ClientId(from));
        prop_assert_eq!(h.count as usize, batch.len());
        let mut got = Vec::new();
        while let Some(pair) = it.next_c2s::<u64, u64>().unwrap() {
            got.push(pair);
        }
        prop_assert_eq!(got, batch);
    }

    /// Same for server→client batches.
    #[test]
    fn s2c_roundtrip(batch in proptest::collection::vec(s2c(), 1..20)) {
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::S2c, ClientId(0));
        for m in &batch {
            fb.push_s2c(&mut buf, m);
        }
        fb.finish(&mut buf);

        let (h, mut it) = frame_messages(&buf).unwrap();
        prop_assert_eq!(h.count as usize, batch.len());
        let mut got = Vec::new();
        while let Some(m) = it.next_s2c::<u64, u64>().unwrap() {
            got.push(m);
        }
        prop_assert_eq!(got, batch);
    }

    /// Variable-size data (`Bytes`) roundtrips through writes and grants.
    #[test]
    fn bytes_roundtrip(
        req in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        gdata in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..256)),
    ) {
        let w: ToServer<u64, Bytes> = ToServer::Write {
            req: ReqId(req),
            resource: 1,
            data: Bytes::from(data),
        };
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::C2s, ClientId(1));
        fb.push_c2s(&mut buf, &w, None);
        fb.finish(&mut buf);
        let (_, mut it) = frame_messages(&buf).unwrap();
        let (got, _) = it.next_c2s::<u64, Bytes>().unwrap().unwrap();
        prop_assert_eq!(got, w);

        let g: ToClient<u64, Bytes> = ToClient::Grants {
            req: ReqId(req),
            grants: vec![Grant {
                resource: 2,
                version: Version(3),
                data: gdata.map(Bytes::from),
                term: Dur::from_secs(5),
                handle: LeaseHandle::NULL,
            }],
        };
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::S2c, ClientId(0));
        fb.push_s2c(&mut buf, &g);
        fb.finish(&mut buf);
        let (_, mut it) = frame_messages(&buf).unwrap();
        let got = it.next_s2c::<u64, Bytes>().unwrap().unwrap();
        prop_assert_eq!(got, g);
    }
}

// ------------------------------------------------- malformed-input fuzz --

/// Fully decodes whatever `buf` claims to be, in both directions and both
/// datum types, discarding results. The property under test is "no panic,
/// no over-read": every path must return a clean `Result`.
fn exhaust(buf: &[u8]) {
    let _ = frame_len(buf);
    let _ = decode_header(buf);
    if let Ok((h, mut it)) = frame_messages(buf) {
        match h.dir {
            Dir::C2s | Dir::Hello => while let Ok(Some(_)) = it.next_c2s::<u64, u64>() {},
            Dir::S2c => while let Ok(Some(_)) = it.next_s2c::<u64, u64>() {},
        }
    }
    if let Ok((h, mut it)) = frame_messages(buf) {
        match h.dir {
            Dir::C2s | Dir::Hello => while let Ok(Some(_)) = it.next_c2s::<u64, Bytes>() {},
            Dir::S2c => while let Ok(Some(_)) = it.next_s2c::<u64, Bytes>() {},
        }
    }
}

proptest! {
    /// Pure garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..512)) {
        exhaust(&buf);
    }

    /// A valid frame truncated at every possible length, with the header
    /// re-patched so the payload length matches, never panics and never
    /// decodes to more messages than survive intact.
    #[test]
    fn truncations_never_panic(
        batch in proptest::collection::vec((c2s(), deadline()), 1..10),
        cut_seed in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::C2s, ClientId(9));
        for (m, d) in &batch {
            fb.push_c2s(&mut buf, m, *d);
        }
        fb.finish(&mut buf);

        // Raw truncation (header claims more payload than present).
        let cut = (cut_seed as usize) % buf.len();
        exhaust(&buf[..cut]);

        // Patched truncation (header consistent with the shorter buffer,
        // so the damage is inside the message stream).
        if cut >= HEADER_LEN {
            let mut short = buf[..cut].to_vec();
            let payload = (cut - HEADER_LEN) as u32;
            short[8..12].copy_from_slice(&payload.to_le_bytes());
            exhaust(&short);
        }
    }

    /// A valid frame with random single-byte corruption never panics.
    #[test]
    fn bitflips_never_panic(
        batch in proptest::collection::vec(s2c(), 1..10),
        pos_seed in any::<u64>(),
        xor in 1u8..255,
    ) {
        let mut buf = Vec::new();
        let mut fb = FrameBuilder::begin(&mut buf, Dir::S2c, ClientId(0));
        for m in &batch {
            fb.push_s2c(&mut buf, m);
        }
        fb.finish(&mut buf);
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= xor;
        exhaust(&buf);
    }
}

// --------------------------------------------------- targeted refusals --

#[test]
fn oversized_header_is_refused_without_allocating() {
    let mut buf = vec![0u8; HEADER_LEN];
    buf[..4].copy_from_slice(b"LEAS");
    buf[4] = lease_wire::VERSION;
    buf[5] = 0;
    buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(frame_len(&buf), Err(WireError::Oversized(u32::MAX)));
    assert_eq!(decode_header(&buf), Err(WireError::Oversized(u32::MAX)));
}

#[test]
fn adversarial_inner_counts_are_bounded_by_payload() {
    // A Renew claiming 2^32-1 entries inside a tiny payload must refuse
    // with Truncated after at most payload-many bytes of work — the
    // decoder sizes nothing from the count alone.
    let mut buf = Vec::new();
    let mut fb = FrameBuilder::begin(&mut buf, Dir::C2s, ClientId(0));
    fb.push_c2s::<u64, u64>(
        &mut buf,
        &ToServer::Renew {
            req: ReqId(1),
            resources: Vec::new(),
        },
        None,
    );
    fb.finish(&mut buf);
    let off = HEADER_LEN + 1 + 4 + 8; // tag, deadline, req
    buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let (_, mut it) = frame_messages(&buf).unwrap();
    assert_eq!(it.next_c2s::<u64, u64>().unwrap_err(), WireError::Truncated);
}

#[test]
fn bytes_length_prefix_is_bounded_by_payload() {
    // A Bytes datum claiming 2^32-1 length inside a short payload.
    let w: ToServer<u64, Bytes> = ToServer::Write {
        req: ReqId(1),
        resource: 2,
        data: Bytes::from(&b"xy"[..]),
    };
    let mut buf = Vec::new();
    let mut fb = FrameBuilder::begin(&mut buf, Dir::C2s, ClientId(0));
    fb.push_c2s(&mut buf, &w, None);
    fb.finish(&mut buf);
    let off = HEADER_LEN + 1 + 4 + 8 + 8; // tag, deadline, req, resource
    buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let (_, mut it) = frame_messages(&buf).unwrap();
    assert_eq!(
        it.next_c2s::<u64, Bytes>().unwrap_err(),
        WireError::Truncated
    );
}
