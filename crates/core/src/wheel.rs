//! A hierarchical timer wheel (Varghese & Lauck style).
//!
//! The seed runtime kept server timers in a binary heap and found lease
//! expirations by scanning the table index. The wheel replaces both:
//! scheduling and firing are O(1) amortized per timer regardless of how
//! many are pending, which is what lets a shard worker carry millions of
//! leases without its expiry path growing with table size.
//!
//! The wheel started life in `lease-svc`; it now lives in dep-free
//! `lease-core` (re-exported by svc) because the slab lease table
//! ([`crate::table::SlabTable`]) delegates its expiry ordering to it
//! instead of keeping a `BTreeSet` index.
//!
//! Semantics:
//!
//! * Timers never fire early. An entry scheduled at `at` is placed on the
//!   tick boundary at or after `at` (round up) and [`TimerWheel::advance`]
//!   only releases ticks fully covered by `now` (round down), so an entry
//!   fires at most one tick late and never before `at` — firing a write
//!   deadline before the blocking lease expired would break the protocol.
//! * `advance` returns the due batch sorted by `(at, key)`, so timers with
//!   distinct deadlines fire in deadline order and ties break by key —
//!   exactly the order a naive scan of an expiry-ordered index produces
//!   (the property test in `lease-svc/tests/wheel_prop.rs` pins this
//!   down).
//! * The wheel does not cancel. Callers keep a `key -> latest deadline`
//!   map and drop entries whose deadline no longer matches when they fire
//!   (lazy cancellation); re-scheduling a key simply supersedes it.
//!
//! Steady-state behaviour: redistribution buffers are recycled between
//! cascades and [`TimerWheel::advance_into`] reuses a caller-owned output
//! vector, so a warmed wheel schedules and fires without touching the
//! allocator; empty stretches of time are skipped level-by-level instead
//! of tick-by-tick, so advancing an idle wheel across hours costs a
//! handful of boundary hops.

use lease_clock::{Dur, Time};

/// Slots per level. With 4 levels the horizon is `64^4` ticks; anything
/// farther out parks in an overflow list and is re-examined on cascade.
const SLOTS: usize = 64;
/// Hierarchy depth.
const LEVELS: usize = 4;
/// log2(SLOTS), for slot arithmetic.
const SLOT_BITS: u32 = 6;

#[derive(Debug, Clone)]
struct Entry<K> {
    /// The requested deadline (not quantized; used for ordering).
    at: Time,
    /// Deadline rounded up to a tick count.
    tick: u64,
    /// Insertion order, the final tie-break.
    seq: u64,
    key: K,
}

/// A hierarchical timer wheel over keys of type `K`.
///
/// `K: Ord` only so the due batch can be deterministically ordered; the
/// wheel itself never compares keys.
#[derive(Debug, Clone)]
pub struct TimerWheel<K> {
    tick_ns: u64,
    /// The last tick fully covered by `advance`.
    now_tick: u64,
    /// `levels[l][s]`: entries due in slot `s` of level `l`. Level 0 slots
    /// span one tick, level `l` slots span `64^l` ticks.
    levels: Vec<Vec<Vec<Entry<K>>>>,
    /// Entries beyond the wheel horizon.
    overflow: Vec<Entry<K>>,
    /// Entries already due when scheduled (or cascaded onto `now_tick`).
    due: Vec<Entry<K>>,
    len: usize,
    /// Entries per level — lets `advance` skip whole empty blocks (a
    /// level-sized hop when only outer levels hold entries) instead of
    /// stepping tick by tick.
    lens: [usize; LEVELS],
    /// Per-level slot-occupancy bitmaps: bit `s` of `occ[l]` is set iff
    /// `levels[l][s]` is non-empty. `SLOTS == 64` makes a level exactly
    /// one machine word, so "first occupied slot past the current
    /// position" — the inner loop of both [`TimerWheel::next_deadline`]
    /// and the level-0 advance — is a rotate plus `trailing_zeros`
    /// instead of a 64-slot scan.
    occ: [u64; LEVELS],
    seq: u64,
    /// Fired-entry scratch reused across `advance_into` calls.
    fired: Vec<Entry<K>>,
    /// Redistribution scratch reused across cascades, so a warmed wheel
    /// cascades without allocating.
    spare: Vec<Entry<K>>,
}

impl<K: Ord> TimerWheel<K> {
    /// A wheel with the given tick quantum, started at `now`.
    ///
    /// Panics if `tick` is zero.
    pub fn new(tick: Dur, now: Time) -> TimerWheel<K> {
        assert!(tick.0 > 0, "timer wheel tick must be non-zero");
        TimerWheel {
            tick_ns: tick.0,
            now_tick: now.0 / tick.0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            due: Vec::new(),
            len: 0,
            lens: [0; LEVELS],
            occ: [0; LEVELS],
            seq: 0,
            fired: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Pending entries (including already-due ones not yet collected).
    pub fn len(&self) -> usize {
        self.len
    }

    /// The wheel's position: the last tick fully covered by `advance`.
    /// An entry scheduled at a deadline whose (rounded-up) tick is at or
    /// before this value would land in the due list and fire on the next
    /// `advance`; callers layering their own ready-set on top of the wheel
    /// (the simulator's event queue) use this to route already-due entries
    /// around the wheel entirely.
    pub fn position_ticks(&self) -> u64 {
        self.now_tick
    }

    /// The tick an entry scheduled at `at` occupies (deadline rounded up
    /// to the tick boundary at or after it, the same quantization
    /// [`TimerWheel::schedule`] applies).
    pub fn tick_of(&self, at: Time) -> u64 {
        at.0.div_ceil(self.tick_ns)
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every pending entry, keeping the wheel's position and the
    /// already-allocated slot buffers (a crash wipes a lease table without
    /// paying to rebuild its wheel).
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            for slot in level {
                slot.clear();
            }
        }
        self.overflow.clear();
        self.due.clear();
        self.len = 0;
        self.lens = [0; LEVELS];
        self.occ = [0; LEVELS];
    }

    /// Schedules `key` to fire once `advance` is called with a time at or
    /// after `at`. Scheduling in the past fires on the next `advance`.
    pub fn schedule(&mut self, at: Time, key: K) {
        let tick = at.0.div_ceil(self.tick_ns);
        let e = Entry {
            at,
            tick,
            seq: self.seq,
            key,
        };
        self.seq += 1;
        self.len += 1;
        self.place(e);
    }

    fn place(&mut self, e: Entry<K>) {
        let delta = e.tick.saturating_sub(self.now_tick);
        if delta == 0 {
            self.due.push(e);
            return;
        }
        for l in 0..LEVELS {
            // Level `l` covers deadlines up to `64^(l+1)` ticks out.
            if delta < 1u64 << (SLOT_BITS * (l as u32 + 1)) {
                let slot = ((e.tick >> (SLOT_BITS * l as u32)) % SLOTS as u64) as usize;
                self.levels[l][slot].push(e);
                self.lens[l] += 1;
                self.occ[l] |= 1 << slot;
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Collects every entry due at or before `now`, sorted by
    /// `(at, key, seq)`.
    pub fn advance(&mut self, now: Time) -> Vec<(Time, K)> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Like [`TimerWheel::advance`], but appends into a caller-owned
    /// vector so steady-state callers (the slab table's prune path) fire
    /// timers without allocating.
    pub fn advance_into(&mut self, now: Time, out: &mut Vec<(Time, K)>) {
        self.advance_ticks_into(now.0 / self.tick_ns, out)
    }

    /// Advances to an exact tick count rather than a time. Time-addressed
    /// `advance(now)` rounds *down* (a tick only fires once fully covered)
    /// while `schedule(at)` rounds *up*, so a caller chasing a specific
    /// entry (`advance(entry.at)`) can stall one tick short of it;
    /// tick-addressed callers target `tick_of(deadline)` directly.
    pub fn advance_ticks_into(&mut self, target: u64, out: &mut Vec<(Time, K)>) {
        debug_assert!(self.fired.is_empty());
        self.fired.append(&mut self.due);
        while self.now_tick < target {
            if self.len == self.fired.len() {
                // Nothing on the wheel: jump straight to the target.
                self.now_tick = target;
                break;
            }
            if self.lens[0] > 0 {
                // Jump straight to the next occupied level-0 slot, capped
                // at the wrap boundary (where a cascade may refill level
                // 0) and at the target; the slots in between are known
                // empty, so stepping through them would only burn checks.
                let cur = self.now_tick % SLOTS as u64;
                let jump = self
                    .first_occupied_off(0, cur)
                    .unwrap_or(u64::MAX)
                    .min(SLOTS as u64 - cur)
                    .min(target - self.now_tick);
                self.now_tick += jump;
                let s0 = (self.now_tick % SLOTS as u64) as usize;
                {
                    let TimerWheel {
                        levels,
                        fired,
                        lens,
                        occ,
                        ..
                    } = &mut *self;
                    let slot = &mut levels[0][s0];
                    lens[0] -= slot.len();
                    fired.append(slot);
                    occ[0] &= !(1 << s0);
                }
                if s0 == 0 {
                    self.cascade();
                }
                continue;
            }
            // Level 0 is empty: nothing can fire before the next boundary
            // of the innermost *occupied* level (or, with only overflow
            // pending, the next full wrap), so hop there directly.
            let shift = match (1..LEVELS).find(|&l| self.lens[l] > 0) {
                Some(l) => SLOT_BITS * l as u32,
                None => SLOT_BITS * LEVELS as u32,
            };
            let step = 1u64 << shift;
            let next_boundary = (self.now_tick - self.now_tick % step) + step;
            if next_boundary > target {
                self.now_tick = target;
                break;
            }
            self.now_tick = next_boundary;
            self.cascade();
        }
        self.len -= self.fired.len();
        // Unstable sort: `seq` is unique, so the key is a total order and
        // stability buys nothing — and sort_unstable never allocates,
        // which keeps the steady-state fire path allocation-free.
        self.fired
            .sort_unstable_by(|a, b| (a.at, &a.key, a.seq).cmp(&(b.at, &b.key, b.seq)));
        out.extend(self.fired.drain(..).map(|e| (e.at, e.key)));
    }

    /// Offset in `1..=SLOTS` from ring position `cur` of level `l` to its
    /// first occupied slot, or `None` when the level is empty. Ring order
    /// from the current position is tick order within level 0 and block
    /// order in higher levels.
    fn first_occupied_off(&self, l: usize, cur: u64) -> Option<u64> {
        if self.occ[l] == 0 {
            return None;
        }
        // Rotate so slot `cur + 1` lands at bit 0; the trailing zero
        // count is then the offset past 1.
        let rot = self.occ[l].rotate_right(((cur + 1) % SLOTS as u64) as u32);
        Some(1 + u64::from(rot.trailing_zeros()))
    }

    /// Redistributes the expiring slot of each higher level whose block
    /// boundary `now_tick` just crossed, innermost first. Entries landing
    /// on `now_tick` go to [`TimerWheel::fired`].
    fn cascade(&mut self) {
        for l in 1..LEVELS {
            let shift = SLOT_BITS * l as u32;
            if !self.now_tick.is_multiple_of(1u64 << shift) {
                return;
            }
            let slot = ((self.now_tick >> shift) % SLOTS as u64) as usize;
            let mut block =
                std::mem::replace(&mut self.levels[l][slot], std::mem::take(&mut self.spare));
            self.lens[l] -= block.len();
            self.occ[l] &= !(1 << slot);
            for e in block.drain(..) {
                if e.tick <= self.now_tick {
                    self.fired.push(e);
                } else {
                    self.place(e);
                }
            }
            // Recycle the drained block's capacity for the next cascade.
            // (An entry can never re-place into the slot it came from: it
            // would need `delta >= 64^(l+1)`, past the level's span.)
            self.spare = block;
        }
        // Every level wrapped: overflow entries may now be in range.
        let mut over = std::mem::replace(&mut self.overflow, std::mem::take(&mut self.spare));
        for e in over.drain(..) {
            if e.tick <= self.now_tick {
                self.fired.push(e);
            } else {
                self.place(e);
            }
        }
        self.spare = over;
    }

    /// Advances just far enough to fire the next pending batch — the
    /// level-hop loop of [`TimerWheel::advance_ticks_into`] with
    /// "something fired" as the stop condition instead of a target tick —
    /// and collects it sorted by `(at, key, seq)`. Returns `false` (and
    /// leaves the position unchanged) when nothing is pending. One call
    /// replaces the [`TimerWheel::next_deadline`]-then-`advance` round
    /// trip per refill in the simulator's event queue, and lands on
    /// exactly the tick that round trip converges to.
    pub fn advance_to_next_into(&mut self, out: &mut Vec<(Time, K)>) -> bool {
        if self.len == 0 {
            return false;
        }
        debug_assert!(self.fired.is_empty());
        self.fired.append(&mut self.due);
        while self.fired.is_empty() {
            if self.lens[0] > 0 {
                let cur = self.now_tick % SLOTS as u64;
                let jump = self
                    .first_occupied_off(0, cur)
                    .expect("lens[0] > 0 implies an occupied level-0 slot")
                    .min(SLOTS as u64 - cur);
                self.now_tick += jump;
                let s0 = (self.now_tick % SLOTS as u64) as usize;
                {
                    let TimerWheel {
                        levels,
                        fired,
                        lens,
                        occ,
                        ..
                    } = &mut *self;
                    let slot = &mut levels[0][s0];
                    lens[0] -= slot.len();
                    fired.append(slot);
                    occ[0] &= !(1 << s0);
                }
                if s0 == 0 {
                    self.cascade();
                }
                continue;
            }
            // Level 0 empty: hop to the next boundary of the innermost
            // occupied level (or the full wrap when only overflow is
            // pending) and cascade — the same stride logic as
            // `advance_ticks_into`, minus the target cap.
            let shift = match (1..LEVELS).find(|&l| self.lens[l] > 0) {
                Some(l) => SLOT_BITS * l as u32,
                None => SLOT_BITS * LEVELS as u32,
            };
            let step = 1u64 << shift;
            self.now_tick = (self.now_tick - self.now_tick % step) + step;
            self.cascade();
        }
        self.len -= self.fired.len();
        self.fired
            .sort_unstable_by(|a, b| (a.at, &a.key, a.seq).cmp(&(b.at, &b.key, b.seq)));
        out.extend(self.fired.drain(..).map(|e| (e.at, e.key)));
        true
    }

    /// A lower bound on when the next entry fires: exact when every
    /// pending entry sits in the innermost level, otherwise capped at the
    /// first occupied block's cascade boundary (the caller wakes, the
    /// block cascades inward, and the caller asks again). `None` when
    /// nothing is pending.
    ///
    /// The cap applies even when level 0 is non-empty: an entry parked in
    /// an outer level (placed when it was still far out) can come due
    /// *before* a level-0 entry that lies beyond the next wrap, so the
    /// level-0 minimum alone would be too late a wake-up. Bounding at the
    /// first *occupied* block (rather than the next level-0 wrap) is what
    /// lets a wake/re-ask loop cross an idle stretch in block-sized
    /// strides — the simulator's event queue leans on this to jump
    /// between events separated by millions of ticks.
    pub fn next_deadline(&self) -> Option<Time> {
        if let Some(min) = self.due.iter().map(|e| e.at).min() {
            return Some(min);
        }
        if self.len == 0 {
            return None;
        }
        // Level-0 slots in ring order are tick order, so the first
        // non-empty slot holds the level-0 minimum.
        let l0_min = self
            .first_occupied_off(0, self.now_tick % SLOTS as u64)
            .and_then(|off| {
                let slot = ((self.now_tick + off) % SLOTS as u64) as usize;
                self.levels[0][slot].iter().map(|e| e.at).min()
            });
        // A level-`l` entry cannot fire before the start of the block
        // holding it (its tick is inside that block, and the block only
        // cascades inward when `advance` crosses the block's start). The
        // slots of a level in ring order from the current position are
        // block order, so the first occupied slot gives the earliest
        // cascade boundary; advancing to exactly that boundary performs
        // the cascade, so the wake/re-ask loop always makes progress.
        let mut bound = u64::MAX;
        for l in 1..LEVELS {
            let shift = SLOT_BITS * l as u32;
            let step = 1u64 << shift;
            let cur = (self.now_tick >> shift) % SLOTS as u64;
            if let Some(off) = self.first_occupied_off(l, cur) {
                let base = self.now_tick - self.now_tick % step;
                bound = bound.min(base + off * step);
            }
        }
        if !self.overflow.is_empty() {
            // Overflow is re-examined when every level wraps at once.
            let step = 1u64 << (SLOT_BITS * LEVELS as u32);
            bound = bound.min(self.now_tick - self.now_tick % step + step);
        }
        let bound_t = Time(bound.saturating_mul(self.tick_ns));
        Some(l0_min.map_or(bound_t, |m| m.min(bound_t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel<u32> {
        TimerWheel::new(Dur(1000), Time::ZERO)
    }

    #[test]
    fn fires_in_deadline_order_never_early() {
        let mut w = wheel();
        w.schedule(Time(5500), 1);
        w.schedule(Time(2500), 2);
        w.schedule(Time(2500), 0);
        assert!(w.advance(Time(2499)).is_empty());
        // 2500 rounds up to tick 3: not due until now covers tick 3.
        assert!(w.advance(Time(2999)).is_empty());
        assert_eq!(
            w.advance(Time(3000)),
            vec![(Time(2500), 0), (Time(2500), 2)]
        );
        assert_eq!(w.advance(Time(10_000)), vec![(Time(5500), 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = wheel();
        let _ = w.advance(Time(50_000));
        w.schedule(Time(10), 9);
        assert_eq!(w.advance(Time(50_000)), vec![(Time(10), 9)]);
    }

    #[test]
    fn cascades_across_levels_and_overflow() {
        let mut w = wheel();
        // One entry per level, plus one past the horizon.
        let deadlines = [
            Time(63 * 1000),                  // level 0
            Time(300 * 1000),                 // level 1
            Time(5000 * 1000),                // level 2
            Time(300_000 * 1000),             // level 3
            Time(64u64.pow(4) * 1000 + 1000), // overflow
        ];
        for (i, at) in deadlines.iter().enumerate() {
            w.schedule(*at, i as u32);
        }
        let mut fired = Vec::new();
        let mut now = Time::ZERO;
        while !w.is_empty() {
            now = w.next_deadline().expect("pending");
            fired.extend(w.advance(now));
        }
        assert_eq!(
            fired,
            deadlines
                .iter()
                .copied()
                .enumerate()
                .map(|(i, at)| (at, i as u32))
                .collect::<Vec<_>>()
        );
        assert!(now >= deadlines[4]);
    }

    #[test]
    fn next_deadline_is_a_usable_wakeup_bound() {
        let mut w = wheel();
        assert_eq!(w.next_deadline(), None);
        w.schedule(Time(7300), 1);
        // Exact when the entry sits in level 0.
        assert_eq!(w.next_deadline(), Some(Time(7300)));
        w.schedule(Time(1_000_000), 2);
        let _ = w.advance(Time(8000));
        // Far entry: bound is the next wrap, never past the deadline.
        let d = w.next_deadline().unwrap();
        assert!(d <= Time(1_000_000));
    }

    #[test]
    fn next_deadline_caps_at_wrap_when_outer_levels_hold_earlier_entries() {
        // A level-1 entry can come due before a level-0 entry when the
        // level-0 one lies beyond the next wrap: the bound must not skip
        // past the cascade boundary to the (later) level-0 deadline.
        let mut w = TimerWheel::new(Dur(1), Time::ZERO);
        assert!(w.advance(Time(874)).is_empty());
        // 1051 is 177 ticks out: parked in level 1 (block [1024, 1088)).
        w.schedule(Time(1051), 1);
        // Stop mid-block, before the 1024 cascade boundary.
        assert!(w.advance(Time(1018)).is_empty());
        // 1067 is 49 ticks out: level 0, but past the wrap at 1024.
        w.schedule(Time(1067), 2);
        let d = w.next_deadline().expect("two entries pending");
        assert!(d <= Time(1051), "bound {d:?} is past the level-1 deadline");
        // Waking at the bound and re-asking converges on both, in order.
        let mut fired = Vec::new();
        while !w.is_empty() {
            let now = w.next_deadline().expect("pending");
            fired.extend(w.advance(now));
        }
        assert_eq!(fired, vec![(Time(1051), 1), (Time(1067), 2)]);
    }

    #[test]
    fn many_random_timers_fire_exactly_once_in_order() {
        // Cheap LCG so the test is deterministic without dev-deps.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut w = wheel();
        let mut expect = Vec::new();
        for i in 0..5000u32 {
            let at = Time(next() % 2_000_000);
            w.schedule(at, i);
            expect.push((at, i));
        }
        let mut fired = Vec::new();
        let mut now = 0u64;
        while !w.is_empty() {
            now += 1 + next() % 100_000;
            fired.extend(w.advance(Time(now)));
        }
        expect.sort();
        assert_eq!(fired.len(), expect.len());
        assert_eq!(fired, expect);
    }

    #[test]
    fn sparse_far_future_advance_hops_not_steps() {
        // One entry a virtual hour out: advancing to it must terminate
        // promptly (level hops, not 3.6M tick steps) and still fire.
        let mut w = wheel();
        let hour = Time(3_600_000_000_000);
        w.schedule(hour, 7);
        assert!(w.advance(Time(hour.0 - 1)).is_empty());
        assert_eq!(w.advance(hour), vec![(hour, 7)]);
        assert!(w.is_empty());
    }

    #[test]
    fn clear_keeps_position_and_drops_entries() {
        let mut w = wheel();
        w.schedule(Time(5_000), 1);
        let _ = w.advance(Time(2_000));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
        // Position survived: an old deadline is still "past".
        w.schedule(Time(1_000), 2);
        assert_eq!(w.advance(Time(2_000)), vec![(Time(1_000), 2)]);
    }

    #[test]
    fn advance_into_reuses_buffers() {
        let mut w = wheel();
        let mut out = Vec::new();
        for round in 0..10u64 {
            for i in 0..100u32 {
                w.schedule(Time((round + 1) * 100_000 + u64::from(i) * 500), i);
            }
            out.clear();
            w.advance_into(Time((round + 2) * 100_000), &mut out);
            assert_eq!(out.len(), 100);
        }
        assert!(w.is_empty());
    }
}
