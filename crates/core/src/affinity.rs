//! Best-effort CPU affinity, dependency-free.
//!
//! Shared by the sweep runner (pinning measurement workers) and the
//! sharded service (pinning shard workers when `SvcConfig::pin` is set).
//! Affinity is an optimization of the measurement, never a correctness
//! requirement, so failures are silently ignored and non-Linux hosts
//! get a no-op.

/// Best-effort pin of the calling thread to `core` (Linux). Declared raw
/// to stay dependency-free; failures are ignored.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) {
    // A 1024-bit cpu_set_t, the kernel ABI's default width.
    let mut mask = [0u64; 16];
    let bit = core % 1024;
    mask[bit / 64] |= 1 << (bit % 64);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask outlives the call and the length matches it; pid 0
    // means "calling thread" for sched_setaffinity.
    unsafe {
        let _ = sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
    }
}

/// Best-effort pin of the calling thread to `core` (no-op off Linux).
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) {}
