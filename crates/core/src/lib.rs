#![warn(missing_docs)]

//! Leases: an efficient fault-tolerant mechanism for distributed cache
//! consistency.
//!
//! This crate implements the mechanism of Gray & Cheriton's SOSP 1989
//! paper. A *lease* is a contract the server grants a caching client over a
//! datum for a limited *term*: while any client holds an unexpired lease,
//! the server must obtain that client's approval (or wait for the lease to
//! expire) before the datum may be written. Reads served from cache require
//! a valid lease; writes are write-through. Because leases expire by the
//! passage of physical time, host crashes and message loss cost only
//! bounded delay — never consistency.
//!
//! The implementation is a pair of sans-IO state machines:
//!
//! * [`LeaseServer`] — grants and extends leases (with a pluggable
//!   [`TermPolicy`]), runs the write-approval protocol with the
//!   write-starvation guard, manages installed files by periodic multicast
//!   extension and delayed update (§4), and recovers from crashes either by
//!   honouring the persisted maximum term or from persistent lease records
//!   (§2, §5).
//! * [`LeaseClient`] — the write-through cache: read fast path under a
//!   valid lease, batched extension, conservative effective-term
//!   accounting (`t_c = t_s − (m_prop + 2·m_proc) − ε`, §3.1), approval
//!   callbacks, anticipatory renewal, LRU relinquish.
//!
//! Both are generic over the resource key `R` (file, name binding,
//! installed-file directory — anything `Copy + Eq + Hash + Ord`) and the
//! datum `D: Clone`, and perform no I/O: every call takes `now` and returns
//! the sends, timers, and persistence actions for the harness to apply.
//! The same machines run under the deterministic simulator (`lease-vsys`)
//! and under real threads and wall clocks (`lease-rt`).
//!
//! # Examples
//!
//! A single client reading through a server, driven by hand:
//!
//! ```
//! use lease_clock::{Dur, Time};
//! use lease_core::{
//!     ClientConfig, ClientInput, LeaseClient, LeaseServer, MemStorage, Op, OpId,
//!     ServerConfig, ServerInput, ClientId, ClientOutput, ServerOutput, ToServer,
//! };
//!
//! let mut store = MemStorage::new();
//! store.insert(7u64, "contents".to_string());
//! let mut server = LeaseServer::new(ServerConfig::fixed(Dur::from_secs(10)));
//! let mut client = LeaseClient::new(ClientId(0), ClientConfig::default());
//!
//! // The client misses and emits a Fetch...
//! let out = client.handle(Time::ZERO, ClientInput::Op { op: OpId(1), kind: Op::Read(7) });
//! let fetch = out.iter().find_map(|o| match o {
//!     ClientOutput::Send(m) => Some(m.clone()),
//!     _ => None,
//! }).unwrap();
//!
//! // ...the server grants a 10-second lease with the data...
//! let replies = server.handle(
//!     Time::from_millis(2),
//!     ServerInput::Msg { from: ClientId(0), msg: fetch },
//!     &mut store,
//! );
//! let grant = replies.into_iter().find_map(|o| match o {
//!     ServerOutput::Send { msg, .. } => Some(msg),
//!     _ => None,
//! }).unwrap();
//!
//! // ...and the client caches it: the next read is a local hit.
//! client.handle(Time::from_millis(4), ClientInput::Msg(grant));
//! assert!(client.lease_valid(7, Time::from_secs(5)));
//! ```

pub mod affinity;
pub mod client;
pub mod hash;
pub mod msg;
pub mod policy;
pub mod ring;
pub mod server;
pub mod stats;
pub mod storage;
pub mod table;
pub mod types;
pub mod wheel;

pub use client::{
    Backoff, ClientConfig, ClientCounters, ClientInput, ClientOutput, ClientTimer, LeaseClient, Op,
    OpError, OpOutcome, OpResult, RetryBudget,
};
pub use hash::{fx_hash, FxHasher};
pub use msg::{ErrorReason, Grant, ToClient, ToServer};
pub use policy::{
    AdaptiveTerm, ClosurePolicy, CompensatedTerm, FixedTerm, TermController, TermPolicy,
};
pub use server::{
    LeaseServer, RecoveryMode, ServerConfig, ServerCounters, ServerInput, ServerOutput, ServerTimer,
};
pub use stats::ResourceStats;
pub use storage::{MemStorage, Storage};
pub use table::{LeaseTable, ReferenceTable, SlabTable};
pub use types::{ClientId, LeaseHandle, OpId, ReqId, Resource, Version, WriteId};
pub use wheel::TimerWheel;
