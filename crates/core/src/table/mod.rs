//! The server's lease table.
//!
//! The paper sizes lease soft state at "a couple of pointers" per lease
//! (§2). Two implementations share one observable contract:
//!
//! * [`slab::SlabTable`] — the production table. Every record lives in a
//!   generational slab (`Vec` + free list, `u32` index + `u32` generation
//!   handles), each resource's holders form an intrusive doubly-linked
//!   list threaded through the slab, and expiry ordering is delegated to
//!   the hierarchical [`crate::wheel::TimerWheel`]. Grant, extend, and
//!   release are O(1) with zero allocation in steady state, and renewals
//!   presenting a valid [`LeaseHandle`] skip hashing entirely.
//! * [`reference::ReferenceTable`] — the original map-plus-`BTreeSet`
//!   table, kept as the executable specification. The equivalence
//!   property test (`tests/table_equiv.rs`) drives both through random
//!   grant/extend/release/prune/crash scripts and demands identical
//!   answers to every query.
//!
//! [`LeaseTable`] names the production implementation; code that wants
//! the spec asks for it explicitly.

pub mod reference;
pub mod slab;

pub use crate::types::LeaseHandle;
pub use reference::ReferenceTable;
pub use slab::SlabTable;

/// The lease table the server uses: the slab implementation.
pub type LeaseTable<R> = SlabTable<R>;
