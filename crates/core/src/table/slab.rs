//! The slab lease table: §2's "couple of pointers", taken literally.
//!
//! Every lease record is one fixed-size slot in a generational slab
//! (`Vec<Slot>` plus an intrusive free list). A resource's holders form a
//! doubly-linked list threaded *through* the slab via `prev`/`next` slot
//! indices, so the per-resource state in the `heads` map is a single
//! `u32`. Expiry ordering is delegated to the hierarchical
//! [`TimerWheel`]: granting schedules the slot index at its expiry, and
//! [`SlabTable::prune`] just advances the wheel and frees whatever fired.
//!
//! Costs, compared to [`crate::table::ReferenceTable`]:
//!
//! * grant/extend/release: one hash probe plus a short holder-list walk
//!   (the sharing set of one resource), versus two hash probes plus a
//!   B-tree remove+insert. With a valid [`LeaseHandle`] the extend path
//!   is a single slab load — no hashing at all.
//! * Steady state allocates nothing: freed slots recycle through the free
//!   list, the wheel recycles its redistribution buffers, and the holder
//!   list is intrusive, so no per-grant boxes or tree nodes exist.
//!
//! Handles are hints, never authority (see [`LeaseHandle`]): the table
//! checks generation parity, generation equality, resource, and holder
//! before trusting one, and otherwise falls back to the keyed path.
//!
//! One semantic difference from the reference, by design: the wheel
//! quantizes expiries to its tick, so [`SlabTable::prune`] may leave a
//! record in place for up to one tick past its expiry (it is removed by
//! the next prune at or after the tick boundary). Queries are unaffected
//! — they all filter by `expiry > now` — only `len`/`iter` can
//! transiently see the lagged record. [`SlabTable::with_tick`] with
//! `Dur(1)` (one nanosecond) makes prune exact; the equivalence property
//! test runs in that mode to compare against the reference verbatim.

use std::collections::HashMap;

use lease_clock::{Dur, Time};

use crate::types::{ClientId, LeaseHandle, Resource};
use crate::wheel::TimerWheel;

/// Null slot index, used as the list/free-list terminator.
const NIL: u32 = u32::MAX;

/// Default wheel tick: 1 ms. Lease terms in the paper are tens of seconds
/// (§3.2 settles on 10 s), so a millisecond of prune quantization is
/// noise, and it keeps the wheel's tick arithmetic far from overflow.
const DEFAULT_TICK: Dur = Dur::from_millis(1);

/// One lease record: §2's "couple of pointers worth of storage".
#[derive(Debug, Clone)]
struct Slot<R> {
    /// Odd while occupied, even while free; bumped on every transition,
    /// so a handle minted for one tenancy never validates for another.
    gen: u32,
    /// Previous holder of the same resource (`NIL` = list head).
    prev: u32,
    /// Next holder of the same resource; doubles as the free-list link
    /// while the slot is free.
    next: u32,
    /// The holder.
    client: ClientId,
    /// Server-clock expiry of the lease.
    expiry: Time,
    /// The leased resource (stale while the slot is free).
    resource: R,
}

/// The slab-backed lease table (see the module docs).
#[derive(Debug, Clone)]
pub struct SlabTable<R> {
    slots: Vec<Slot<R>>,
    /// Head of the free list threaded through `Slot::next` (`NIL` = none).
    free_head: u32,
    /// resource -> slot index of the first holder in its intrusive list.
    heads: HashMap<R, u32>,
    /// Expiry ordering: slot indices scheduled at their expiry. Never
    /// cancelled — release and extension leave stale entries behind, and
    /// prune discards any fired entry that no longer describes its slot.
    wheel: TimerWheel<u32>,
    /// Fired-entry scratch reused across prunes.
    scratch: Vec<(Time, u32)>,
    /// Occupied slots.
    live: usize,
    /// Leases ever granted: records created plus actual extensions
    /// (ignored shorter-or-equal re-grants do not count).
    granted_total: u64,
}

impl<R: Resource> SlabTable<R> {
    /// An empty table with the default (1 ms) prune quantum.
    pub fn new() -> SlabTable<R> {
        SlabTable::with_tick(DEFAULT_TICK)
    }

    /// An empty table whose prune lag is bounded by `tick`. `Dur(1)` (one
    /// nanosecond) makes [`SlabTable::prune`] exactly match the reference
    /// table; coarser ticks make the wheel cheaper to advance across long
    /// idle stretches.
    ///
    /// Panics if `tick` is zero.
    pub fn with_tick(tick: Dur) -> SlabTable<R> {
        SlabTable {
            slots: Vec::new(),
            free_head: NIL,
            heads: HashMap::new(),
            wheel: TimerWheel::new(tick, Time::ZERO),
            scratch: Vec::new(),
            live: 0,
            granted_total: 0,
        }
    }

    /// Records (or extends) `client`'s lease on `resource` until `expiry`
    /// and returns the record's handle. An extension never shortens: a
    /// later expiry replaces the record's, an earlier or equal one is
    /// ignored (the handle returned is still valid).
    pub fn grant(&mut self, resource: R, client: ClientId, expiry: Time) -> LeaseHandle {
        if let Some(idx) = self.find(resource, client) {
            self.extend_slot(idx, expiry);
            return self.handle_at(idx);
        }
        let idx = self.alloc(resource, client, expiry);
        self.link_front(resource, idx);
        self.wheel.schedule(expiry, idx);
        self.live += 1;
        self.granted_total += 1;
        self.handle_at(idx)
    }

    /// Handle-keyed extension: the renewal fast path. A handle that still
    /// names `client`'s lease on `resource` is honoured with one slab
    /// load; a null, stale, or mismatched handle falls back to
    /// [`SlabTable::grant`] (a clean miss — never a different record).
    /// Either way the returned handle names the live record.
    pub fn extend(
        &mut self,
        handle: LeaseHandle,
        resource: R,
        client: ClientId,
        expiry: Time,
    ) -> LeaseHandle {
        let idx = handle.idx as usize;
        if idx < self.slots.len() {
            let s = &self.slots[idx];
            // Odd generation = occupied; the parity check keeps a forged
            // even generation from ever matching a free slot.
            if s.gen == handle.gen && s.gen & 1 == 1 && s.resource == resource && s.client == client
            {
                self.extend_slot(handle.idx, expiry);
                return handle;
            }
        }
        self.grant(resource, client, expiry)
    }

    /// Removes `client`'s lease on `resource` (approval or relinquish).
    /// Any handle to the record is invalidated.
    pub fn release(&mut self, resource: R, client: ClientId) {
        if let Some(idx) = self.find(resource, client) {
            self.unlink(idx);
            self.free(idx);
        }
    }

    /// Unexpired holders of `resource` at `now`, sorted. Allocates;
    /// steady-state paths should prefer
    /// [`SlabTable::for_each_holder_at`] / [`SlabTable::holder_count_at`].
    pub fn holders_at(&self, resource: R, now: Time) -> Vec<ClientId> {
        let mut v = Vec::new();
        self.for_each_holder_at(resource, now, |c| v.push(c));
        v.sort_unstable();
        v
    }

    /// Calls `f` once per unexpired holder of `resource` at `now`, in no
    /// particular order. Zero allocation: one hash probe plus the walk.
    pub fn for_each_holder_at(&self, resource: R, now: Time, mut f: impl FnMut(ClientId)) {
        let mut idx = self.heads.get(&resource).copied().unwrap_or(NIL);
        while idx != NIL {
            let s = &self.slots[idx as usize];
            if s.expiry > now {
                f(s.client);
            }
            idx = s.next;
        }
    }

    /// How many unexpired holders `resource` has at `now`.
    pub fn holder_count_at(&self, resource: R, now: Time) -> usize {
        let mut n = 0;
        self.for_each_holder_at(resource, now, |_| n += 1);
        n
    }

    /// The expiry of `client`'s lease on `resource`, if unexpired at `now`.
    pub fn expiry_of(&self, resource: R, client: ClientId, now: Time) -> Option<Time> {
        self.find(resource, client)
            .map(|idx| self.slots[idx as usize].expiry)
            .filter(|e| *e > now)
    }

    /// The latest expiry among unexpired holders of `resource`, if any.
    pub fn max_expiry(&self, resource: R, now: Time) -> Option<Time> {
        let mut max = None;
        let mut idx = self.heads.get(&resource).copied().unwrap_or(NIL);
        while idx != NIL {
            let s = &self.slots[idx as usize];
            if s.expiry > now && max.is_none_or(|m| s.expiry > m) {
                max = Some(s.expiry);
            }
            idx = s.next;
        }
        max
    }

    /// The handle currently naming `client`'s lease on `resource`, if the
    /// record exists (expired-but-unpruned included).
    pub fn handle_of(&self, resource: R, client: ClientId) -> Option<LeaseHandle> {
        self.find(resource, client).map(|idx| self.handle_at(idx))
    }

    /// Physically frees records whose expiry has passed; returns how many.
    ///
    /// Advances the wheel to `now` and inspects every fired entry:
    /// occupied slot with `expiry <= now` — expired, free it; free slot or
    /// extended record — a stale entry, drop it. The one subtle case is an
    /// entry fired *early* relative to `now` (possible only when a grant
    /// landed behind the wheel's position and `prune` is then called with
    /// an older `now`): the record is live and this entry is its only one,
    /// so it is rescheduled to keep the invariant that every live record
    /// has a wheel entry at its exact expiry.
    ///
    /// May lag a true expiry by up to one wheel tick (see the module docs).
    pub fn prune(&mut self, now: Time) -> usize {
        let mut fired = std::mem::take(&mut self.scratch);
        fired.clear();
        self.wheel.advance_into(now, &mut fired);
        let mut removed = 0;
        for &(at, idx) in &fired {
            let s = &self.slots[idx as usize];
            if s.gen & 1 == 0 {
                continue; // released (or already freed this prune): stale
            }
            if s.expiry <= now {
                self.unlink(idx);
                self.free(idx);
                removed += 1;
            } else if s.expiry == at {
                // Fired early (backward-time prune): still this record's
                // only entry, so put it back.
                self.wheel.schedule(at, idx);
            }
            // Otherwise expiry > at: an extension superseded this entry
            // and scheduled its own; drop it.
        }
        self.scratch = fired;
        removed
    }

    /// A lower bound on the earliest instant at which
    /// [`SlabTable::prune`] could free a record — suitable for arming a
    /// wake-up timer (wake, prune, ask again). Unlike the reference
    /// table's exact answer this may be early (stale wheel entries, wheel
    /// cascade boundaries), never late. `None` when no records are live.
    pub fn next_expiry(&self) -> Option<Time> {
        if self.live == 0 {
            return None;
        }
        self.wheel.next_deadline()
    }

    /// Drops every record (server crash: the table is volatile soft
    /// state), keeping allocated capacity and the grant counter.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.heads.clear();
        self.wheel.clear();
        self.live = 0;
    }

    /// Live lease records, including expired-but-unpruned ones.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total leases ever granted (an actual extension counts as a grant;
    /// an ignored shorter-or-equal re-grant does not).
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// Iterates all live records as `(resource, client, expiry)`, ordered
    /// by `(expiry, resource, client)`. Allocates; reporting path only.
    pub fn iter(&self) -> impl Iterator<Item = (R, ClientId, Time)> + '_ {
        let mut v: Vec<(R, ClientId, Time)> = self
            .slots
            .iter()
            .filter(|s| s.gen & 1 == 1)
            .map(|s| (s.resource, s.client, s.expiry))
            .collect();
        v.sort_unstable_by_key(|&(r, c, e)| (e, r, c));
        v.into_iter()
    }

    /// The slot index of `client`'s record on `resource`, walking the
    /// resource's holder list.
    fn find(&self, resource: R, client: ClientId) -> Option<u32> {
        let mut idx = self.heads.get(&resource).copied().unwrap_or(NIL);
        while idx != NIL {
            let s = &self.slots[idx as usize];
            if s.client == client {
                return Some(idx);
            }
            idx = s.next;
        }
        None
    }

    /// Extends the record in occupied slot `idx` if `expiry` is later.
    fn extend_slot(&mut self, idx: u32, expiry: Time) {
        let s = &mut self.slots[idx as usize];
        if expiry > s.expiry {
            s.expiry = expiry;
            self.wheel.schedule(expiry, idx);
            self.granted_total += 1;
        }
    }

    /// Takes a slot from the free list (bumping its generation to odd) or
    /// grows the slab.
    fn alloc(&mut self, resource: R, client: ClientId, expiry: Time) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let s = &mut self.slots[idx as usize];
            self.free_head = s.next;
            s.gen = s.gen.wrapping_add(1); // even -> odd: occupied
            s.resource = resource;
            s.client = client;
            s.expiry = expiry;
            idx
        } else {
            let idx = self.slots.len();
            assert!(idx < NIL as usize, "slab table full");
            self.slots.push(Slot {
                gen: 1,
                prev: NIL,
                next: NIL,
                client,
                expiry,
                resource,
            });
            idx as u32
        }
    }

    /// Pushes occupied slot `idx` onto the front of its resource's list.
    fn link_front(&mut self, resource: R, idx: u32) {
        let old = self.heads.insert(resource, idx).unwrap_or(NIL);
        self.slots[idx as usize].prev = NIL;
        self.slots[idx as usize].next = old;
        if old != NIL {
            self.slots[old as usize].prev = idx;
        }
    }

    /// Removes occupied slot `idx` from its resource's holder list.
    fn unlink(&mut self, idx: u32) {
        let (prev, next, resource) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next, s.resource)
        };
        if prev == NIL {
            if next == NIL {
                self.heads.remove(&resource);
            } else {
                self.heads.insert(resource, next);
            }
        } else {
            self.slots[prev as usize].next = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Returns unlinked slot `idx` to the free list (generation to even).
    fn free(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        s.gen = s.gen.wrapping_add(1); // odd -> even: free
        s.next = self.free_head;
        self.free_head = idx;
        self.live -= 1;
    }

    /// The handle naming the record currently in occupied slot `idx`.
    fn handle_at(&self, idx: u32) -> LeaseHandle {
        LeaseHandle {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }
}

impl<R: Resource> Default for SlabTable<R> {
    fn default() -> SlabTable<R> {
        SlabTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    /// Exact-prune table, so tests can reason like the reference.
    fn exact() -> SlabTable<u64> {
        SlabTable::with_tick(Dur(1))
    }

    #[test]
    fn grant_and_query() {
        let mut tab = exact();
        tab.grant(7, C1, t(10));
        tab.grant(7, C2, t(12));
        assert_eq!(tab.holders_at(7, t(5)), vec![C1, C2]);
        assert_eq!(tab.holders_at(7, t(11)), vec![C2]);
        assert_eq!(tab.holders_at(7, t(12)), Vec::<ClientId>::new());
        assert_eq!(tab.max_expiry(7, t(5)), Some(t(12)));
        assert_eq!(tab.expiry_of(7, C1, t(5)), Some(t(10)));
        assert_eq!(tab.expiry_of(7, C1, t(10)), None);
        assert_eq!(tab.holder_count_at(7, t(5)), 2);
        assert_eq!(tab.holder_count_at(7, t(11)), 1);
    }

    #[test]
    fn extension_never_shortens() {
        let mut tab = exact();
        tab.grant(1, C1, t(10));
        tab.grant(1, C1, t(8)); // ignored
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(10)));
        tab.grant(1, C1, t(20)); // extends
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(20)));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn granted_total_counts_creations_and_real_extensions_only() {
        let mut tab = exact();
        tab.grant(1, C1, t(10));
        assert_eq!(tab.granted_total(), 1);
        tab.grant(1, C1, t(8)); // shorter: not counted
        tab.grant(1, C1, t(10)); // equal: not counted
        assert_eq!(tab.granted_total(), 1);
        tab.grant(1, C1, t(20)); // extended: counted
        assert_eq!(tab.granted_total(), 2);
        tab.grant(2, C2, t(5)); // created: counted
        assert_eq!(tab.granted_total(), 3);
    }

    #[test]
    fn release_removes_and_recycles_slot() {
        let mut tab = exact();
        let h1 = tab.grant(1, C1, t(10));
        tab.release(1, C1);
        assert!(tab.holders_at(1, t(0)).is_empty());
        assert!(tab.is_empty());
        tab.release(1, C1); // no-op
        let h2 = tab.grant(2, C2, t(20));
        // Slot recycled, generation advanced: the handles must differ.
        assert_eq!(h1.idx, h2.idx);
        assert_ne!(h1.gen, h2.gen);
    }

    #[test]
    fn handle_fast_path_extends() {
        let mut tab = exact();
        let h = tab.grant(1, C1, t(10));
        assert!(!h.is_null());
        let h2 = tab.extend(h, 1, C1, t(20));
        assert_eq!(h2, h); // same record, same tenancy
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(20)));
        assert_eq!(tab.len(), 1);
        // Shorter via handle is ignored, like grant.
        tab.extend(h, 1, C1, t(15));
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(20)));
        assert_eq!(tab.granted_total(), 2);
    }

    #[test]
    fn stale_handle_is_a_clean_miss_never_a_wrong_record() {
        let mut tab = exact();
        let h_old = tab.grant(1, C1, t(10));
        tab.release(1, C1);
        // Slot recycled by an unrelated record.
        let h_new = tab.grant(2, C2, t(30));
        assert_eq!(h_old.idx, h_new.idx);
        // The stale handle must not touch (2, C2): it falls back to the
        // keyed path and re-creates (1, C1).
        let h = tab.extend(h_old, 1, C1, t(40));
        assert_eq!(tab.expiry_of(2, C2, t(0)), Some(t(30))); // untouched
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(40)));
        assert!(!h.is_null());
        assert_ne!(h, h_old);
    }

    #[test]
    fn mismatched_resource_or_client_falls_back() {
        let mut tab = exact();
        let h = tab.grant(1, C1, t(10));
        // Valid generation, wrong key: must not extend (1, C1).
        tab.extend(h, 1, C2, t(50));
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(10)));
        assert_eq!(tab.expiry_of(1, C2, t(0)), Some(t(50)));
        tab.extend(h, 9, C1, t(60));
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(10)));
        assert_eq!(tab.expiry_of(9, C1, t(0)), Some(t(60)));
        // Null handle is always the keyed path.
        tab.extend(LeaseHandle::NULL, 1, C1, t(70));
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(70)));
    }

    #[test]
    fn prune_removes_only_expired() {
        let mut tab = exact();
        tab.grant(1, C1, t(5));
        tab.grant(1, C2, t(15));
        tab.grant(2, C1, t(10));
        assert_eq!(tab.prune(t(10)), 2); // expiry <= now
        assert_eq!(tab.len(), 1);
        assert_eq!(tab.holders_at(1, t(0)), vec![C2]);
    }

    #[test]
    fn prune_ignores_stale_wheel_entries() {
        let mut tab = exact();
        tab.grant(1, C1, t(5));
        tab.grant(1, C1, t(50)); // extension leaves a stale entry at t(5)
        assert_eq!(tab.prune(t(10)), 0);
        assert_eq!(tab.expiry_of(1, C1, t(10)), Some(t(50)));
        tab.grant(2, C2, t(8));
        tab.release(2, C2); // released record's entry is stale too
        assert_eq!(tab.prune(t(20)), 0);
        assert_eq!(tab.prune(t(50)), 1);
        assert!(tab.is_empty());
    }

    #[test]
    fn backward_prune_keeps_live_records_schedulable() {
        let mut tab = exact();
        tab.prune(t(100)); // wheel position moves to t(100)
        tab.grant(1, C1, t(50)); // grant behind the wheel's position
        assert_eq!(tab.prune(t(10)), 0); // older now: must not free it
        assert_eq!(tab.expiry_of(1, C1, t(10)), Some(t(50)));
        // ...and the record must still be prunable later.
        assert_eq!(tab.prune(t(60)), 1);
        assert!(tab.is_empty());
    }

    #[test]
    fn default_tick_prune_lags_at_most_one_tick() {
        let mut tab: SlabTable<u64> = SlabTable::new(); // 1 ms tick
        tab.grant(1, C1, Time::from_micros(500));
        // Queries are exact regardless of tick.
        assert_eq!(tab.holders_at(1, Time::from_micros(600)), vec![]);
        // Prune at 600 us cannot free it yet (entry sits on the 1 ms tick)...
        assert_eq!(tab.prune(Time::from_micros(600)), 0);
        assert_eq!(tab.len(), 1);
        // ...but the next tick boundary can.
        assert_eq!(tab.prune(Time::from_millis(1)), 1);
        assert!(tab.is_empty());
    }

    #[test]
    fn next_expiry_is_a_usable_lower_bound() {
        let mut tab = exact();
        assert_eq!(tab.next_expiry(), None);
        tab.grant(1, C1, t(10));
        tab.grant(2, C2, t(5));
        let d = tab.next_expiry().expect("live records");
        assert!(d <= t(5));
        tab.prune(t(5));
        let d = tab.next_expiry().expect("one live record");
        assert!(d <= t(10));
        tab.prune(t(10));
        assert_eq!(tab.next_expiry(), None);
    }

    #[test]
    fn clear_wipes_records_and_invalidates_handles() {
        let mut tab = exact();
        let h = tab.grant(1, C1, t(5));
        tab.grant(2, C2, t(5));
        tab.clear();
        assert!(tab.is_empty());
        assert_eq!(tab.granted_total(), 2); // counter survives for reporting
        assert_eq!(tab.next_expiry(), None);
        // A pre-crash handle must not resurrect state: keyed fallback.
        tab.extend(h, 1, C1, t(9));
        assert_eq!(tab.len(), 1);
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(9)));
    }

    #[test]
    fn iter_yields_ordered_records() {
        let mut tab = exact();
        tab.grant(2, C2, t(20));
        tab.grant(1, C1, t(10));
        let recs: Vec<_> = tab.iter().collect();
        assert_eq!(recs, vec![(1, C1, t(10)), (2, C2, t(20))]);
    }

    #[test]
    fn intrusive_list_survives_middle_removals() {
        let mut tab = exact();
        for c in 1..=5u32 {
            tab.grant(7, ClientId(c), t(u64::from(c) * 10));
        }
        tab.release(7, ClientId(3)); // middle
        tab.release(7, ClientId(5)); // head (last granted is front)
        tab.release(7, ClientId(1)); // tail
        assert_eq!(tab.holders_at(7, t(0)), vec![ClientId(2), ClientId(4)]);
        assert_eq!(tab.len(), 2);
        // Freed slots recycle without disturbing the survivors.
        tab.grant(8, C1, t(99));
        assert_eq!(tab.holders_at(7, t(0)), vec![ClientId(2), ClientId(4)]);
    }
}
