//! The reference lease table: the executable specification.
//!
//! This is the original map-based table — a `HashMap` of holders under
//! each resource plus a `BTreeSet` expiry index. Every grant pays two
//! hash probes and a B-tree remove+insert, and every `holders_at`
//! allocates; the slab table ([`crate::table::slab`]) exists to shed
//! exactly those costs. The reference survives because it is obviously
//! correct: the equivalence property test holds the slab to this
//! implementation's answers.
//!
//! All queries take `now` and ignore expired entries, so callers never see
//! stale holders; physically removing them happens on access or via
//! [`ReferenceTable::prune`].

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

use lease_clock::Time;

use crate::types::{ClientId, LeaseHandle, Resource};

/// The map-plus-index lease table (the spec; see the module docs).
#[derive(Debug, Clone)]
pub struct ReferenceTable<R> {
    /// resource -> holder -> expiry (server clock).
    holders: HashMap<R, HashMap<ClientId, Time>>,
    /// Expiry index for cheap pruning: ordered (expiry, resource, client).
    index: BTreeSet<(Time, R, ClientId)>,
    /// Leases ever granted (for reporting): records created plus actual
    /// extensions. A re-grant that would shorten (or merely equal) the
    /// existing expiry changes nothing and is not counted.
    granted_total: u64,
}

impl<R: Resource> ReferenceTable<R> {
    /// An empty table.
    pub fn new() -> ReferenceTable<R> {
        ReferenceTable {
            holders: HashMap::new(),
            index: BTreeSet::new(),
            granted_total: 0,
        }
    }

    /// Records (or extends) `client`'s lease on `resource` until `expiry`.
    ///
    /// An extension never shortens an existing lease: granting a later
    /// expiry replaces the record, an earlier (or equal) one is ignored.
    ///
    /// The returned handle is always [`LeaseHandle::NULL`]: the reference
    /// table has no slab to index into, so its "fast path" is the keyed
    /// path — which is exactly what a null handle means.
    pub fn grant(&mut self, resource: R, client: ClientId, expiry: Time) -> LeaseHandle {
        match self.holders.entry(resource).or_default().entry(client) {
            Entry::Occupied(mut e) => {
                let old = *e.get();
                if expiry > old {
                    self.index.remove(&(old, resource, client));
                    self.index.insert((expiry, resource, client));
                    e.insert(expiry);
                    self.granted_total += 1;
                }
            }
            Entry::Vacant(e) => {
                e.insert(expiry);
                self.index.insert((expiry, resource, client));
                self.granted_total += 1;
            }
        }
        LeaseHandle::NULL
    }

    /// Handle-keyed extension. The reference table has no handles, so
    /// this is [`ReferenceTable::grant`] — the behaviour a stale or null
    /// handle degrades to in the slab table, which is what makes the two
    /// observationally equivalent under any script.
    pub fn extend(
        &mut self,
        _handle: LeaseHandle,
        resource: R,
        client: ClientId,
        expiry: Time,
    ) -> LeaseHandle {
        self.grant(resource, client, expiry)
    }

    /// Removes `client`'s lease on `resource` (approval or relinquish).
    pub fn release(&mut self, resource: R, client: ClientId) {
        if let Some(m) = self.holders.get_mut(&resource) {
            if let Some(expiry) = m.remove(&client) {
                self.index.remove(&(expiry, resource, client));
            }
            if m.is_empty() {
                self.holders.remove(&resource);
            }
        }
    }

    /// Unexpired holders of `resource` at `now`, sorted.
    pub fn holders_at(&self, resource: R, now: Time) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = match self.holders.get(&resource) {
            Some(m) => m
                .iter()
                .filter(|(_, exp)| **exp > now)
                .map(|(c, _)| *c)
                .collect(),
            None => Vec::new(),
        };
        v.sort_unstable();
        v
    }

    /// Calls `f` once per unexpired holder of `resource` at `now`, in no
    /// particular order.
    pub fn for_each_holder_at(&self, resource: R, now: Time, mut f: impl FnMut(ClientId)) {
        if let Some(m) = self.holders.get(&resource) {
            for (c, exp) in m {
                if *exp > now {
                    f(*c);
                }
            }
        }
    }

    /// How many unexpired holders `resource` has at `now`.
    pub fn holder_count_at(&self, resource: R, now: Time) -> usize {
        self.holders
            .get(&resource)
            .map_or(0, |m| m.values().filter(|e| **e > now).count())
    }

    /// The expiry of `client`'s lease on `resource`, if unexpired at `now`.
    pub fn expiry_of(&self, resource: R, client: ClientId, now: Time) -> Option<Time> {
        self.holders
            .get(&resource)?
            .get(&client)
            .copied()
            .filter(|e| *e > now)
    }

    /// The latest expiry among unexpired holders of `resource`, if any.
    pub fn max_expiry(&self, resource: R, now: Time) -> Option<Time> {
        self.holders
            .get(&resource)?
            .values()
            .copied()
            .filter(|e| *e > now)
            .max()
    }

    /// Physically removes every lease expired at `now`; returns how many.
    pub fn prune(&mut self, now: Time) -> usize {
        let mut removed = 0;
        while let Some(&(expiry, resource, client)) = self.index.iter().next() {
            if expiry > now {
                break;
            }
            self.index.remove(&(expiry, resource, client));
            if let Some(m) = self.holders.get_mut(&resource) {
                m.remove(&client);
                if m.is_empty() {
                    self.holders.remove(&resource);
                }
            }
            removed += 1;
        }
        removed
    }

    /// The earliest expiry of any live record, pruned or not — the next
    /// instant at which [`ReferenceTable::prune`] could remove something.
    /// Lets a driver arm one timer instead of scanning the table.
    pub fn next_expiry(&self) -> Option<Time> {
        self.index.iter().next().map(|&(expiry, _, _)| expiry)
    }

    /// Drops everything (server crash: the table is volatile soft state).
    pub fn clear(&mut self) {
        self.holders.clear();
        self.index.clear();
    }

    /// Live lease records, including expired-but-unpruned ones.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total leases ever granted (an actual extension counts as a grant;
    /// an ignored shorter-or-equal re-grant does not).
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// Iterates all live records as `(resource, client, expiry)`, ordered
    /// by `(expiry, resource, client)`.
    pub fn iter(&self) -> impl Iterator<Item = (R, ClientId, Time)> + '_ {
        self.index.iter().map(|(e, r, c)| (*r, *c, *e))
    }
}

impl<R: Resource> Default for ReferenceTable<R> {
    fn default() -> ReferenceTable<R> {
        ReferenceTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn grant_and_query() {
        let mut tab = ReferenceTable::new();
        tab.grant(7u64, C1, t(10));
        tab.grant(7, C2, t(12));
        assert_eq!(tab.holders_at(7, t(5)), vec![C1, C2]);
        assert_eq!(tab.holders_at(7, t(11)), vec![C2]);
        assert_eq!(tab.holders_at(7, t(12)), Vec::<ClientId>::new());
        assert_eq!(tab.max_expiry(7, t(5)), Some(t(12)));
        assert_eq!(tab.expiry_of(7, C1, t(5)), Some(t(10)));
        assert_eq!(tab.expiry_of(7, C1, t(10)), None);
        assert_eq!(tab.holder_count_at(7, t(5)), 2);
        assert_eq!(tab.holder_count_at(7, t(11)), 1);
    }

    #[test]
    fn extension_never_shortens() {
        let mut tab = ReferenceTable::new();
        tab.grant(1u64, C1, t(10));
        tab.grant(1, C1, t(8)); // ignored
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(10)));
        tab.grant(1, C1, t(20)); // extends
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(20)));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn granted_total_counts_creations_and_real_extensions_only() {
        let mut tab = ReferenceTable::new();
        tab.grant(1u64, C1, t(10)); // created: counts
        assert_eq!(tab.granted_total(), 1);
        tab.grant(1, C1, t(8)); // shorter: ignored, must not count
        tab.grant(1, C1, t(10)); // equal: ignored, must not count
        assert_eq!(tab.granted_total(), 1);
        tab.grant(1, C1, t(20)); // actually extended: counts
        assert_eq!(tab.granted_total(), 2);
        tab.grant(2, C2, t(5)); // new record: counts
        assert_eq!(tab.granted_total(), 3);
    }

    #[test]
    fn release_removes() {
        let mut tab = ReferenceTable::new();
        tab.grant(1u64, C1, t(10));
        tab.release(1, C1);
        assert!(tab.holders_at(1, t(0)).is_empty());
        assert!(tab.is_empty());
        // Releasing again is a no-op.
        tab.release(1, C1);
    }

    #[test]
    fn prune_removes_only_expired() {
        let mut tab = ReferenceTable::new();
        tab.grant(1u64, C1, t(5));
        tab.grant(1, C2, t(15));
        tab.grant(2, C1, t(10));
        assert_eq!(tab.prune(t(10)), 2); // C1@5 and 2/C1@10 (expiry <= now)
        assert_eq!(tab.len(), 1);
        assert_eq!(tab.holders_at(1, t(0)), vec![C2]);
    }

    #[test]
    fn next_expiry_tracks_index_head() {
        let mut tab = ReferenceTable::new();
        assert_eq!(tab.next_expiry(), None);
        tab.grant(1u64, C1, t(10));
        tab.grant(2, C2, t(5));
        assert_eq!(tab.next_expiry(), Some(t(5)));
        tab.prune(t(5));
        assert_eq!(tab.next_expiry(), Some(t(10)));
    }

    #[test]
    fn clear_wipes_everything() {
        let mut tab = ReferenceTable::new();
        tab.grant(1u64, C1, t(5));
        tab.grant(2, C2, t(5));
        tab.clear();
        assert!(tab.is_empty());
        assert_eq!(tab.granted_total(), 2); // counter survives for reporting
    }

    #[test]
    fn iter_yields_ordered_records() {
        let mut tab = ReferenceTable::new();
        tab.grant(2u64, C2, t(20));
        tab.grant(1, C1, t(10));
        let recs: Vec<_> = tab.iter().collect();
        assert_eq!(recs, vec![(1, C1, t(10)), (2, C2, t(20))]);
    }
}
