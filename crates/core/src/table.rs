//! The server's lease table.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

use lease_clock::Time;

use crate::types::{ClientId, Resource};

/// The soft state the server keeps per granted lease.
///
/// The paper sizes this at "a couple of pointers" per lease (§2); here it
/// is one `(ClientId, Time)` pair per holder under the resource key, plus
/// an expiry index so the table can be pruned lazily without scans.
///
/// All queries take `now` and ignore expired entries, so callers never see
/// stale holders; physically removing them happens on access or via
/// [`LeaseTable::prune`].
#[derive(Debug, Clone)]
pub struct LeaseTable<R> {
    /// resource -> holder -> expiry (server clock).
    holders: HashMap<R, HashMap<ClientId, Time>>,
    /// Expiry index for cheap pruning: ordered (expiry, resource, client).
    index: BTreeSet<(Time, R, ClientId)>,
    /// Leases ever granted (for reporting).
    granted_total: u64,
}

impl<R: Resource> LeaseTable<R> {
    /// An empty table.
    pub fn new() -> LeaseTable<R> {
        LeaseTable {
            holders: HashMap::new(),
            index: BTreeSet::new(),
            granted_total: 0,
        }
    }

    /// Records (or extends) `client`'s lease on `resource` until `expiry`.
    ///
    /// An extension never shortens an existing lease: granting a later
    /// expiry replaces the record, an earlier one is ignored.
    pub fn grant(&mut self, resource: R, client: ClientId, expiry: Time) {
        self.granted_total += 1;
        match self.holders.entry(resource).or_default().entry(client) {
            Entry::Occupied(mut e) => {
                let old = *e.get();
                if expiry > old {
                    self.index.remove(&(old, resource, client));
                    self.index.insert((expiry, resource, client));
                    e.insert(expiry);
                }
            }
            Entry::Vacant(e) => {
                e.insert(expiry);
                self.index.insert((expiry, resource, client));
            }
        }
    }

    /// Removes `client`'s lease on `resource` (approval or relinquish).
    pub fn release(&mut self, resource: R, client: ClientId) {
        if let Some(m) = self.holders.get_mut(&resource) {
            if let Some(expiry) = m.remove(&client) {
                self.index.remove(&(expiry, resource, client));
            }
            if m.is_empty() {
                self.holders.remove(&resource);
            }
        }
    }

    /// Unexpired holders of `resource` at `now`.
    pub fn holders_at(&self, resource: R, now: Time) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = match self.holders.get(&resource) {
            Some(m) => m
                .iter()
                .filter(|(_, exp)| **exp > now)
                .map(|(c, _)| *c)
                .collect(),
            None => Vec::new(),
        };
        v.sort_unstable();
        v
    }

    /// The expiry of `client`'s lease on `resource`, if unexpired at `now`.
    pub fn expiry_of(&self, resource: R, client: ClientId, now: Time) -> Option<Time> {
        self.holders
            .get(&resource)?
            .get(&client)
            .copied()
            .filter(|e| *e > now)
    }

    /// The latest expiry among unexpired holders of `resource`, if any.
    pub fn max_expiry(&self, resource: R, now: Time) -> Option<Time> {
        self.holders
            .get(&resource)?
            .values()
            .copied()
            .filter(|e| *e > now)
            .max()
    }

    /// Physically removes every lease expired at `now`; returns how many.
    pub fn prune(&mut self, now: Time) -> usize {
        let mut removed = 0;
        while let Some(&(expiry, resource, client)) = self.index.iter().next() {
            if expiry > now {
                break;
            }
            self.index.remove(&(expiry, resource, client));
            if let Some(m) = self.holders.get_mut(&resource) {
                m.remove(&client);
                if m.is_empty() {
                    self.holders.remove(&resource);
                }
            }
            removed += 1;
        }
        removed
    }

    /// The earliest expiry of any live record, pruned or not — the next
    /// instant at which [`LeaseTable::prune`] could remove something.
    /// Lets a driver arm one timer instead of scanning the table.
    pub fn next_expiry(&self) -> Option<Time> {
        self.index.iter().next().map(|&(expiry, _, _)| expiry)
    }

    /// Drops everything (server crash: the table is volatile soft state).
    pub fn clear(&mut self) {
        self.holders.clear();
        self.index.clear();
    }

    /// Live lease records, including expired-but-unpruned ones.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total leases ever granted (extension counts as a grant).
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// Iterates all live records as `(resource, client, expiry)`.
    pub fn iter(&self) -> impl Iterator<Item = (R, ClientId, Time)> + '_ {
        self.index.iter().map(|(e, r, c)| (*r, *c, *e))
    }
}

impl<R: Resource> Default for LeaseTable<R> {
    fn default() -> LeaseTable<R> {
        LeaseTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: ClientId = ClientId(1);
    const C2: ClientId = ClientId(2);

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn grant_and_query() {
        let mut tab = LeaseTable::new();
        tab.grant(7u64, C1, t(10));
        tab.grant(7, C2, t(12));
        assert_eq!(tab.holders_at(7, t(5)), vec![C1, C2]);
        assert_eq!(tab.holders_at(7, t(11)), vec![C2]);
        assert_eq!(tab.holders_at(7, t(12)), Vec::<ClientId>::new());
        assert_eq!(tab.max_expiry(7, t(5)), Some(t(12)));
        assert_eq!(tab.expiry_of(7, C1, t(5)), Some(t(10)));
        assert_eq!(tab.expiry_of(7, C1, t(10)), None);
    }

    #[test]
    fn extension_never_shortens() {
        let mut tab = LeaseTable::new();
        tab.grant(1u64, C1, t(10));
        tab.grant(1, C1, t(8)); // ignored
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(10)));
        tab.grant(1, C1, t(20)); // extends
        assert_eq!(tab.expiry_of(1, C1, t(0)), Some(t(20)));
        assert_eq!(tab.len(), 1);
    }

    #[test]
    fn release_removes() {
        let mut tab = LeaseTable::new();
        tab.grant(1u64, C1, t(10));
        tab.release(1, C1);
        assert!(tab.holders_at(1, t(0)).is_empty());
        assert!(tab.is_empty());
        // Releasing again is a no-op.
        tab.release(1, C1);
    }

    #[test]
    fn prune_removes_only_expired() {
        let mut tab = LeaseTable::new();
        tab.grant(1u64, C1, t(5));
        tab.grant(1, C2, t(15));
        tab.grant(2, C1, t(10));
        assert_eq!(tab.prune(t(10)), 2); // C1@5 and 2/C1@10 (expiry <= now)
        assert_eq!(tab.len(), 1);
        assert_eq!(tab.holders_at(1, t(0)), vec![C2]);
    }

    #[test]
    fn next_expiry_tracks_index_head() {
        let mut tab = LeaseTable::new();
        assert_eq!(tab.next_expiry(), None);
        tab.grant(1u64, C1, t(10));
        tab.grant(2, C2, t(5));
        assert_eq!(tab.next_expiry(), Some(t(5)));
        tab.prune(t(5));
        assert_eq!(tab.next_expiry(), Some(t(10)));
    }

    #[test]
    fn clear_wipes_everything() {
        let mut tab = LeaseTable::new();
        tab.grant(1u64, C1, t(5));
        tab.grant(2, C2, t(5));
        tab.clear();
        assert!(tab.is_empty());
        assert_eq!(tab.granted_total(), 2); // counter survives for reporting
    }

    #[test]
    fn iter_yields_ordered_records() {
        let mut tab = LeaseTable::new();
        tab.grant(2u64, C2, t(20));
        tab.grant(1, C1, t(10));
        let recs: Vec<_> = tab.iter().collect();
        assert_eq!(recs, vec![(1, C1, t(10)), (2, C2, t(20))]);
    }
}
