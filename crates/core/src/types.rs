//! Protocol identifiers shared by client and server.

use std::fmt;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// Identifies a client cache to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

/// A client-local operation id: one logical read or write submitted by the
/// application. Several ops may wait on one network request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u64);

/// A client-local request id, carried on the wire and echoed in replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqId(pub u64);

/// A server-assigned id for a write awaiting approval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WriteId(pub u64);

/// An opaque cookie naming one lease record inside the server's slab
/// table: a slot index plus the slot's generation at grant time.
///
/// The server returns a handle with every grant; a client that echoes it
/// on renewal lets the server extend the lease with one slab load instead
/// of two hash probes (the paper's "couple of pointers" record, §2,
/// addressed directly). Handles are *hints*, never authority: the table
/// validates generation, resource, and holder before using one, so a
/// stale handle — slot recycled, server restarted, or a forged value —
/// degrades to the keyed lookup path and can never touch the wrong
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LeaseHandle {
    /// Slab slot index (`u32::MAX` = null).
    pub(crate) idx: u32,
    /// Slot generation at grant time (odd while the slot is occupied).
    pub(crate) gen: u32,
}

impl LeaseHandle {
    /// The null handle: names no record, always takes the keyed path.
    pub const NULL: LeaseHandle = LeaseHandle {
        idx: u32::MAX,
        gen: 0,
    };

    /// Whether this is the null handle.
    pub fn is_null(self) -> bool {
        self.idx == u32::MAX
    }

    /// Splits the handle into its `(idx, gen)` raw parts for wire
    /// transport. Safe to expose: handles are hints, and the table
    /// validates generation/resource/holder before honoring one, so a
    /// forged or corrupted pair degrades to the keyed lookup path.
    pub fn to_raw(self) -> (u32, u32) {
        (self.idx, self.gen)
    }

    /// Rebuilds a handle from [`LeaseHandle::to_raw`] parts (the wire
    /// decode path).
    pub fn from_raw(idx: u32, gen: u32) -> LeaseHandle {
        LeaseHandle { idx, gen }
    }
}

impl Default for LeaseHandle {
    fn default() -> LeaseHandle {
        LeaseHandle::NULL
    }
}

/// A monotonically increasing per-resource version. Version 0 means "never
/// written".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The next version.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The datum a lease covers.
///
/// The paper leases file contents, but also name-to-file bindings and
/// permission information (§2), and whole directories of installed files
/// (§4) — so the protocol core is generic over the resource key. Anything
/// cheap to copy, hash, and order qualifies.
pub trait Resource: Copy + Eq + Hash + Ord + fmt::Debug + Send + 'static {}

impl<T: Copy + Eq + Hash + Ord + fmt::Debug + Send + 'static> Resource for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_and_next() {
        assert!(Version(2) > Version(1));
        assert_eq!(Version::default(), Version(0));
        assert_eq!(Version(7).next(), Version(8));
        assert_eq!(format!("{}", Version(3)), "v3");
    }

    fn takes_resource<R: Resource>(_r: R) {}

    #[test]
    fn blanket_resource_impl() {
        takes_resource(5u64);
        takes_resource((1u32, 2u32));
        takes_resource('x');
    }
}
