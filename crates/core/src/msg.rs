//! Wire messages between client caches and the server.

use lease_clock::{Dur, Time};

use crate::types::{LeaseHandle, ReqId, Version, WriteId};

/// Messages from a client cache to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ToServer<R, D> {
    /// Fetch or revalidate `resource` and grant a lease on it.
    ///
    /// `cached` carries the client's cached version so the server can reply
    /// without data when nothing changed. `also_extend` piggybacks
    /// extension of every other lease the cache still holds — the batching
    /// the paper recommends ("a cache should extend together all leases
    /// over all files that it still holds", §3.1). Each entry echoes the
    /// [`LeaseHandle`] from the lease's last grant so the server can renew
    /// with one slab load; [`LeaseHandle::NULL`] means "look it up".
    Fetch {
        /// Request id echoed in the reply.
        req: ReqId,
        /// The resource the client needs now.
        resource: R,
        /// The version the client holds, if any.
        cached: Option<Version>,
        /// Other held leases to extend opportunistically.
        also_extend: Vec<(R, Version, LeaseHandle)>,
    },
    /// Anticipatory renewal of held leases (§4 option); no op waits on it.
    Renew {
        /// Request id echoed in the reply.
        req: ReqId,
        /// Held leases to extend, each echoing its last grant's handle.
        resources: Vec<(R, Version, LeaseHandle)>,
    },
    /// A write-through write. The request carries the writer's implicit
    /// approval of its own lease (§3.1, footnote 5).
    Write {
        /// Request id echoed in the reply.
        req: ReqId,
        /// The resource to write.
        resource: R,
        /// The new contents.
        data: D,
    },
    /// Approval of a pending write, sent in response to
    /// [`ToClient::ApprovalRequest`]. Granting approval invalidates the
    /// approver's cached copy and releases its lease on the datum.
    Approve {
        /// The write being approved.
        write_id: WriteId,
    },
    /// Voluntary release of leases (cache eviction).
    Relinquish {
        /// The resources released.
        resources: Vec<R>,
    },
}

/// One lease grant inside a [`ToClient::Grants`] reply.
#[derive(Debug, Clone, PartialEq)]
pub struct Grant<R, D> {
    /// The covered resource.
    pub resource: R,
    /// Current version at the server.
    pub version: Version,
    /// Contents, omitted when the client's cached version is current.
    pub data: Option<D>,
    /// Lease term `t_s`, measured at the server from receipt of the
    /// request. A zero term grants the data but no caching rights.
    pub term: Dur,
    /// The server's cookie for this lease record. Echoing it on renewal
    /// (`also_extend` / [`ToServer::Renew`]) lets the server extend with
    /// one slab load; clients may always send [`LeaseHandle::NULL`]
    /// instead, and must treat the value as opaque.
    pub handle: LeaseHandle,
}

/// Messages from the server to a client cache.
#[derive(Debug, Clone, PartialEq)]
pub enum ToClient<R, D> {
    /// Reply to [`ToServer::Fetch`] or [`ToServer::Renew`]: one or more
    /// grants. A fetch whose target is blocked by a pending write may be
    /// answered in two parts: the piggybacked extensions immediately, the
    /// target grant once the write resolves.
    Grants {
        /// The request being answered.
        req: ReqId,
        /// The grants.
        grants: Vec<Grant<R, D>>,
    },
    /// A write committed; the writer also receives a fresh lease.
    WriteDone {
        /// The request being answered.
        req: ReqId,
        /// The written resource.
        resource: R,
        /// The committed version.
        version: Version,
        /// Fresh lease term for the writer's new copy.
        term: Dur,
    },
    /// Callback asking the leaseholder to approve a write (§2).
    ApprovalRequest {
        /// Id to echo in [`ToServer::Approve`].
        write_id: WriteId,
        /// The resource about to be written.
        resource: R,
        /// The version the pending write supersedes: after approving, the
        /// client must treat any copy with `version <= replaces` as stale
        /// (its barrier against in-flight pre-write grants).
        replaces: Version,
    },
    /// Periodic multicast extension of installed-file leases (§4).
    ///
    /// Unlike unicast grants, the client cannot anchor the term to a
    /// request it sent, so the message carries the server's send time and
    /// correctness relies on clocks synchronized within ε (§5).
    InstalledExtend {
        /// Covered resources with their current versions; a client whose
        /// cached version differs must invalidate instead of extending
        /// (the datum changed while its lease was expired).
        resources: Vec<(R, Version)>,
        /// Term measured from `sent_at`.
        term: Dur,
        /// Server-clock send time.
        sent_at: Time,
    },
    /// The server could not serve a request (e.g. unknown resource).
    Error {
        /// The failed request.
        req: ReqId,
        /// Human-readable reason.
        reason: ErrorReason,
    },
}

/// Why the server refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorReason {
    /// The resource does not exist in primary storage.
    NoSuchResource,
    /// The server is overloaded and refused to process the request at all.
    ///
    /// Distinct from transport backpressure (which means "the mailbox was
    /// full, retransmit the same bytes"): a shed request *was* accepted by
    /// the transport and then deliberately refused by admission control,
    /// and the client should pace itself by `retry_after` before trying
    /// again. Shedding a fetch never creates a consistency hazard — no
    /// lease is granted, so the client simply has no caching rights.
    Shed {
        /// Server-suggested pause before retrying.
        retry_after: Dur,
    },
}

impl<R, D> ToServer<R, D> {
    /// The request id, if this message carries one.
    pub fn req(&self) -> Option<ReqId> {
        match self {
            ToServer::Fetch { req, .. }
            | ToServer::Renew { req, .. }
            | ToServer::Write { req, .. } => Some(*req),
            ToServer::Approve { .. } | ToServer::Relinquish { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_extraction() {
        let m: ToServer<u64, Vec<u8>> = ToServer::Fetch {
            req: ReqId(7),
            resource: 1,
            cached: None,
            also_extend: vec![],
        };
        assert_eq!(m.req(), Some(ReqId(7)));
        let a: ToServer<u64, Vec<u8>> = ToServer::Approve {
            write_id: WriteId(1),
        };
        assert_eq!(a.req(), None);
    }
}
