//! Lease-term policies: how the server picks `t_s`.
//!
//! Section 4 of the paper: "the server can set the lease term based on the
//! file access characteristics for the requested file as well as the
//! propagation delay to the client. In particular, a heavily write-shared
//! file might be given a lease term of zero. [...] In general, a server can
//! dynamically pick lease terms on a per file and per client cache basis
//! using the analytic model."

use lease_clock::Dur;

use crate::stats::ResourceStats;
use crate::types::{ClientId, Resource};

/// Picks the term for a lease the server is about to grant.
pub trait TermPolicy<R: Resource>: Send {
    /// The term for a grant of `resource` to `client`, given the observed
    /// access statistics. Returning [`Dur::ZERO`] serves the data without
    /// caching rights; [`Dur::MAX`] is an infinite lease (the revised-Andrew
    /// configuration, useful as a baseline).
    fn term(&mut self, resource: &R, client: ClientId, stats: &ResourceStats) -> Dur;
}

/// The same term for every grant — the configuration the paper's model
/// sweeps over.
#[derive(Debug, Clone, Copy)]
pub struct FixedTerm(pub Dur);

impl<R: Resource> TermPolicy<R> for FixedTerm {
    fn term(&mut self, _resource: &R, _client: ClientId, _stats: &ResourceStats) -> Dur {
        self.0
    }
}

/// The knee rule derived from the paper's model: the shortest term that
/// already captures a `1 - theta` fraction of the extension-traffic
/// savings.
///
/// From formula (1), the extension message rate relative to a zero term is
/// `1 / (1 + R·t_c)`; driving it to `theta` needs `t = (1/theta - 1) / R`.
/// With the paper's `R = 0.864/s` and `theta = 0.1`, this yields ≈ 10.4 s —
/// the "term of (say) 10 seconds" the paper recommends. When the benefit
/// factor `α ≤ 1` (heavy write sharing), a non-zero term only adds load, so
/// the rule returns zero (§3.1).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveTerm {
    /// Target residual fraction of extension traffic (e.g. 0.1).
    pub theta: f64,
    /// Lower clamp for non-zero terms.
    pub min: Dur,
    /// Upper clamp.
    pub max: Dur,
}

impl AdaptiveTerm {
    /// A sensible default: 10% residual traffic, terms clamped to 1–60 s.
    pub fn new() -> AdaptiveTerm {
        AdaptiveTerm {
            theta: 0.1,
            min: Dur::from_secs(1),
            max: Dur::from_secs(60),
        }
    }

    /// The knee term for an observed read rate, before clamping.
    pub fn knee(theta: f64, read_rate: f64) -> Dur {
        if read_rate <= 0.0 {
            Dur::MAX
        } else {
            Dur::from_secs_f64((1.0 / theta - 1.0) / read_rate)
        }
    }
}

impl Default for AdaptiveTerm {
    fn default() -> AdaptiveTerm {
        AdaptiveTerm::new()
    }
}

impl<R: Resource> TermPolicy<R> for AdaptiveTerm {
    fn term(&mut self, _resource: &R, _client: ClientId, stats: &ResourceStats) -> Dur {
        if stats.alpha() <= 1.0 {
            return Dur::ZERO;
        }
        // The per-cache read rate is what amortizes extensions; the stats
        // track the aggregate rate, so divide by the sharing degree.
        let per_cache_rate = stats.read_rate() / stats.sharing();
        Ord::clamp(
            AdaptiveTerm::knee(self.theta, per_cache_rate),
            self.min,
            self.max,
        )
    }
}

/// Wraps a policy with per-client term compensation for distant clients.
///
/// §4: "A lease given to a distant client could be increased to compensate
/// for the amount the lease term is reduced by the propagation delay and
/// for the extra delay incurred by the client to extend the lease." The
/// effective client-side term is `t_s − (m_prop + 2·m_proc) − ε`; adding
/// the client's round-trip overhead back restores its effective term to
/// what near clients enjoy.
pub struct CompensatedTerm<R> {
    /// The base policy.
    pub inner: Box<dyn TermPolicy<R>>,
    /// Extra term per client (its measured request overhead).
    pub extra: std::collections::HashMap<ClientId, Dur>,
}

impl<R: Resource> CompensatedTerm<R> {
    /// Wraps `inner` with an empty compensation table.
    pub fn new(inner: Box<dyn TermPolicy<R>>) -> CompensatedTerm<R> {
        CompensatedTerm {
            inner,
            extra: std::collections::HashMap::new(),
        }
    }

    /// Registers `extra` term for a distant client.
    pub fn compensate(mut self, client: ClientId, extra: Dur) -> CompensatedTerm<R> {
        self.extra.insert(client, extra);
        self
    }
}

impl<R: Resource> TermPolicy<R> for CompensatedTerm<R> {
    fn term(&mut self, resource: &R, client: ClientId, stats: &ResourceStats) -> Dur {
        let base = self.inner.term(resource, client, stats);
        if base.is_zero() || base.is_infinite() {
            return base; // Zero stays zero; infinite needs no help.
        }
        base.saturating_add(self.extra.get(&client).copied().unwrap_or(Dur::ZERO))
    }
}

/// A watermark-driven overload controller that degrades granted terms
/// toward a floor while the server runs hot, and recovers hysteretically
/// when calm.
///
/// Formula (1) run as a runtime controller: a shorter term trades renewal
/// traffic for a smaller outstanding-lease population and faster
/// write-invalidation — exactly what an overloaded server wants, because
/// its holder table stops growing and misbehaving holders expire sooner.
/// The controller only ever *shortens* the policy's term, so every bound
/// the rest of the system relies on still holds: §5 MaxTerm recovery waits
/// long enough for the *configured* maximum, and the quorum grantor's
/// drift-discounted usable term is an upper bound the degraded term stays
/// under.
///
/// The level moves with hysteresis: load at or above `high` ratchets it up
/// by `attack` per observation, load at or below `low` decays it by
/// `decay`, and the band between holds it steady — so a server oscillating
/// around the watermark doesn't flap its terms.
#[derive(Debug, Clone, Copy)]
pub struct TermController {
    /// Degraded terms never go below this (zero = allowed to degrade all
    /// the way to uncached service).
    pub floor: Dur,
    /// Load (0..=1) at or below which the level decays toward 0.
    pub low: f64,
    /// Load (0..=1) at or above which the level rises toward 1.
    pub high: f64,
    /// Level increase per overloaded observation.
    pub attack: f64,
    /// Level decrease per calm observation.
    pub decay: f64,
    /// Holder-table occupancy is measured against this capacity (0
    /// disables the table signal; mailbox depth can still drive the
    /// controller through [`TermController::observe`]).
    pub table_capacity: usize,
    level: f64,
}

impl TermController {
    /// A controller with the given floor and watermarks; fast attack
    /// (reacts within a few observations) and slow decay (recovers over
    /// tens), the usual shape for overload control.
    pub fn new(floor: Dur, low: f64, high: f64) -> TermController {
        TermController {
            floor,
            low,
            high,
            attack: 0.25,
            decay: 0.02,
            table_capacity: 0,
            level: 0.0,
        }
    }

    /// Sets the holder-table capacity the occupancy signal is measured
    /// against.
    pub fn with_table_capacity(mut self, cap: usize) -> TermController {
        self.table_capacity = cap;
        self
    }

    /// Feeds one load observation (0 = idle, 1 = saturated) into the
    /// hysteresis loop.
    pub fn observe(&mut self, load: f64) {
        let load = load.clamp(0.0, 1.0);
        if load >= self.high {
            self.level = (self.level + self.attack).min(1.0);
        } else if load <= self.low {
            self.level = (self.level - self.decay).max(0.0);
        }
        // Between the watermarks: hold (hysteresis band).
    }

    /// Current degradation level: 0 = terms untouched, 1 = floored.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Applies the current level to a policy-chosen term. Zero and
    /// infinite terms pass through (zero already grants nothing to track;
    /// infinite is an explicit operator choice the controller must not
    /// silently revoke), as do terms at or under the floor.
    pub fn apply(&self, term: Dur) -> Dur {
        if self.level <= 0.0 || term.is_zero() || term.is_infinite() || term <= self.floor {
            return term;
        }
        self.floor + (term.saturating_sub(self.floor)).mul_f64(1.0 - self.level)
    }
}

/// The decision function of a [`ClosurePolicy`].
pub type TermFn<R> = Box<dyn FnMut(&R, ClientId, &ResourceStats) -> Dur + Send>;

/// An arbitrary policy from a closure, for experiments.
pub struct ClosurePolicy<R>(
    /// The decision function.
    pub TermFn<R>,
);

impl<R: Resource> TermPolicy<R> for ClosurePolicy<R> {
    fn term(&mut self, resource: &R, client: ClientId, stats: &ResourceStats) -> Dur {
        (self.0)(resource, client, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lease_clock::Time;

    fn stats_with(reads_per_sec: f64, writes_per_sec: f64, sharers: usize) -> ResourceStats {
        let mut s = ResourceStats::new(Dur::from_secs(10));
        if reads_per_sec > 0.0 {
            let gap_ms = (1000.0 / reads_per_sec) as u64;
            for i in 1..=300u64 {
                s.on_read(Time::from_millis(i * gap_ms));
            }
        }
        if writes_per_sec > 0.0 {
            let gap_ms = (1000.0 / writes_per_sec) as u64;
            for i in 1..=300u64 {
                s.on_write(Time::from_millis(i * gap_ms), sharers);
            }
        }
        s
    }

    #[test]
    fn fixed_term_is_constant() {
        let mut p = FixedTerm(Dur::from_secs(10));
        let s = stats_with(1.0, 0.0, 1);
        let t = TermPolicy::<u64>::term(&mut p, &1, ClientId(0), &s);
        assert_eq!(t, Dur::from_secs(10));
    }

    #[test]
    fn knee_matches_paper_example() {
        // R = 0.864/s, theta = 0.1 -> about 10.4 s.
        let t = AdaptiveTerm::knee(0.1, 0.864);
        assert!((t.as_secs_f64() - 10.42).abs() < 0.05, "{t}");
    }

    #[test]
    fn adaptive_zeroes_write_shared_resources() {
        // Heavy write sharing: alpha = 2R/(SW) = 2*1/(8*2) < 1.
        let s = stats_with(1.0, 2.0, 8);
        assert!(s.alpha() < 1.0, "alpha = {}", s.alpha());
        let mut p = AdaptiveTerm::new();
        assert_eq!(
            TermPolicy::<u64>::term(&mut p, &1, ClientId(0), &s),
            Dur::ZERO
        );
    }

    #[test]
    fn adaptive_grants_long_terms_to_read_mostly() {
        let s = stats_with(2.0, 0.01, 1);
        let mut p = AdaptiveTerm::new();
        let t = TermPolicy::<u64>::term(&mut p, &1, ClientId(0), &s);
        assert!(t >= Dur::from_secs(1) && t <= Dur::from_secs(60));
        assert!(t.as_secs_f64() > 3.0, "expected multi-second term, got {t}");
    }

    #[test]
    fn compensation_extends_distant_clients_only() {
        let mut p: CompensatedTerm<u64> =
            CompensatedTerm::new(Box::new(FixedTerm(Dur::from_secs(10))))
                .compensate(ClientId(7), Dur::from_millis(200));
        let s = stats_with(1.0, 0.0, 1);
        assert_eq!(p.term(&1, ClientId(0), &s), Dur::from_secs(10));
        assert_eq!(
            p.term(&1, ClientId(7), &s),
            Dur::from_secs(10) + Dur::from_millis(200)
        );
    }

    #[test]
    fn compensation_preserves_zero_and_infinite() {
        let mut zero: CompensatedTerm<u64> = CompensatedTerm::new(Box::new(FixedTerm(Dur::ZERO)))
            .compensate(ClientId(7), Dur::from_secs(1));
        let s = stats_with(1.0, 0.0, 1);
        assert_eq!(zero.term(&1, ClientId(7), &s), Dur::ZERO);
        let mut inf: CompensatedTerm<u64> = CompensatedTerm::new(Box::new(FixedTerm(Dur::MAX)))
            .compensate(ClientId(7), Dur::from_secs(1));
        assert_eq!(inf.term(&1, ClientId(7), &s), Dur::MAX);
    }

    #[test]
    fn controller_idle_passes_terms_through() {
        let c = TermController::new(Dur::from_millis(500), 0.3, 0.8);
        assert_eq!(c.apply(Dur::from_secs(10)), Dur::from_secs(10));
        assert_eq!(c.level(), 0.0);
    }

    #[test]
    fn controller_degrades_to_floor_under_sustained_overload() {
        let mut c = TermController::new(Dur::from_millis(500), 0.3, 0.8);
        for _ in 0..10 {
            c.observe(0.95);
        }
        assert_eq!(c.level(), 1.0);
        assert_eq!(c.apply(Dur::from_secs(10)), Dur::from_millis(500));
        // Only ever shortens: the degraded term never exceeds the input.
        for ms in [100u64, 500, 2000, 60_000] {
            let t = Dur::from_millis(ms);
            assert!(c.apply(t) <= t, "degraded above input for {t}");
        }
    }

    #[test]
    fn controller_recovers_hysteretically() {
        let mut c = TermController::new(Dur::from_millis(500), 0.3, 0.8);
        for _ in 0..4 {
            c.observe(1.0);
        }
        let hot = c.level();
        assert!(hot > 0.9, "level = {hot}");
        // Load inside the hysteresis band holds the level.
        for _ in 0..50 {
            c.observe(0.5);
        }
        assert_eq!(c.level(), hot);
        // Calm load decays it slowly to zero.
        for _ in 0..200 {
            c.observe(0.1);
        }
        assert_eq!(c.level(), 0.0);
        assert_eq!(c.apply(Dur::from_secs(10)), Dur::from_secs(10));
    }

    #[test]
    fn controller_preserves_zero_infinite_and_floor() {
        let mut c = TermController::new(Dur::from_secs(1), 0.3, 0.8);
        for _ in 0..10 {
            c.observe(1.0);
        }
        assert_eq!(c.apply(Dur::ZERO), Dur::ZERO);
        assert_eq!(c.apply(Dur::MAX), Dur::MAX);
        assert_eq!(c.apply(Dur::from_millis(200)), Dur::from_millis(200));
        assert_eq!(c.apply(Dur::from_secs(1)), Dur::from_secs(1));
    }

    #[test]
    fn controller_partial_level_interpolates() {
        let mut c = TermController::new(Dur::from_secs(1), 0.3, 0.8);
        c.attack = 0.5;
        c.observe(1.0); // level = 0.5
                        // floor + (term - floor) * 0.5 = 1s + 4.5s = 5.5s
        assert_eq!(c.apply(Dur::from_secs(10)), Dur::from_millis(5500));
    }

    #[test]
    fn closure_policy_runs() {
        let mut p: ClosurePolicy<u64> = ClosurePolicy(Box::new(|r, _, _| {
            if *r == 1 {
                Dur::ZERO
            } else {
                Dur::from_secs(5)
            }
        }));
        let s = stats_with(0.0, 0.0, 1);
        assert_eq!(p.term(&1, ClientId(0), &s), Dur::ZERO);
        assert_eq!(p.term(&2, ClientId(0), &s), Dur::from_secs(5));
    }
}
