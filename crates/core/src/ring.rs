//! Bounded single-producer/single-consumer rings and the doorbell wake
//! protocol for thread-per-core ingress and egress.
//!
//! The sharded service used to funnel every producer through one shared
//! MPSC channel per shard: each send took the channel mutex and (when the
//! worker was parked) a condvar signal — a futex wakeup per operation.
//! On the hot path that lock is pure overhead: the routing layer already
//! knows which shard a message is for, and each client thread is a single
//! producer. This module replaces the shared channel with one bounded
//! SPSC ring **per (producer, shard) pair**:
//!
//! * [`spsc`] — a lock-free bounded ring. Head and tail live on separate
//!   cache lines; the producer batches writes and publishes them with one
//!   `Release` store of the tail, the consumer drains a run and retires
//!   it with one `Release` store of the head. No lock, no syscall, no
//!   allocation after construction.
//! * [`Doorbell`] — an eventcount. The consumer takes a [`Doorbell::ticket`],
//!   polls its rings, and only then parks in [`Doorbell::wait`]; a
//!   producer publishes and then [`Doorbell::ring`]s. The `SeqCst`
//!   seq/sleepers handshake guarantees a publish after the consumer's
//!   last poll either flips the ticket (the wait returns immediately) or
//!   finds the sleeper registered (the notify reaches it) — a wakeup is
//!   never lost, and ringing with no sleeper is two uncontended atomic
//!   ops, not a futex call.
//!
//! Ends are [`Send`] but deliberately `!Sync` (they cache their peer's
//! position in [`Cell`]s): the type system enforces single-producer /
//! single-consumer, which is exactly the per-producer-handle discipline
//! the service's ingress wants.
//!
//! Because an end is owned by one thread, a consumer fed by *many*
//! producers needs a hand-off point where each producer's freshly made
//! lane can be deposited for the consumer to pick up. [`Inbox`] is that
//! point — one doorbell plus a mutex-guarded registry of consumer ends
//! awaiting adoption (the mutex is touched only at registration, never
//! per message) — and [`Lanes`] is the consumer-side set of adopted
//! lanes with the round-robin drain both the shard workers and the
//! egress clients use.
//!
//! # Examples
//!
//! ```
//! use lease_core::ring::spsc;
//!
//! let (tx, rx) = spsc::<u32>(8);
//! let mut batch = vec![1, 2, 3];
//! assert_eq!(tx.push_from(&mut batch), 3); // one Release publish
//! let mut out = Vec::new();
//! assert_eq!(rx.drain_into(&mut out, 16), 3); // one Release retire
//! assert_eq!(out, [1, 2, 3]);
//! ```

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Pads (and aligns) a value to a cache line so the producer's tail and
/// the consumer's head never share one — a store to either would
/// otherwise ping-pong the line between cores on every publish.
#[repr(align(64))]
struct CachePadded<T>(T);

/// The shared ring state. Positions are monotonically increasing
/// counters; the slot for position `p` is `buf[p & mask]`. `tail` is
/// written only by the producer, `head` only by the consumer.
struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: the SPSC discipline (enforced by Producer/Consumer being the
// only accessors and each being !Sync) means every slot is written by
// exactly one thread before the Release tail store and read by exactly
// one thread after the Acquire tail load — the usual message-passing
// pairing. T itself only ever moves between threads, so `T: Send`
// suffices.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both ends are gone (this is the last Arc), so plain loads are
        // fine: drop whatever was published but never drained.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for p in head..tail {
            // SAFETY: positions head..tail hold initialized values the
            // consumer never read; we have exclusive access in Drop.
            unsafe { (*self.buf[p & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The sending half of an [`spsc`] ring. `Send` but `!Sync`: exactly one
/// thread may produce.
pub struct Producer<T> {
    ring: Arc<Shared<T>>,
    /// Producer-private tail mirror: lets a batch write its slots with
    /// plain stores and publish them with a single `Release` store.
    tail: Cell<usize>,
    /// Cached consumer head; refreshed (one `Acquire` load) only when
    /// the ring looks full against the stale value.
    head: Cell<usize>,
}

/// The receiving half of an [`spsc`] ring. `Send` but `!Sync`: exactly
/// one thread may consume.
pub struct Consumer<T> {
    ring: Arc<Shared<T>>,
    /// Consumer-private head mirror.
    head: Cell<usize>,
    /// Cached producer tail; refreshed only when the ring looks empty.
    tail: Cell<usize>,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the value is handed back.
    Full(T),
    /// The consumer is gone; the value is handed back.
    Closed(T),
}

/// Creates a bounded SPSC ring with at least `capacity` slots (rounded
/// up to a power of two, minimum 2).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            tail: Cell::new(0),
            head: Cell::new(0),
        },
        Consumer {
            ring,
            head: Cell::new(0),
            tail: Cell::new(0),
        },
    )
}

impl<T> Producer<T> {
    /// Number of slots (a power of two).
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// True once the consumer end has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.ring.consumer_alive.load(Ordering::Acquire)
    }

    /// Occupied slots (refreshes the cached head — one `Acquire` load;
    /// the publish fast path uses [`free`](Self::free), which refreshes
    /// only when the cached view looks too full).
    pub fn len(&self) -> usize {
        self.head.set(self.ring.head.0.load(Ordering::Acquire));
        self.tail.get().wrapping_sub(self.head.get())
    }

    /// True when no published item is outstanding.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots after refreshing the cached head if needed to show at
    /// least `want` of them.
    fn free(&self, want: usize) -> usize {
        let cap = self.capacity();
        let used = self.tail.get().wrapping_sub(self.head.get());
        if cap - used < want {
            self.head.set(self.ring.head.0.load(Ordering::Acquire));
        }
        cap - self.tail.get().wrapping_sub(self.head.get())
    }

    /// Pushes one value, publishing immediately.
    pub fn try_push(&self, v: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(v));
        }
        if self.free(1) == 0 {
            return Err(PushError::Full(v));
        }
        let tail = self.tail.get();
        // SAFETY: `free(1) > 0` means slot `tail` is past the consumer's
        // head, so no other access to it exists until we publish.
        unsafe { (*self.ring.buf[tail & self.ring.mask].get()).write(v) };
        let next = tail.wrapping_add(1);
        self.tail.set(next);
        self.ring.tail.0.store(next, Ordering::Release);
        Ok(())
    }

    /// Moves as many items as fit from the **front** of `items` into the
    /// ring (preserving order), publishing them with a single `Release`
    /// store. Returns how many were taken; `items` keeps the rest.
    /// Returns 0 without draining when the consumer is gone — check
    /// [`Producer::is_closed`] to tell that from a full ring.
    pub fn push_from(&self, items: &mut Vec<T>) -> usize {
        if items.is_empty() || self.is_closed() {
            return 0;
        }
        let n = self.free(items.len()).min(items.len());
        if n == 0 {
            return 0;
        }
        let tail = self.tail.get();
        for (i, v) in items.drain(..n).enumerate() {
            // SAFETY: slots tail..tail+n are free (free() >= n) and
            // unpublished until the single store below.
            unsafe { (*self.ring.buf[tail.wrapping_add(i) & self.ring.mask].get()).write(v) };
        }
        let next = tail.wrapping_add(n);
        self.tail.set(next);
        self.ring.tail.0.store(next, Ordering::Release);
        n
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Occupied slots, from the consumer's view (refreshes the cached
    /// tail: one `Acquire` load, no lock).
    pub fn len(&self) -> usize {
        self.tail.set(self.ring.tail.0.load(Ordering::Acquire));
        self.tail.get().wrapping_sub(self.head.get())
    }

    /// True when nothing is queued (refreshes the cached tail).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the producer end is gone **and** everything it
    /// published has been drained.
    pub fn is_disconnected(&self) -> bool {
        // Order matters: check aliveness before emptiness, else a push
        // racing a producer drop could slip between the two loads.
        let alive = self.ring.producer_alive.load(Ordering::Acquire);
        !alive && self.is_empty()
    }

    /// Pops one value.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.get();
        if self.tail.get() == head {
            self.tail.set(self.ring.tail.0.load(Ordering::Acquire));
            if self.tail.get() == head {
                return None;
            }
        }
        // SAFETY: head < tail, so the slot holds a published value the
        // producer will not touch until we advance the shared head.
        let v = unsafe { (*self.ring.buf[head & self.ring.mask].get()).assume_init_read() };
        let next = head.wrapping_add(1);
        self.head.set(next);
        self.ring.head.0.store(next, Ordering::Release);
        Some(v)
    }

    /// Drains up to `max` items into `out` (appending, preserving FIFO
    /// order) and retires them with a single `Release` store. Returns
    /// how many were moved.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.head.get();
        if self.tail.get().wrapping_sub(head) < max {
            self.tail.set(self.ring.tail.0.load(Ordering::Acquire));
        }
        let n = self.tail.get().wrapping_sub(head).min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for i in 0..n {
            // SAFETY: positions head..head+n are published (<= tail) and
            // each is read exactly once before the head advances.
            let v = unsafe {
                (*self.ring.buf[head.wrapping_add(i) & self.ring.mask].get()).assume_init_read()
            };
            out.push(v);
        }
        let next = head.wrapping_add(n);
        self.head.set(next);
        self.ring.head.0.store(next, Ordering::Release);
        n
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
    }
}

/// An eventcount: the park/wake half of the ring ingress.
///
/// The consumer side runs `let t = bell.ticket(); poll rings; if empty {
/// bell.wait(t, timeout); }`; every producer runs `publish;
/// bell.ring();`. The `SeqCst` ordering on `seq` and `sleepers` makes
/// the classic lost-wakeup interleaving impossible: if the producer's
/// `sleepers` load misses the registering consumer, then in the `SeqCst`
/// total order the consumer's registration came later, so its seq
/// re-check (still later) must see the bump and skips the sleep; if the
/// load sees it, the producer takes the mutex — and since the consumer
/// registers and re-checks *under* that mutex before waiting, the
/// notify cannot land in the gap.
#[derive(Default)]
pub struct Doorbell {
    seq: AtomicU64,
    sleepers: AtomicUsize,
    /// Rings that found a registered sleeper and issued a real (futex)
    /// notify — the expensive case the coalesced-egress design exists to
    /// avoid. Purely observational; see [`Doorbell::wakes`].
    wakes: AtomicU64,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl Doorbell {
    /// A fresh doorbell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the event count. Take the ticket **before** the final
    /// poll of whatever state the wait is about.
    pub fn ticket(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Announce an event (call **after** publishing it). Two uncontended
    /// atomics when nobody is parked; takes the mutex only to pin a
    /// registered sleeper down for the notify.
    pub fn ring(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.wakes.fetch_add(1, Ordering::Relaxed);
            let _g = self.lock.lock().expect("doorbell mutex poisoned");
            self.cvar.notify_all();
        }
    }

    /// How many rings actually woke a sleeper (took the mutex + notified)
    /// rather than finding the consumer awake. `wakes / ops` is the
    /// wakes-per-operation figure the egress benchmarks record: a
    /// coalesced flush that lands while the consumer is draining or
    /// spinning costs two uncontended atomics and counts nothing here.
    pub fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }

    /// Park until the count moves past `ticket` or `timeout` elapses.
    /// Returns `true` when (probably) woken by a ring, `false` on a
    /// clean timeout; either way the caller re-polls, so a spurious
    /// `true` is harmless.
    pub fn wait(&self, ticket: u64, timeout: Duration) -> bool {
        let guard = self.lock.lock().expect("doorbell mutex poisoned");
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let woke = if self.seq.load(Ordering::SeqCst) != ticket {
            true
        } else {
            let (_guard, to) = self
                .cvar
                .wait_timeout(guard, timeout)
                .expect("doorbell mutex poisoned");
            !to.timed_out() || self.seq.load(Ordering::SeqCst) != ticket
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        woke
    }
}

/// The many-producers side of a one-consumer mailbox built from SPSC
/// lanes: one [`Doorbell`] the consumer parks on, plus the hand-off
/// point where each producer deposits the consumer end of its freshly
/// made lane for the owning thread to adopt.
///
/// This is the registration/adoption pattern the sharded service's
/// ingress introduced (every `SvcHandle` clone attaches a fresh lane per
/// shard), hoisted here so the egress direction — every shard worker
/// attaches a fresh lane per *client* — reuses it instead of cloning it.
/// The mutex is taken once per lane registration and once per adoption
/// of a non-empty pending set; the per-message hot path never sees it
/// (the `has_pending` flag is a single `Acquire` load when quiet).
pub struct Inbox<T> {
    bell: Doorbell,
    /// Consumer ends registered by producers, awaiting adoption.
    pending: Mutex<Vec<Consumer<T>>>,
    /// Lock-free "pending is non-empty" flag, so the consumer's hot loop
    /// never touches the mutex when nothing registered.
    has_pending: AtomicBool,
    /// Set when the consumer is gone for good: late registrations are
    /// dropped on the spot so their producers observe `Closed` instead
    /// of publishing forever into a lane nobody will ever drain.
    closed: AtomicBool,
}

impl<T> Default for Inbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Inbox<T> {
    /// A fresh inbox with no lanes.
    pub fn new() -> Inbox<T> {
        Inbox {
            bell: Doorbell::new(),
            pending: Mutex::new(Vec::new()),
            has_pending: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// The doorbell the consumer parks on. Producers ring it after
    /// publishing (to a lane or to any side channel whose traffic the
    /// consumer also polls).
    pub fn bell(&self) -> &Doorbell {
        &self.bell
    }

    /// Deposits a fresh lane's consumer end for the owner to adopt, and
    /// rings the bell so a parked owner picks it up promptly. If the
    /// inbox is already [closed](Inbox::close), the end is dropped here
    /// and the producer observes `Closed` on its next push.
    pub fn register(&self, rx: Consumer<T>) {
        {
            let mut p = self.pending.lock().expect("inbox mutex poisoned");
            if self.closed.load(Ordering::Relaxed) {
                return; // rx drops here; the producer sees Closed.
            }
            p.push(rx);
            self.has_pending.store(true, Ordering::Release);
        }
        self.bell.ring();
    }

    /// Moves every pending consumer into the owner's adopted set. One
    /// `Acquire` load when there is nothing pending — cheap enough for
    /// every poll of a spin loop.
    pub fn adopt_into(&self, lanes: &mut Vec<Consumer<T>>) {
        if self.has_pending.load(Ordering::Acquire)
            && self.has_pending.swap(false, Ordering::Acquire)
        {
            let mut p = self.pending.lock().expect("inbox mutex poisoned");
            lanes.append(&mut p);
        }
    }

    /// Marks the consumer gone and drops any not-yet-adopted ends, so
    /// their producers observe `Closed`.
    pub fn close(&self) {
        let mut p = self.pending.lock().expect("inbox mutex poisoned");
        self.closed.store(true, Ordering::Relaxed);
        p.clear();
    }

    /// Whether [`Inbox::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }
}

/// The consumer side of an [`Inbox`]: the adopted lane set plus the
/// round-robin cursor, owned by the one draining thread.
///
/// Dropping a `Lanes` closes its inbox — the consumer thread exiting is
/// what "consumer gone" means, and the close keeps late registrations
/// from stranding producers (see [`Inbox::register`]).
pub struct Lanes<T> {
    inbox: Arc<Inbox<T>>,
    lanes: Vec<Consumer<T>>,
    rr: usize,
}

impl<T> Lanes<T> {
    /// Takes ownership of the consumer side of `inbox`. Make exactly one
    /// per inbox: two `Lanes` over one inbox would split adopted lanes
    /// between them arbitrarily.
    pub fn new(inbox: Arc<Inbox<T>>) -> Lanes<T> {
        Lanes {
            inbox,
            lanes: Vec::new(),
            rr: 0,
        }
    }

    /// The doorbell to park on (ticket-before-final-poll, as ever).
    pub fn bell(&self) -> &Doorbell {
        self.inbox.bell()
    }

    /// One round-robin sweep over the adopted lanes (adopting any newly
    /// registered ones first), draining at most `max` items into `out`.
    /// The starting lane rotates sweep to sweep so a chatty producer
    /// cannot starve the others. Every poll is a couple of `Acquire`
    /// loads — no lock, no syscall — which is what makes spinning on
    /// this affordable.
    pub fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        self.inbox.adopt_into(&mut self.lanes);
        let k = self.lanes.len();
        if k == 0 || max == 0 {
            return 0;
        }
        let start = self.rr % k;
        self.rr = (start + 1) % k;
        let mut got = 0;
        for j in 0..k {
            if got >= max {
                break;
            }
            got += self.lanes[(start + j) % k].drain_into(out, max - got);
        }
        got
    }

    /// Drains exactly what is *visible now* in every lane into `out`,
    /// with no cap — the snapshot barrier the service's stats path uses
    /// ("everything published before this call is in the batch").
    pub fn snapshot_into(&mut self, out: &mut Vec<T>) {
        self.inbox.adopt_into(&mut self.lanes);
        for c in &self.lanes {
            let visible = c.len();
            c.drain_into(out, visible);
        }
    }

    /// Total items currently visible across the adopted lanes (occupancy
    /// for admission pressure).
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|c| c.len()).sum()
    }

    /// Forgets lanes whose producer is gone and which are drained dry.
    /// Called off the hot path (before parking); a disconnected lane is
    /// harmless to keep polling, just wasted loads.
    pub fn prune_disconnected(&mut self) {
        self.lanes.retain(|c| !c.is_disconnected());
    }
}

impl<T> Drop for Lanes<T> {
    fn drop(&mut self) {
        self.inbox.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Instant;

    #[test]
    fn fifo_through_push_and_drain() {
        let (tx, rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert!(matches!(tx.try_push(99), Err(PushError::Full(99))));
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 3), 3);
        assert_eq!(out, [0, 1, 2]);
        // Space freed by the drain is visible to the producer.
        tx.try_push(4).unwrap();
        tx.try_push(5).unwrap();
        assert_eq!(rx.drain_into(&mut out, 16), 3);
        assert_eq!(out, [0, 1, 2, 3, 4, 5]);
        assert!(rx.is_empty());
    }

    #[test]
    fn push_from_takes_a_prefix_and_keeps_the_rest() {
        let (tx, rx) = spsc::<u32>(4);
        let mut batch: Vec<u32> = (0..7).collect();
        assert_eq!(tx.push_from(&mut batch), 4);
        assert_eq!(batch, [4, 5, 6]);
        let mut out = Vec::new();
        rx.drain_into(&mut out, 16);
        assert_eq!(out, [0, 1, 2, 3]);
        assert_eq!(tx.push_from(&mut batch), 3);
        assert!(batch.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = spsc::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn disconnect_is_observable_from_both_ends() {
        let (tx, rx) = spsc::<u32>(4);
        tx.try_push(1).unwrap();
        drop(tx);
        // Producer gone but an item remains: not yet disconnected.
        assert!(!rx.is_disconnected());
        assert_eq!(rx.try_pop(), Some(1));
        assert!(rx.is_disconnected());

        let (tx, rx) = spsc::<u32>(4);
        drop(rx);
        assert!(tx.is_closed());
        assert!(matches!(tx.try_push(7), Err(PushError::Closed(7))));
        let mut batch = vec![1, 2];
        assert_eq!(tx.push_from(&mut batch), 0);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn undrained_items_are_dropped_exactly_once() {
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = spsc::<D>(8);
        for _ in 0..5 {
            tx.try_push(D).unwrap();
        }
        assert_eq!(rx.try_pop().map(drop), Some(())); // 1 drop
        drop(tx);
        drop(rx); // 4 published-but-undrained drops via Shared
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn two_thread_stress_preserves_order_and_counts() {
        const N: u64 = 200_000;
        let (tx, rx) = spsc::<u64>(64);
        let bell = Arc::new(Doorbell::new());
        let bell2 = Arc::clone(&bell);
        let consumer = std::thread::spawn(move || {
            let mut expect = 0u64;
            let mut buf = Vec::with_capacity(64);
            while expect < N {
                let t = bell2.ticket();
                if rx.drain_into(&mut buf, 64) == 0 {
                    bell2.wait(t, Duration::from_millis(50));
                    continue;
                }
                for v in buf.drain(..) {
                    assert_eq!(v, expect);
                    expect += 1;
                }
            }
            expect
        });
        let mut pending: Vec<u64> = Vec::new();
        let mut next = 0u64;
        while next < N || !pending.is_empty() {
            while pending.len() < 32 && next < N {
                pending.push(next);
                next += 1;
            }
            if tx.push_from(&mut pending) > 0 {
                bell.ring();
            } else {
                std::hint::spin_loop();
            }
        }
        assert_eq!(consumer.join().unwrap(), N);
    }

    #[test]
    fn inbox_adoption_round_robin_and_close() {
        let inbox = Arc::new(Inbox::<u32>::new());
        let mut lanes = Lanes::new(Arc::clone(&inbox));

        let (a_tx, a_rx) = spsc::<u32>(8);
        let (b_tx, b_rx) = spsc::<u32>(8);
        inbox.register(a_rx);
        inbox.register(b_rx);
        a_tx.try_push(1).unwrap();
        a_tx.try_push(2).unwrap();
        b_tx.try_push(10).unwrap();

        let mut out = Vec::new();
        assert_eq!(lanes.drain_into(&mut out, 16), 3);
        out.sort_unstable();
        assert_eq!(out, [1, 2, 10]);
        assert_eq!(lanes.queued(), 0);

        // Capped drain leaves the rest visible.
        a_tx.try_push(3).unwrap();
        a_tx.try_push(4).unwrap();
        out.clear();
        assert_eq!(lanes.drain_into(&mut out, 1), 1);
        assert_eq!(lanes.queued(), 1);
        out.clear();
        lanes.snapshot_into(&mut out);
        assert_eq!(out.len(), 1);

        // Dropping the consumer side closes the inbox: late registrations
        // drop their end, so the producer observes Closed.
        drop(lanes);
        assert!(inbox.is_closed());
        let (c_tx, c_rx) = spsc::<u32>(8);
        inbox.register(c_rx);
        assert!(matches!(c_tx.try_push(9), Err(PushError::Closed(9))));
    }

    #[test]
    fn doorbell_counts_only_sleeper_wakes() {
        let bell = Arc::new(Doorbell::new());
        bell.ring(); // Nobody parked: no futex, no count.
        assert_eq!(bell.wakes(), 0);
        let b2 = Arc::clone(&bell);
        let parker = std::thread::spawn(move || {
            let t = b2.ticket();
            b2.wait(t, Duration::from_secs(5));
        });
        // Ring until the sleeper registers and the wake is counted.
        while bell.wakes() == 0 {
            bell.ring();
            std::thread::yield_now();
        }
        parker.join().unwrap();
        assert!(bell.wakes() >= 1);
    }

    // The lost-wakeup hammer: a parker that polls-then-waits races a
    // ringer that publishes-then-rings, across many short rounds with
    // jittered timing. If a ring after the parker's last poll could be
    // lost, some round would stall for the full (long) wait timeout and
    // blow the liveness budget.
    #[test]
    fn doorbell_never_loses_a_wakeup() {
        const ROUNDS: u64 = 3_000;
        let bell = Arc::new(Doorbell::new());
        let flag = Arc::new(AtomicU32::new(0));
        let started = Instant::now();
        let (b2, f2) = (Arc::clone(&bell), Arc::clone(&flag));
        let parker = std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                loop {
                    let t = b2.ticket();
                    if f2.load(Ordering::SeqCst) > 0 {
                        f2.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                    // A lost wakeup would eat the whole 2s here.
                    b2.wait(t, Duration::from_secs(2));
                }
            }
        });
        for i in 0..ROUNDS {
            flag.fetch_add(1, Ordering::SeqCst);
            bell.ring();
            if i % 7 == 0 {
                std::thread::yield_now();
            }
        }
        parker.join().unwrap();
        // Liveness: 3000 rounds of an intact protocol take well under a
        // second; a single lost wakeup alone would cost 2s.
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "doorbell rounds took {:?} — lost wakeups?",
            started.elapsed()
        );
    }
}
