//! A stable, inlineable multiply-xor hash for shard routing.
//!
//! The service router (`lease_svc::shard_of`) and every embedder that
//! pre-partitions per-resource state must agree on one hash function —
//! forever. `std::collections::hash_map::DefaultHasher` fails both of the
//! requirements that puts on it:
//!
//! * **Stability.** `DefaultHasher` is documented to be allowed to change
//!   between Rust releases. Anything that persists shard-partitioned state
//!   (per-shard MaxTerm slots, pre-partitioned installed-file sets, an
//!   on-disk layout keyed by shard) would silently re-partition on a
//!   toolchain upgrade — a latent corruption bug.
//! * **Speed.** SipHash runs the full 2×4-round permutation per 8-byte
//!   block; for routing one `u64` file id, that is most of the message's
//!   submission cost.
//!
//! [`FxHasher`] is an FxHash-style multiply-xor hash (the rustc hash):
//! per 8-byte word it costs one rotate, one xor, and one multiply, and its
//! output is a pure function of the byte/word stream fed to it — **stable
//! across releases, platforms, and architectures by construction**, and
//! pinned by golden-vector tests so it can never drift silently. It is not
//! collision-resistant against adversarial keys; it routes trusted
//! resource ids, it does not guard hash tables exposed to attackers.

use std::hash::Hasher;

/// The multiplier (2^64 / golden ratio, as used by rustc's FxHash).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A stable FxHash-style streaming hasher.
///
/// Every `write_*` method reduces its input to one or two u64 words and
/// folds each with `hash = (hash.rotate_left(5) ^ word) * K`. Width-
/// dependent inputs (`usize`/`isize`) are widened to u64 first so 32- and
/// 64-bit platforms agree. Byte slices are folded as little-endian 8-byte
/// words, the tail zero-padded, followed by the length (so `"ab", "c"`
/// and `"a", "bc"` differ when hashed as separate slices).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A fresh hasher (state zero).
    #[inline]
    pub fn new() -> FxHasher {
        FxHasher::default()
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        // Widened so 32- and 64-bit platforms hash identically.
        self.add(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.add(n as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i128(&mut self, n: i128) {
        self.write_u128(n as u128);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as i64 as u64);
    }
}

/// Hashes one value with [`FxHasher`].
#[inline]
pub fn fx_hash<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden vectors: these exact outputs are the routing contract.
    ///
    /// If this test ever fails, the hash changed — which silently
    /// re-partitions every shard-keyed layout in existence. Do not update
    /// the constants; fix the hash.
    #[test]
    fn golden_u64_vectors() {
        let expect: [(u64, u64); 6] = [
            (0x0, 0x0000000000000000),
            (0x1, 0x517cc1b727220a95),
            (0x7, 0x3a694c0211ee4a13),
            (0x2a, 0x5e77c80c6b95bc72),
            (0xdead_beef, 0x67f3c0372953771b),
            (u64::MAX, 0xae833e48d8ddf56b),
        ];
        for (input, hash) in expect {
            assert_eq!(
                fx_hash(&input),
                hash,
                "fx_hash({input:#x}) drifted from its pinned value"
            );
        }
    }

    #[test]
    fn golden_composite_vectors() {
        // Tuples are part of the contract too: embedders shard composite
        // keys like (dir, entry) pairs.
        assert_eq!(fx_hash(&(1u32, 2u32)), 0x6a4b_e67f_f98f_abc8);
        // Raw byte streams through `Hasher::write` (padded word + length).
        let mut h = FxHasher::new();
        h.write(b"lease");
        assert_eq!(h.finish(), 0x6bc5_c266_bdbf_2a8f);
    }

    #[test]
    fn distinct_streams_differ() {
        // Slice hashing folds the length, so different chunkings of the
        // same bytes differ.
        let mut a = FxHasher::new();
        a.write(b"ab");
        a.write(b"c");
        let mut b = FxHasher::new();
        b.write(b"a");
        b.write(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn usize_matches_u64() {
        let mut a = FxHasher::new();
        a.write_usize(12345);
        let mut b = FxHasher::new();
        b.write_u64(12345);
        assert_eq!(a.finish(), b.finish());
    }
}
