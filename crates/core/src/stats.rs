//! Per-resource access statistics for adaptive term policies.

use lease_clock::{Dur, Time};

/// Exponentially weighted running estimates of a resource's access
/// characteristics, the inputs the paper's analytic model needs when the
/// server "dynamically pick\[s\] lease terms on a per file and per client
/// cache basis" (§4).
///
/// Rates use an exponential moving average over event inter-arrival times
/// with time constant `tau`: on each event, the instantaneous rate `1/gap`
/// is blended in with weight `1 - exp(-gap/tau)`.
#[derive(Debug, Clone)]
pub struct ResourceStats {
    /// Smoothed read rate, events per second.
    read_rate: f64,
    /// Smoothed write rate, events per second.
    write_rate: f64,
    /// Smoothed number of caches holding the resource at write time.
    sharers: f64,
    last_read: Option<Time>,
    last_write: Option<Time>,
    /// Raw counters.
    pub reads: u64,
    /// Raw write counter.
    pub writes: u64,
    tau_secs: f64,
}

impl ResourceStats {
    /// Creates empty statistics with a smoothing time constant.
    pub fn new(tau: Dur) -> ResourceStats {
        ResourceStats {
            read_rate: 0.0,
            write_rate: 0.0,
            sharers: 1.0,
            last_read: None,
            last_write: None,
            reads: 0,
            writes: 0,
            tau_secs: tau.as_secs_f64().max(1e-9),
        }
    }

    /// Records a read (or lease extension driven by a read) at `now`.
    pub fn on_read(&mut self, now: Time) {
        self.reads += 1;
        self.read_rate = blend(
            self.read_rate,
            self.last_read.replace(now),
            now,
            self.tau_secs,
        );
    }

    /// Records a write at `now`, observed while `holders` caches held
    /// leases on the resource.
    pub fn on_write(&mut self, now: Time, holders: usize) {
        self.writes += 1;
        self.write_rate = blend(
            self.write_rate,
            self.last_write.replace(now),
            now,
            self.tau_secs,
        );
        let s = (holders.max(1)) as f64;
        self.sharers += 0.25 * (s - self.sharers);
    }

    /// Smoothed read rate (events/second).
    pub fn read_rate(&self) -> f64 {
        self.read_rate
    }

    /// Smoothed write rate (events/second).
    pub fn write_rate(&self) -> f64 {
        self.write_rate
    }

    /// Smoothed sharing degree `S` (≥ 1).
    pub fn sharing(&self) -> f64 {
        self.sharers.max(1.0)
    }

    /// The paper's lease benefit factor `α = 2R / (S·W)` (§3.1), or
    /// `f64::INFINITY` when no writes have been observed.
    pub fn alpha(&self) -> f64 {
        if self.write_rate <= 0.0 {
            f64::INFINITY
        } else {
            2.0 * self.read_rate / (self.sharing() * self.write_rate)
        }
    }
}

fn blend(rate: f64, last: Option<Time>, now: Time, tau: f64) -> f64 {
    let Some(last) = last else {
        return rate;
    };
    let gap = now.saturating_since(last).as_secs_f64().max(1e-9);
    let w = 1.0 - (-gap / tau).exp();
    rate + w * (1.0 / gap - rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_converge_to_steady_arrivals() {
        let mut s = ResourceStats::new(Dur::from_secs(10));
        // One read per second for 200 seconds.
        for i in 1..=200u64 {
            s.on_read(Time::from_secs(i));
        }
        assert!((s.read_rate() - 1.0).abs() < 0.05, "rate {}", s.read_rate());
        assert_eq!(s.reads, 200);
    }

    #[test]
    fn sharing_tracks_holder_counts() {
        let mut s = ResourceStats::new(Dur::from_secs(10));
        for i in 1..=50u64 {
            s.on_write(Time::from_secs(i), 4);
        }
        assert!((s.sharing() - 4.0).abs() < 0.1);
    }

    #[test]
    fn alpha_infinite_without_writes() {
        let mut s = ResourceStats::new(Dur::from_secs(10));
        s.on_read(Time::from_secs(1));
        s.on_read(Time::from_secs(2));
        assert!(s.alpha().is_infinite());
    }

    #[test]
    fn alpha_matches_definition() {
        let mut s = ResourceStats::new(Dur::from_secs(5));
        // Reads at 2/s, writes at 0.5/s, S -> 2.
        for i in 1..=400u64 {
            s.on_read(Time::from_millis(i * 500));
        }
        for i in 1..=100u64 {
            s.on_write(Time::from_secs(i * 2), 2);
        }
        let alpha = s.alpha();
        let expected = 2.0 * s.read_rate() / (s.sharing() * s.write_rate());
        assert!((alpha - expected).abs() < 1e-9);
        assert!(
            alpha > 1.0,
            "read-mostly resource should benefit, alpha = {alpha}"
        );
    }

    #[test]
    fn first_event_sets_no_rate() {
        let mut s = ResourceStats::new(Dur::from_secs(10));
        s.on_read(Time::from_secs(1));
        assert_eq!(s.read_rate(), 0.0);
    }
}
