//! The client file-cache state machine.
//!
//! A cache "requires a valid lease on the datum (in addition to holding the
//! datum) before it returns the datum in response to a read, or modifies
//! the datum in response to a write" (§2). This module implements that
//! cache: the read fast path, lease extension with batching, write-through
//! writes carrying the writer's implicit approval, approval callbacks that
//! invalidate the local copy, the client side of the effective-term rule
//! `t_c = t_s - (m_prop + 2·m_proc) - ε`, anticipatory renewal (§4), and
//! LRU eviction with voluntary relinquish.
//!
//! # Effective term
//!
//! The client never learns the server-clock instant its lease started, so
//! it anchors expiry to the time it *first sent* the request:
//! `expiry = first_send + t_s − ε`. The server granted at some instant no
//! earlier than the send, so the client's view is conservative by at least
//! the in-flight delay — exactly the `t_c` shortening the paper models.
//! This rule needs only bounded clock *drift*, not synchronized clocks
//! (§5); the one message that does rely on ε-synchronization is the
//! installed-file multicast, whose term is anchored to a server timestamp.

use std::collections::HashMap;

use lease_clock::{Dur, Time};

use crate::msg::{ErrorReason, Grant, ToClient, ToServer};
use crate::types::{ClientId, LeaseHandle, OpId, ReqId, Resource, Version};

/// Client cache configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Clock-skew/drift allowance ε subtracted from every term.
    pub epsilon: Dur,
    /// Base retransmission interval for outstanding requests (the first
    /// retry fires this long after the original send; [`Backoff`] scales
    /// subsequent ones).
    pub retry_interval: Dur,
    /// Retransmissions before an op fails with [`OpError::Timeout`].
    pub max_retries: u32,
    /// How retry intervals grow across attempts; the default is a fixed
    /// interval (multiplier 1, no jitter).
    pub backoff: Backoff,
    /// Wall-time budget per operation: once this much time has passed since
    /// the op was first sent, the next retry opportunity fails it with
    /// [`OpError::Timeout`] even if retransmissions remain. `None` = only
    /// the retry budget bounds the op.
    pub op_deadline: Option<Dur>,
    /// Token-bucket cap on retransmission work across *all* this client's
    /// in-flight requests. Backoff paces each request individually; the
    /// budget bounds the client's aggregate retry rate, so N clients
    /// cannot amplify a server brownout into a retry storm. `None` = no
    /// budget (retries limited only by backoff and `max_retries`).
    pub retry_budget: Option<RetryBudget>,
    /// Piggyback extension of all held leases on every fetch (§3.1: batch
    /// extensions).
    pub batch_extensions: bool,
    /// Renew all held leases every interval without waiting for a miss
    /// (§4 anticipatory extension); `None` = on-demand only.
    pub anticipatory: Option<Dur>,
    /// Cache capacity in entries (0 = unbounded); LRU beyond that.
    pub capacity: usize,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            epsilon: Dur::from_millis(100),
            retry_interval: Dur::from_millis(500),
            max_retries: 20,
            backoff: Backoff::default(),
            op_deadline: None,
            retry_budget: None,
            batch_extensions: true,
            anticipatory: None,
            capacity: 0,
        }
    }
}

/// Exponential-backoff shape for request retransmissions.
///
/// The nominal interval before retry `attempt` (1-based) is
/// `base * multiplier^(attempt-1)`, capped at `cap`. Jitter then subtracts a
/// deterministic pseudo-random fraction of up to `jitter * nominal`, so the
/// actual interval always lies in `[nominal * (1 - jitter), nominal]`.
/// Jitter is derived by hashing a caller-supplied salt — the state machine
/// stays sans-IO and seed-stable, yet distinct clients desynchronize their
/// retry storms.
///
/// # Examples
///
/// ```
/// use lease_clock::Dur;
/// use lease_core::Backoff;
///
/// let b = Backoff { multiplier: 2.0, cap: Dur::from_secs(1), jitter: 0.0 };
/// let base = Dur::from_millis(100);
/// assert_eq!(b.nominal(base, 1), Dur::from_millis(100));
/// assert_eq!(b.nominal(base, 3), Dur::from_millis(400));
/// assert_eq!(b.nominal(base, 20), Dur::from_secs(1)); // capped
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Growth factor per retry; values ≤ 1.0 mean a fixed interval.
    pub multiplier: f64,
    /// Upper bound on the nominal interval.
    pub cap: Dur,
    /// Fraction of the nominal interval that jitter may subtract, in
    /// `[0, 1]`; 0 disables jitter.
    pub jitter: f64,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            multiplier: 1.0,
            cap: Dur::MAX,
            jitter: 0.0,
        }
    }
}

impl Backoff {
    /// An exponential schedule: doubling, capped at `cap`, with 25% jitter.
    pub fn exponential(cap: Dur) -> Backoff {
        Backoff {
            multiplier: 2.0,
            cap,
            jitter: 0.25,
        }
    }

    /// The nominal (pre-jitter) interval before retry `attempt` (1-based;
    /// attempt 0 is treated as the first retry).
    pub fn nominal(&self, base: Dur, attempt: u32) -> Dur {
        let mut d = base;
        if self.multiplier > 1.0 {
            for _ in 1..attempt.max(1) {
                if d >= self.cap {
                    break;
                }
                d = d.mul_f64(self.multiplier);
            }
        }
        d.min(self.cap)
    }

    /// The jittered interval before retry `attempt`: the nominal interval
    /// minus a salt-determined fraction of up to `jitter * nominal`.
    pub fn interval(&self, base: Dur, attempt: u32, salt: u64) -> Dur {
        let nominal = self.nominal(base, attempt);
        if self.jitter <= 0.0 {
            return nominal;
        }
        // 53 uniform mantissa bits in [0, 1), derived from the salt.
        let unit = (splitmix64(salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        nominal.saturating_sub(nominal.mul_f64(self.jitter.min(1.0) * unit))
    }
}

/// A token-bucket retry budget: at most `burst` retransmissions at once,
/// refilling at `rate` per second.
///
/// A retry that finds the bucket empty is *deferred* (re-checked once a
/// token would be available), not dropped — it consumes no attempt from
/// `max_retries`, though the per-op deadline still bounds total waiting.
/// The budget is per client and shared across all its in-flight requests:
/// it caps the aggregate retransmission load this client can put on a
/// struggling server.
#[derive(Debug, Clone, Copy)]
pub struct RetryBudget {
    /// Tokens added per second.
    pub rate: f64,
    /// Bucket capacity (maximum saved-up retries).
    pub burst: f64,
}

impl RetryBudget {
    /// A budget of `rate` retries per second with a one-second burst.
    pub fn per_sec(rate: f64) -> RetryBudget {
        RetryBudget {
            rate,
            burst: rate.max(1.0),
        }
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of the input.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An application-level cache operation.
#[derive(Debug, Clone)]
pub enum Op<R, D> {
    /// Read the resource.
    Read(R),
    /// Write-through new contents.
    Write(R, D),
}

/// Timers the client asks the harness to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientTimer {
    /// Retransmission timer for a request.
    Retry(ReqId),
    /// The periodic anticipatory-renewal tick.
    Renewal,
}

/// Inputs to the client state machine.
#[derive(Debug, Clone)]
pub enum ClientInput<R, D> {
    /// The application submits an operation.
    Op {
        /// Caller-chosen id reported back in [`ClientOutput::Done`].
        op: OpId,
        /// The operation.
        kind: Op<R, D>,
    },
    /// A message from the server.
    Msg(ToClient<R, D>),
    /// A timer fired.
    Timer(ClientTimer),
}

/// How a completed operation went.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutcome<D> {
    /// A read completed.
    Read {
        /// The data.
        data: D,
        /// Its version.
        version: Version,
        /// Whether the cache served it without contacting the server.
        from_cache: bool,
    },
    /// A write committed.
    Write {
        /// The committed version.
        version: Version,
    },
}

/// Why an operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// The server does not know the resource.
    NoSuchResource,
    /// Retransmissions exhausted, server unreachable. For writes this
    /// means the outcome is *unknown*: the server may still commit.
    Timeout,
}

/// The result delivered with [`ClientOutput::Done`].
pub type OpResult<D> = Result<OpOutcome<D>, OpError>;

/// Effects the harness must apply after a `handle` call.
#[derive(Debug, Clone)]
pub enum ClientOutput<R, D> {
    /// Send a message to the server.
    Send(ToServer<R, D>),
    /// Arm a timer (re-arming an existing key replaces it).
    SetTimer {
        /// When it should fire.
        at: Time,
        /// Which timer.
        timer: ClientTimer,
    },
    /// Cancel a timer by key.
    CancelTimer(ClientTimer),
    /// An operation completed.
    Done {
        /// The operation.
        op: OpId,
        /// Its result.
        result: OpResult<D>,
    },
}

/// Cache behaviour counters, exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Reads served from cache under a valid lease.
    pub hits: u64,
    /// Reads that needed a lease extension (data was cached).
    pub misses_extend: u64,
    /// Reads that needed data (nothing cached).
    pub misses_cold: u64,
    /// Write operations submitted.
    pub writes: u64,
    /// Approval callbacks honoured.
    pub approvals: u64,
    /// Cache entries invalidated by approvals.
    pub invalidations: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Operations failed by retry exhaustion.
    pub timeouts: u64,
    /// `Shed` refusals received from an overloaded server.
    pub sheds: u64,
    /// Retries deferred by the [`RetryBudget`] (re-attempted later; not
    /// counted against `max_retries`).
    pub budget_deferred: u64,
}

#[derive(Debug, Clone)]
struct Entry<D> {
    data: D,
    version: Version,
    /// Conservative client-clock expiry of the lease.
    expiry: Time,
    last_used: Time,
    /// The server's cookie from the last grant, echoed on renewals so the
    /// server can take its slab fast path. Opaque; NULL when the lease
    /// came without one (e.g. a write completion).
    handle: LeaseHandle,
}

#[derive(Debug, Clone)]
enum Pending<R, D> {
    Fetch {
        resource: R,
        waiters: Vec<(OpId, Time)>,
        originals: usize,
        first_sent: Time,
        retries: u32,
    },
    Write {
        resource: R,
        data: D,
        op: OpId,
        first_sent: Time,
        retries: u32,
    },
    Renew {
        first_sent: Time,
    },
}

/// The client cache.
///
/// See the [module documentation](self) for the protocol description and
/// [`ClientInput`]/[`ClientOutput`] for the I/O contract.
pub struct LeaseClient<R: Resource, D: Clone> {
    id: ClientId,
    cfg: ClientConfig,
    entries: HashMap<R, Entry<D>>,
    /// In-flight fetch per resource (ops pile onto it).
    fetch_inflight: HashMap<R, ReqId>,
    requests: HashMap<ReqId, Pending<R, D>>,
    /// Per-resource version floor: the highest version this cache has
    /// observed (through grants, write completions, installed extensions),
    /// raised past the replaced version on every approval. Nothing below
    /// the floor may ever be cached — the defence against delayed,
    /// duplicated, or reordered replies re-installing stale data.
    floor: HashMap<R, Version>,
    next_req: u64,
    /// Retry-budget bucket level; meaningless when `cfg.retry_budget` is
    /// `None`. `budget_at` is the instant of the last refill (`None` =
    /// bucket starts full on first use).
    budget_tokens: f64,
    budget_at: Option<Time>,
    /// Counters for experiments.
    pub counters: ClientCounters,
}

impl<R: Resource, D: Clone> LeaseClient<R, D> {
    /// Creates a cache for client `id`.
    pub fn new(id: ClientId, cfg: ClientConfig) -> LeaseClient<R, D> {
        LeaseClient {
            id,
            cfg,
            entries: HashMap::new(),
            fetch_inflight: HashMap::new(),
            requests: HashMap::new(),
            floor: HashMap::new(),
            next_req: 0,
            budget_tokens: 0.0,
            budget_at: None,
            counters: ClientCounters::default(),
        }
    }

    /// This cache's client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Arms initial timers; call once when the client comes up.
    pub fn start(&mut self, now: Time) -> Vec<ClientOutput<R, D>> {
        let mut out = Vec::new();
        if let Some(interval) = self.cfg.anticipatory {
            out.push(ClientOutput::SetTimer {
                at: now + interval,
                timer: ClientTimer::Renewal,
            });
        }
        out
    }

    /// Whether the cache holds `resource` under a lease valid at `now`.
    pub fn lease_valid(&self, resource: R, now: Time) -> bool {
        self.entries.get(&resource).is_some_and(|e| e.expiry > now)
    }

    /// The cached version of `resource`, if any (lease may be expired).
    pub fn cached_version(&self, resource: R) -> Option<Version> {
        self.entries.get(&resource).map(|e| e.version)
    }

    /// Number of cached entries.
    pub fn cached_count(&self) -> usize {
        self.entries.len()
    }

    /// Handles one input; returns the effects to apply.
    pub fn handle(&mut self, now: Time, input: ClientInput<R, D>) -> Vec<ClientOutput<R, D>> {
        let mut out = Vec::new();
        match input {
            ClientInput::Op { op, kind } => match kind {
                Op::Read(r) => self.on_read(now, op, r, &mut out),
                Op::Write(r, d) => self.on_write(now, op, r, d, &mut out),
            },
            ClientInput::Msg(msg) => self.on_msg(now, msg, &mut out),
            ClientInput::Timer(t) => self.on_timer(now, t, &mut out),
        }
        out
    }

    /// Wipes all volatile state (host crash). A restarted cache is empty.
    pub fn crash(&mut self) {
        self.entries.clear();
        self.fetch_inflight.clear();
        self.requests.clear();
        self.floor.clear();
        self.budget_tokens = 0.0;
        self.budget_at = None;
    }

    fn fresh_req(&mut self) -> ReqId {
        let r = ReqId(self.next_req);
        self.next_req += 1;
        r
    }

    fn on_read(&mut self, now: Time, op: OpId, resource: R, out: &mut Vec<ClientOutput<R, D>>) {
        if let Some(e) = self.entries.get_mut(&resource) {
            if e.expiry > now {
                // Fast path: valid lease, no server contact (§2).
                e.last_used = now;
                self.counters.hits += 1;
                out.push(ClientOutput::Done {
                    op,
                    result: Ok(OpOutcome::Read {
                        data: e.data.clone(),
                        version: e.version,
                        from_cache: true,
                    }),
                });
                return;
            }
        }
        if self.entries.contains_key(&resource) {
            self.counters.misses_extend += 1;
        } else {
            self.counters.misses_cold += 1;
        }
        if let Some(req) = self.fetch_inflight.get(&resource) {
            // Another op already asked; wait with it.
            if let Some(Pending::Fetch { waiters, .. }) = self.requests.get_mut(req) {
                waiters.push((op, now));
                return;
            }
        }
        let req = self.fresh_req();
        let msg = self.build_fetch(req, resource);
        self.fetch_inflight.insert(resource, req);
        self.requests.insert(
            req,
            Pending::Fetch {
                resource,
                waiters: vec![(op, now)],
                originals: 1,
                first_sent: now,
                retries: 0,
            },
        );
        out.push(ClientOutput::Send(msg));
        out.push(ClientOutput::SetTimer {
            at: now + self.cfg.retry_interval,
            timer: ClientTimer::Retry(req),
        });
    }

    fn build_fetch(&self, req: ReqId, resource: R) -> ToServer<R, D> {
        let cached = self.entries.get(&resource).map(|e| e.version);
        let also_extend = if self.cfg.batch_extensions {
            let mut v: Vec<(R, Version, LeaseHandle)> = self
                .entries
                .iter()
                .filter(|(r, _)| **r != resource)
                .map(|(r, e)| (*r, e.version, e.handle))
                .collect();
            v.sort_unstable_by_key(|(r, _, _)| *r);
            v
        } else {
            Vec::new()
        };
        ToServer::Fetch {
            req,
            resource,
            cached,
            also_extend,
        }
    }

    fn on_write(
        &mut self,
        now: Time,
        op: OpId,
        resource: R,
        data: D,
        out: &mut Vec<ClientOutput<R, D>>,
    ) {
        self.counters.writes += 1;
        // Write-through: the request carries our implicit approval, so the
        // server may commit while our old lease is still live — the old
        // copy must go now.
        self.entries.remove(&resource);
        let req = self.fresh_req();
        self.requests.insert(
            req,
            Pending::Write {
                resource,
                data: data.clone(),
                op,
                first_sent: now,
                retries: 0,
            },
        );
        out.push(ClientOutput::Send(ToServer::Write {
            req,
            resource,
            data,
        }));
        out.push(ClientOutput::SetTimer {
            at: now + self.cfg.retry_interval,
            timer: ClientTimer::Retry(req),
        });
    }

    fn on_msg(&mut self, now: Time, msg: ToClient<R, D>, out: &mut Vec<ClientOutput<R, D>>) {
        match msg {
            ToClient::Grants { req, grants } => self.on_grants(now, req, grants, out),
            ToClient::WriteDone {
                req,
                resource,
                version,
                term,
            } => {
                let Some(pending) = self.requests.remove(&req) else {
                    return; // Duplicate reply.
                };
                let Pending::Write {
                    data,
                    op,
                    first_sent,
                    ..
                } = pending
                else {
                    self.requests.insert(req, pending);
                    return;
                };
                out.push(ClientOutput::CancelTimer(ClientTimer::Retry(req)));
                let expiry = lease_expiry(first_sent, term, self.cfg.epsilon);
                // Version-floor check: a delayed (retransmission-replayed)
                // WriteDone must never re-install data older than anything
                // this cache has already observed or approved away.
                let below_floor = self.floor.get(&resource).is_some_and(|f| version < *f);
                // While ANY other of our writes to this resource is still
                // in flight, nothing may be cached: retransmissions can
                // commit in arbitrary order at the server, so any pending
                // write may yet supersede this version.
                let another_pending = self
                    .requests
                    .values()
                    .any(|p| matches!(p, Pending::Write { resource: r, .. } if *r == resource));
                if !below_floor {
                    self.observe(resource, version);
                }
                if !below_floor && !another_pending {
                    // WriteDone carries no handle; the first renewal takes
                    // the keyed path and picks one up.
                    self.insert_entry(now, resource, data, version, expiry, LeaseHandle::NULL, out);
                }
                out.push(ClientOutput::Done {
                    op,
                    result: Ok(OpOutcome::Write { version }),
                });
            }
            ToClient::ApprovalRequest {
                write_id,
                resource,
                replaces,
            } => {
                self.counters.approvals += 1;
                if self.entries.remove(&resource).is_some() {
                    self.counters.invalidations += 1;
                }
                // Anything at or below the superseded version is stale:
                // raise the floor past it.
                self.observe(resource, replaces.next());
                out.push(ClientOutput::Send(ToServer::Approve { write_id }));
            }
            ToClient::InstalledExtend {
                resources,
                term,
                sent_at,
            } => {
                // Anchored to the server's clock; relies on ε-synchronized
                // clocks (§5).
                let expiry = lease_expiry(sent_at, term, self.cfg.epsilon);
                for (r, version) in resources {
                    if let Some(e) = self.entries.get_mut(&r) {
                        if e.version == version {
                            e.expiry = e.expiry.max(expiry);
                        } else if e.version < version {
                            // The datum changed while our lease was lapsed
                            // (delayed update, §4): drop the stale copy.
                            self.entries.remove(&r);
                            self.counters.invalidations += 1;
                            self.observe(r, version);
                        }
                    }
                }
            }
            ToClient::Error {
                req,
                reason: ErrorReason::Shed { retry_after },
            } => {
                // The server refused to *process* the request (overload),
                // not to serve the resource: the op stays pending and its
                // retry timer is re-armed at the server's suggested pace.
                // The next retry fire still applies the deadline, retry
                // budget, and max_retries — shedding never grants an op
                // extra lifetime.
                if !self.requests.contains_key(&req) {
                    return; // Completed meanwhile; stale shed.
                }
                self.counters.sheds += 1;
                if matches!(self.requests.get(&req), Some(Pending::Renew { .. })) {
                    // Renewals are fire-and-forget; a shed one just ends.
                    self.requests.remove(&req);
                    return;
                }
                out.push(ClientOutput::SetTimer {
                    at: now + retry_after,
                    timer: ClientTimer::Retry(req),
                });
            }
            ToClient::Error {
                req,
                reason: ErrorReason::NoSuchResource,
            } => {
                let Some(pending) = self.requests.remove(&req) else {
                    return;
                };
                out.push(ClientOutput::CancelTimer(ClientTimer::Retry(req)));
                match pending {
                    Pending::Fetch {
                        resource, waiters, ..
                    } => {
                        self.fetch_inflight.remove(&resource);
                        for (op, _) in waiters {
                            out.push(ClientOutput::Done {
                                op,
                                result: Err(OpError::NoSuchResource),
                            });
                        }
                    }
                    Pending::Write { op, .. } => {
                        out.push(ClientOutput::Done {
                            op,
                            result: Err(OpError::NoSuchResource),
                        });
                    }
                    Pending::Renew { .. } => {}
                }
            }
        }
    }

    fn on_grants(
        &mut self,
        now: Time,
        req: ReqId,
        grants: Vec<Grant<R, D>>,
        out: &mut Vec<ClientOutput<R, D>>,
    ) {
        let Some(pending) = self.requests.get(&req) else {
            return; // Late duplicate; anchor unknown, ignore.
        };
        let (first_sent, target) = match pending {
            Pending::Fetch {
                first_sent,
                resource,
                ..
            } => (*first_sent, Some(*resource)),
            Pending::Renew { first_sent } => (*first_sent, None),
            Pending::Write { .. } => return,
        };
        let mut target_grant: Option<Grant<R, D>> = None;
        for g in grants {
            if Some(g.resource) == target {
                target_grant = Some(g.clone());
            }
            self.apply_grant(now, first_sent, g, out);
        }
        match (target, target_grant) {
            (Some(resource), Some(g)) => {
                // The fetch is answered.
                let Some(Pending::Fetch {
                    waiters, originals, ..
                }) = self.requests.remove(&req)
                else {
                    unreachable!("checked above");
                };
                self.fetch_inflight.remove(&resource);
                out.push(ClientOutput::CancelTimer(ClientTimer::Retry(req)));
                let data = match g.data {
                    Some(d) => d,
                    None => match self.entries.get(&resource) {
                        Some(e) => e.data.clone(),
                        None => {
                            // A no-data grant but our copy is gone (an
                            // approval raced with the reply): start over
                            // with a fresh fetch carrying the same waiters.
                            self.refetch(now, resource, waiters, out);
                            return;
                        }
                    },
                };
                // Linearizability of coalesced waiters: if the (freshly
                // applied) lease is valid right now, the data is provably
                // current at this instant, which lies inside every
                // waiter's interval — serve them all. Otherwise only the
                // *original* requesters (already waiting when the request
                // was sent) may use this reply: the grant is at least as
                // fresh as their start. Later joiners re-fetch, because
                // the data may predate them.
                let lease_ok = self.lease_valid(resource, now);
                let mut refetch = Vec::new();
                for (i, (op, joined)) in waiters.into_iter().enumerate() {
                    if lease_ok || i < originals {
                        out.push(ClientOutput::Done {
                            op,
                            result: Ok(OpOutcome::Read {
                                data: data.clone(),
                                version: g.version,
                                from_cache: false,
                            }),
                        });
                    } else {
                        refetch.push((op, joined));
                    }
                }
                if !refetch.is_empty() {
                    self.refetch(now, resource, refetch, out);
                }
            }
            (None, _) => {
                // A renewal: grants applied, request done.
                self.requests.remove(&req);
            }
            (Some(_), None) => {
                // Partial reply (extensions only; target parked behind a
                // pending write). Keep waiting.
            }
        }
    }

    /// Issues a fresh fetch for `resource` on behalf of `waiters`.
    fn refetch(
        &mut self,
        now: Time,
        resource: R,
        waiters: Vec<(OpId, Time)>,
        out: &mut Vec<ClientOutput<R, D>>,
    ) {
        let req = self.fresh_req();
        let msg = self.build_fetch(req, resource);
        self.fetch_inflight.insert(resource, req);
        let originals = waiters.len();
        self.requests.insert(
            req,
            Pending::Fetch {
                resource,
                waiters,
                originals,
                first_sent: now,
                retries: 0,
            },
        );
        out.push(ClientOutput::Send(msg));
        out.push(ClientOutput::SetTimer {
            at: now + self.cfg.retry_interval,
            timer: ClientTimer::Retry(req),
        });
    }

    fn apply_grant(
        &mut self,
        now: Time,
        first_sent: Time,
        g: Grant<R, D>,
        out: &mut Vec<ClientOutput<R, D>>,
    ) {
        let expiry = lease_expiry(first_sent, g.term, self.cfg.epsilon);
        // Version-floor check: data below anything we have observed (or
        // approved the replacement of) is stale; it may still be served to
        // waiting ops (their intervals overlap its validity) but must
        // never be cached.
        if self.floor.get(&g.resource).is_some_and(|f| g.version < *f) {
            return;
        }
        self.observe(g.resource, g.version);
        // Our own in-flight write carries our implicit approval: the
        // server may commit it at any moment without asking us, so no
        // grant may (re)establish a cached copy until the write resolves
        // — the submit-time invalidation, extended to in-flight grants.
        let own_write_pending = self
            .requests
            .values()
            .any(|p| matches!(p, Pending::Write { resource: r, .. } if *r == g.resource));
        if own_write_pending {
            return;
        }
        match self.entries.get_mut(&g.resource) {
            Some(e) => {
                if g.version < e.version {
                    return; // Regressive grant (reordered network); drop.
                }
                if let Some(d) = g.data {
                    e.data = d;
                }
                e.version = g.version;
                e.expiry = e.expiry.max(expiry);
                e.last_used = now;
                e.handle = g.handle;
            }
            None => {
                // Create an entry only if we actually asked for this
                // resource: an unsolicited or stale-request grant (e.g.
                // one racing our own eviction/relinquish) must not
                // resurrect a cache entry the server no longer tracks.
                if self.fetch_inflight.contains_key(&g.resource) {
                    if let Some(d) = g.data {
                        self.insert_entry(now, g.resource, d, g.version, expiry, g.handle, out);
                    }
                }
                // A no-data grant for something we no longer hold: useless.
            }
        }
    }

    /// Raises the version floor for `resource` to at least `version`.
    fn observe(&mut self, resource: R, version: Version) {
        let f = self.floor.entry(resource).or_insert(version);
        *f = (*f).max(version);
    }

    #[allow(clippy::too_many_arguments)] // the fields of one new Entry
    fn insert_entry(
        &mut self,
        now: Time,
        resource: R,
        data: D,
        version: Version,
        expiry: Time,
        handle: LeaseHandle,
        out: &mut Vec<ClientOutput<R, D>>,
    ) {
        self.entries.insert(
            resource,
            Entry {
                data,
                version,
                expiry,
                last_used: now,
                handle,
            },
        );
        if self.cfg.capacity > 0 && self.entries.len() > self.cfg.capacity {
            // Evict the least-recently-used other entry and give the lease
            // back so the server can forget us (§4: relinquish option).
            let victim = self
                .entries
                .iter()
                .filter(|(r, _)| **r != resource && !self.fetch_inflight.contains_key(*r))
                .min_by_key(|(r, e)| (e.last_used, **r))
                .map(|(r, _)| *r);
            if let Some(v) = victim {
                self.entries.remove(&v);
                self.counters.evictions += 1;
                out.push(ClientOutput::Send(ToServer::Relinquish {
                    resources: vec![v],
                }));
            }
        }
    }

    fn on_timer(&mut self, now: Time, timer: ClientTimer, out: &mut Vec<ClientOutput<R, D>>) {
        match timer {
            ClientTimer::Retry(req) => self.on_retry(now, req, out),
            ClientTimer::Renewal => {
                if let Some(interval) = self.cfg.anticipatory {
                    if !self.entries.is_empty() {
                        let req = self.fresh_req();
                        let mut resources: Vec<(R, Version, LeaseHandle)> = self
                            .entries
                            .iter()
                            .map(|(r, e)| (*r, e.version, e.handle))
                            .collect();
                        resources.sort_unstable_by_key(|(r, _, _)| *r);
                        self.requests
                            .insert(req, Pending::Renew { first_sent: now });
                        out.push(ClientOutput::Send(ToServer::Renew { req, resources }));
                    }
                    out.push(ClientOutput::SetTimer {
                        at: now + interval,
                        timer: ClientTimer::Renewal,
                    });
                }
            }
        }
    }

    /// Takes one retry token, refilling the bucket for the time elapsed
    /// since the last take. `Err` carries how long until a token would be
    /// available (bounded, so a zero-rate budget still re-checks).
    fn budget_take(&mut self, now: Time, b: RetryBudget) -> Result<(), Dur> {
        match self.budget_at {
            None => self.budget_tokens = b.burst.max(1.0), // Starts full.
            Some(last) => {
                let refill = now.saturating_since(last).as_secs_f64() * b.rate;
                self.budget_tokens = (self.budget_tokens + refill).min(b.burst.max(1.0));
            }
        }
        self.budget_at = Some(now);
        if self.budget_tokens >= 1.0 {
            self.budget_tokens -= 1.0;
            Ok(())
        } else if b.rate > 0.0 {
            Err(Dur::from_secs_f64(
                ((1.0 - self.budget_tokens) / b.rate).min(60.0),
            ))
        } else {
            Err(Dur::from_secs(60))
        }
    }

    fn on_retry(&mut self, now: Time, req: ReqId, out: &mut Vec<ClientOutput<R, D>>) {
        let Some(pending) = self.requests.get(&req) else {
            return; // Completed; stale timer.
        };
        // Exhaustion first (read-only): deadline and attempt limits
        // dominate everything else, including budget deferrals.
        let exhausted = match pending {
            Pending::Fetch {
                retries,
                first_sent,
                ..
            }
            | Pending::Write {
                retries,
                first_sent,
                ..
            } => {
                let over_deadline = self
                    .cfg
                    .op_deadline
                    .is_some_and(|d| now.saturating_since(*first_sent) >= d);
                *retries >= self.cfg.max_retries || over_deadline
            }
            Pending::Renew { .. } => true, // Renewals are not retried.
        };
        if exhausted {
            let pending = self.requests.remove(&req).expect("present");
            match pending {
                Pending::Fetch {
                    resource, waiters, ..
                } => {
                    self.fetch_inflight.remove(&resource);
                    for (op, _) in waiters {
                        self.counters.timeouts += 1;
                        out.push(ClientOutput::Done {
                            op,
                            result: Err(OpError::Timeout),
                        });
                    }
                }
                Pending::Write { op, .. } => {
                    self.counters.timeouts += 1;
                    out.push(ClientOutput::Done {
                        op,
                        result: Err(OpError::Timeout),
                    });
                }
                Pending::Renew { .. } => {}
            }
            return;
        }
        // Budget gate: an empty bucket defers the retry (no attempt
        // consumed) until a token is due — the deadline check above still
        // bounds how long an op can keep deferring.
        if let Some(b) = self.cfg.retry_budget {
            if let Err(wait) = self.budget_take(now, b) {
                self.counters.budget_deferred += 1;
                out.push(ClientOutput::SetTimer {
                    at: now + wait,
                    timer: ClientTimer::Retry(req),
                });
                return;
            }
        }
        // Commit the attempt.
        let attempt = match self.requests.get_mut(&req).expect("still present") {
            Pending::Fetch { retries, .. } | Pending::Write { retries, .. } => {
                *retries += 1;
                *retries
            }
            Pending::Renew { .. } => unreachable!("renewals are not retried"),
        };
        self.counters.retries += 1;
        let msg = match self.requests.get(&req).expect("still present") {
            Pending::Fetch { resource, .. } => self.build_fetch(req, *resource),
            Pending::Write { resource, data, .. } => ToServer::Write {
                req,
                resource: *resource,
                data: data.clone(),
            },
            Pending::Renew { .. } => unreachable!("renewals are not retried"),
        };
        out.push(ClientOutput::Send(msg));
        // Arm the next retry on the backoff schedule; the salt folds in the
        // client, request, and attempt so concurrent retriers desynchronize
        // while each individual schedule stays deterministic.
        let salt = (u64::from(self.id.0) << 48) ^ (req.0 << 8) ^ u64::from(attempt);
        out.push(ClientOutput::SetTimer {
            at: now
                + self
                    .cfg
                    .backoff
                    .interval(self.cfg.retry_interval, attempt, salt),
            timer: ClientTimer::Retry(req),
        });
    }
}

/// The conservative client-side lease expiry: `anchor + term − ε`,
/// saturating; an infinite term never expires.
fn lease_expiry(anchor: Time, term: Dur, epsilon: Dur) -> Time {
    if term.is_infinite() {
        return Time::MAX;
    }
    anchor + term.saturating_sub(epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = LeaseClient<u64, String>;

    fn cfg() -> ClientConfig {
        ClientConfig {
            epsilon: Dur::from_millis(10),
            ..ClientConfig::default()
        }
    }

    fn client() -> C {
        LeaseClient::new(ClientId(1), cfg())
    }

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    fn grant(resource: u64, version: u64, data: &str, term_ms: u64) -> Grant<u64, String> {
        Grant {
            resource,
            version: Version(version),
            data: Some(data.to_string()),
            term: Dur::from_millis(term_ms),
            handle: LeaseHandle::NULL,
        }
    }

    /// Drives a read miss to the point where the fetch is on the wire;
    /// returns the request id.
    fn start_read(c: &mut C, now: Time, op: u64, resource: u64) -> ReqId {
        let out = c.handle(
            now,
            ClientInput::Op {
                op: OpId(op),
                kind: Op::Read(resource),
            },
        );
        for o in &out {
            if let ClientOutput::Send(ToServer::Fetch { req, .. }) = o {
                return *req;
            }
        }
        panic!("no fetch sent: {out:?}");
    }

    fn deliver_grants(
        c: &mut C,
        now: Time,
        req: ReqId,
        grants: Vec<Grant<u64, String>>,
    ) -> Vec<ClientOutput<u64, String>> {
        c.handle(now, ClientInput::Msg(ToClient::Grants { req, grants }))
    }

    #[test]
    fn cold_miss_then_hit_then_expiry() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        let out = deliver_grants(&mut c, t(3), req, vec![grant(7, 1, "data", 10_000)]);
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::Done {
                op: OpId(1),
                result: Ok(OpOutcome::Read {
                    from_cache: false,
                    ..
                })
            }
        )));
        assert_eq!(c.counters.misses_cold, 1);

        // Within the term (minus epsilon): cache hit, no messages.
        let out = c.handle(
            t(5000),
            ClientInput::Op {
                op: OpId(2),
                kind: Op::Read(7),
            },
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            ClientOutput::Done {
                result: Ok(OpOutcome::Read {
                    from_cache: true,
                    ..
                }),
                ..
            }
        ));
        assert_eq!(c.counters.hits, 1);

        // Effective expiry is first_sent + term - epsilon = 9990 ms.
        assert!(c.lease_valid(7, t(9989)));
        assert!(!c.lease_valid(7, t(9990)));

        // After expiry: extension miss.
        let out = c.handle(
            t(12_000),
            ClientInput::Op {
                op: OpId(3),
                kind: Op::Read(7),
            },
        );
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::Send(ToServer::Fetch {
                cached: Some(Version(1)),
                ..
            })
        )));
        assert_eq!(c.counters.misses_extend, 1);
    }

    #[test]
    fn no_data_grant_serves_cached_copy() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        deliver_grants(&mut c, t(1), req, vec![grant(7, 3, "v3", 1000)]);
        // Lease expires; read again; server says "unchanged".
        let req2 = start_read(&mut c, t(5000), 2, 7);
        let g = Grant {
            resource: 7u64,
            version: Version(3),
            data: None,
            term: Dur::from_millis(1000),
            handle: LeaseHandle::NULL,
        };
        let out = deliver_grants(&mut c, t(5003), req2, vec![g]);
        let done = out.iter().find_map(|o| match o {
            ClientOutput::Done {
                result:
                    Ok(OpOutcome::Read {
                        data, from_cache, ..
                    }),
                ..
            } => Some((data.clone(), *from_cache)),
            _ => None,
        });
        assert_eq!(done, Some(("v3".to_string(), false)));
    }

    #[test]
    fn concurrent_reads_share_one_fetch() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        let out = c.handle(
            t(1),
            ClientInput::Op {
                op: OpId(2),
                kind: Op::Read(7),
            },
        );
        assert!(out.is_empty(), "second read should wait: {out:?}");
        let out = deliver_grants(&mut c, t(3), req, vec![grant(7, 1, "x", 1000)]);
        let done: Vec<u64> = out
            .iter()
            .filter_map(|o| match o {
                ClientOutput::Done { op, .. } => Some(op.0),
                _ => None,
            })
            .collect();
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn approval_invalidates_and_replies() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        deliver_grants(&mut c, t(1), req, vec![grant(7, 1, "old", 60_000)]);
        assert!(c.lease_valid(7, t(100)));
        let out = c.handle(
            t(200),
            ClientInput::Msg(ToClient::ApprovalRequest {
                write_id: WriteIdT(5),
                resource: 7,
                replaces: Version(1),
            }),
        );
        assert!(out
            .iter()
            .any(|o| matches!(o, ClientOutput::Send(ToServer::Approve { .. }))));
        assert!(!c.lease_valid(7, t(201)));
        assert_eq!(c.counters.invalidations, 1);
    }

    // Local alias so the test reads naturally.
    #[allow(non_snake_case)]
    fn WriteIdT(n: u64) -> crate::types::WriteId {
        crate::types::WriteId(n)
    }

    #[test]
    fn write_invalidates_local_copy_until_done() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        deliver_grants(&mut c, t(1), req, vec![grant(7, 1, "old", 60_000)]);
        let out = c.handle(
            t(100),
            ClientInput::Op {
                op: OpId(2),
                kind: Op::Write(7, "new".into()),
            },
        );
        let wreq = out
            .iter()
            .find_map(|o| match o {
                ClientOutput::Send(ToServer::Write { req, .. }) => Some(*req),
                _ => None,
            })
            .expect("write sent");
        // Local copy gone while the write is in flight.
        assert!(!c.lease_valid(7, t(101)));
        let out = c.handle(
            t(105),
            ClientInput::Msg(ToClient::WriteDone {
                req: wreq,
                resource: 7,
                version: Version(2),
                term: Dur::from_secs(10),
            }),
        );
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::Done {
                op: OpId(2),
                result: Ok(OpOutcome::Write {
                    version: Version(2)
                })
            }
        )));
        // The writer now caches its own data under a fresh lease.
        assert!(c.lease_valid(7, t(200)));
        assert_eq!(c.cached_version(7), Some(Version(2)));
    }

    #[test]
    fn barrier_blocks_stale_grant_after_approval() {
        let mut c = client();
        // Fetch in flight...
        let req = start_read(&mut c, t(0), 1, 7);
        // ...approval for a write arrives first.
        c.handle(
            t(5),
            ClientInput::Msg(ToClient::ApprovalRequest {
                write_id: WriteIdT(9),
                resource: 7,
                replaces: Version(1),
            }),
        );
        // The (stale) grant from before the write finally lands.
        deliver_grants(&mut c, t(6), req, vec![grant(7, 1, "stale", 60_000)]);
        // It must not be cached.
        assert!(!c.lease_valid(7, t(7)));
        assert_eq!(c.cached_version(7), None);
    }

    #[test]
    fn retry_retransmits_then_times_out() {
        let mut c = LeaseClient::<u64, String>::new(
            ClientId(1),
            ClientConfig {
                max_retries: 2,
                ..cfg()
            },
        );
        let req = start_read(&mut c, t(0), 1, 7);
        let out = c.handle(t(500), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(out
            .iter()
            .any(|o| matches!(o, ClientOutput::Send(ToServer::Fetch { .. }))));
        let out = c.handle(t(1000), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(out.iter().any(|o| matches!(o, ClientOutput::Send(_))));
        // Third fire exhausts the budget.
        let out = c.handle(t(1500), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::Done {
                result: Err(OpError::Timeout),
                ..
            }
        )));
        assert_eq!(c.counters.retries, 2);
        assert_eq!(c.counters.timeouts, 1);
        // A late reply after failure is ignored.
        let out = deliver_grants(&mut c, t(2000), req, vec![grant(7, 1, "late", 1000)]);
        assert!(out.is_empty());
    }

    #[test]
    fn batched_fetch_carries_all_held_leases() {
        let mut c = client();
        for (i, r) in [(1u64, 10u64), (2, 11)] {
            let req = start_read(&mut c, t(i), i, r);
            deliver_grants(&mut c, t(i + 1), req, vec![grant(r, 1, "d", 100)]);
        }
        // Both leases now expired; a read of 12 should piggyback 10 and 11.
        let out = c.handle(
            t(10_000),
            ClientInput::Op {
                op: OpId(9),
                kind: Op::Read(12),
            },
        );
        let also = out
            .iter()
            .find_map(|o| match o {
                ClientOutput::Send(ToServer::Fetch { also_extend, .. }) => {
                    Some(also_extend.clone())
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(
            also,
            vec![
                (10, Version(1), LeaseHandle::NULL),
                (11, Version(1), LeaseHandle::NULL)
            ]
        );
    }

    #[test]
    fn installed_extend_pushes_expiry_forward() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        deliver_grants(&mut c, t(1), req, vec![grant(7, 1, "bin", 1000)]);
        assert!(!c.lease_valid(7, t(2000)));
        c.handle(
            t(2000),
            ClientInput::Msg(ToClient::InstalledExtend {
                // 99 is not cached: ignored.
                resources: vec![(7, Version(1)), (99, Version(1))],
                term: Dur::from_secs(60),
                sent_at: t(1990),
            }),
        );
        // Expiry = sent_at + 60 s - epsilon.
        assert!(c.lease_valid(7, t(61_979)));
        assert!(!c.lease_valid(7, t(61_990)));
        assert_eq!(c.cached_count(), 1);
    }

    #[test]
    fn lru_eviction_relinquishes() {
        let mut c = LeaseClient::<u64, String>::new(
            ClientId(1),
            ClientConfig {
                capacity: 2,
                ..cfg()
            },
        );
        for (i, r) in [(1u64, 10u64), (2, 11), (3, 12)] {
            let req = start_read(&mut c, t(i * 100), i, r);
            let out = deliver_grants(&mut c, t(i * 100 + 1), req, vec![grant(r, 1, "d", 60_000)]);
            if r == 12 {
                // Inserting the third entry evicts resource 10 (the LRU).
                assert!(out.iter().any(|o| matches!(
                    o,
                    ClientOutput::Send(ToServer::Relinquish { resources }) if resources == &vec![10]
                )));
            }
        }
        assert_eq!(c.cached_count(), 2);
        assert!(c.lease_valid(11, t(500)));
        assert!(c.lease_valid(12, t(500)));
        assert!(!c.lease_valid(10, t(500)));
        assert_eq!(c.counters.evictions, 1);
    }

    #[test]
    fn anticipatory_renewal_fires_periodically() {
        let mut c = LeaseClient::<u64, String>::new(
            ClientId(1),
            ClientConfig {
                anticipatory: Some(Dur::from_secs(5)),
                ..cfg()
            },
        );
        let out = c.start(t(0));
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::SetTimer {
                timer: ClientTimer::Renewal,
                ..
            }
        )));
        let req = start_read(&mut c, t(100), 1, 7);
        deliver_grants(&mut c, t(101), req, vec![grant(7, 1, "d", 60_000)]);
        let out = c.handle(t(5000), ClientInput::Timer(ClientTimer::Renewal));
        let sent = out.iter().any(|o| {
            matches!(o, ClientOutput::Send(ToServer::Renew { resources, .. }) if resources == &vec![(7, Version(1), LeaseHandle::NULL)])
        });
        assert!(sent, "{out:?}");
        // And it re-arms itself.
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::SetTimer { timer: ClientTimer::Renewal, at } if *at == t(10_000)
        )));
    }

    #[test]
    fn zero_term_grant_serves_read_but_never_caches_validly() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        let g = Grant {
            resource: 7u64,
            version: Version(1),
            data: Some("d".into()),
            term: Dur::ZERO,
            handle: LeaseHandle::NULL,
        };
        let out = deliver_grants(&mut c, t(1), req, vec![g]);
        assert!(out
            .iter()
            .any(|o| matches!(o, ClientOutput::Done { result: Ok(_), .. })));
        // Data is stored but the lease is never valid.
        assert!(!c.lease_valid(7, t(1)));
        assert_eq!(c.cached_version(7), Some(Version(1)));
    }

    #[test]
    fn crash_wipes_cache() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        deliver_grants(&mut c, t(1), req, vec![grant(7, 1, "d", 60_000)]);
        c.crash();
        assert_eq!(c.cached_count(), 0);
        assert!(!c.lease_valid(7, t(2)));
    }

    #[test]
    fn late_write_done_does_not_clobber_newer_version() {
        // Regression: a retransmission-replayed WriteDone (old version)
        // arriving after a newer version was cached must not regress the
        // cache.
        let mut c = client();
        let out = c.handle(
            t(0),
            ClientInput::Op {
                op: OpId(1),
                kind: Op::Write(7, "w1".into()),
            },
        );
        let req1 = out
            .iter()
            .find_map(|o| match o {
                ClientOutput::Send(ToServer::Write { req, .. }) => Some(*req),
                _ => None,
            })
            .unwrap();
        // A fetch observes version 5 (not cached: our own write is still
        // in flight, and its commit point is unknown).
        let fr = start_read(&mut c, t(100), 2, 7);
        deliver_grants(&mut c, t(101), fr, vec![grant(7, 5, "v5", 10_000)]);
        assert_eq!(c.cached_version(7), None);
        // The delayed WriteDone for version 2 finally lands: the version
        // floor (5) keeps the stale data out of the cache.
        c.handle(
            t(200),
            ClientInput::Msg(ToClient::WriteDone {
                req: req1,
                resource: 7,
                version: Version(2),
                term: Dur::from_secs(10),
            }),
        );
        assert_eq!(c.cached_version(7), None);
        // A fresh fetch with the current version caches normally again.
        let fr = start_read(&mut c, t(300), 3, 7);
        deliver_grants(&mut c, t(301), fr, vec![grant(7, 5, "v5", 10_000)]);
        assert_eq!(c.cached_version(7), Some(Version(5)));
    }

    #[test]
    fn out_of_order_write_done_replies_keep_latest_write() {
        // Two of our own writes in flight; their WriteDone replies arrive
        // out of order. The cache must end at the later write's version.
        let mut c = client();
        let send_write = |c: &mut C, now: Time, op: u64, data: &str| {
            let out = c.handle(
                now,
                ClientInput::Op {
                    op: OpId(op),
                    kind: Op::Write(7, data.into()),
                },
            );
            out.iter()
                .find_map(|o| match o {
                    ClientOutput::Send(ToServer::Write { req, .. }) => Some(*req),
                    _ => None,
                })
                .unwrap()
        };
        let r1 = send_write(&mut c, t(0), 1, "w1");
        let r2 = send_write(&mut c, t(10), 2, "w2");
        // The second write's reply arrives first: while the other write is
        // still in flight, nothing may be cached (it could commit later).
        c.handle(
            t(20),
            ClientInput::Msg(ToClient::WriteDone {
                req: r2,
                resource: 7,
                version: Version(3),
                term: Dur::from_secs(10),
            }),
        );
        assert_eq!(c.cached_version(7), None);
        // Now the first write's (older) reply lands: below the version
        // floor (3), so it must not be cached either.
        c.handle(
            t(30),
            ClientInput::Msg(ToClient::WriteDone {
                req: r1,
                resource: 7,
                version: Version(2),
                term: Dur::from_secs(10),
            }),
        );
        assert_eq!(c.cached_version(7), None);

        // And the in-order case: first reply arrives while the second
        // write is still pending -> not cached; second reply caches.
        let mut c = client();
        let r1 = send_write(&mut c, t(0), 1, "w1");
        let r2 = send_write(&mut c, t(10), 2, "w2");
        c.handle(
            t(20),
            ClientInput::Msg(ToClient::WriteDone {
                req: r1,
                resource: 7,
                version: Version(2),
                term: Dur::from_secs(10),
            }),
        );
        assert_eq!(
            c.cached_version(7),
            None,
            "superseded by our own pending write"
        );
        c.handle(
            t(30),
            ClientInput::Msg(ToClient::WriteDone {
                req: r2,
                resource: 7,
                version: Version(3),
                term: Dur::from_secs(10),
            }),
        );
        assert_eq!(c.cached_version(7), Some(Version(3)));
    }

    #[test]
    fn shed_reply_paces_retry_instead_of_failing() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        let out = c.handle(
            t(10),
            ClientInput::Msg(ToClient::Error {
                req,
                reason: ErrorReason::Shed {
                    retry_after: Dur::from_millis(250),
                },
            }),
        );
        // No failure; the retry timer is re-armed at the server's pace.
        assert!(
            !out.iter().any(|o| matches!(o, ClientOutput::Done { .. })),
            "{out:?}"
        );
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::SetTimer { timer: ClientTimer::Retry(r), at } if *r == req && *at == t(260)
        )));
        assert_eq!(c.counters.sheds, 1);
        // The paced retry then retransmits and the op still completes.
        let out = c.handle(t(260), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(out
            .iter()
            .any(|o| matches!(o, ClientOutput::Send(ToServer::Fetch { .. }))));
        let out = deliver_grants(&mut c, t(270), req, vec![grant(7, 1, "d", 1000)]);
        assert!(out
            .iter()
            .any(|o| matches!(o, ClientOutput::Done { result: Ok(_), .. })));
    }

    #[test]
    fn shed_never_outlives_deadline_or_attempts() {
        let mut c = LeaseClient::<u64, String>::new(
            ClientId(1),
            ClientConfig {
                op_deadline: Some(Dur::from_millis(400)),
                ..cfg()
            },
        );
        let req = start_read(&mut c, t(0), 1, 7);
        c.handle(
            t(10),
            ClientInput::Msg(ToClient::Error {
                req,
                reason: ErrorReason::Shed {
                    retry_after: Dur::from_millis(500),
                },
            }),
        );
        // The shed-paced retry fires past the deadline: fail, don't resend.
        let out = c.handle(t(510), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::Done {
                result: Err(OpError::Timeout),
                ..
            }
        )));
        assert!(!out.iter().any(|o| matches!(o, ClientOutput::Send(_))));
    }

    #[test]
    fn retry_budget_defers_without_consuming_attempts() {
        let mut c = LeaseClient::<u64, String>::new(
            ClientId(1),
            ClientConfig {
                max_retries: 3,
                retry_budget: Some(RetryBudget {
                    rate: 2.0,
                    burst: 1.0,
                }),
                ..cfg()
            },
        );
        let req = start_read(&mut c, t(0), 1, 7);
        // First retry: bucket starts full, token taken, retransmits.
        let out = c.handle(t(500), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(out.iter().any(|o| matches!(o, ClientOutput::Send(_))));
        assert_eq!(c.counters.retries, 1);
        // Immediate second fire: bucket empty -> deferred, not sent, no
        // attempt consumed; re-armed when a token is due (0.5 s at 2/s).
        let out = c.handle(t(500), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(!out.iter().any(|o| matches!(o, ClientOutput::Send(_))));
        assert!(out.iter().any(|o| matches!(
            o,
            ClientOutput::SetTimer { timer: ClientTimer::Retry(r), at } if *r == req && *at == t(1000)
        )));
        assert_eq!(c.counters.retries, 1);
        assert_eq!(c.counters.budget_deferred, 1);
        // When the deferred fire lands, the refilled bucket admits it.
        let out = c.handle(t(1000), ClientInput::Timer(ClientTimer::Retry(req)));
        assert!(out.iter().any(|o| matches!(o, ClientOutput::Send(_))));
        assert_eq!(c.counters.retries, 2);
    }

    #[test]
    fn regressive_grant_is_ignored() {
        let mut c = client();
        let req = start_read(&mut c, t(0), 1, 7);
        deliver_grants(&mut c, t(1), req, vec![grant(7, 5, "v5", 1000)]);
        // An old, reordered grant with version 3 must not clobber v5.
        let req2 = start_read(&mut c, t(5000), 2, 7);
        deliver_grants(&mut c, t(5001), req2, vec![grant(7, 3, "v3", 1000)]);
        assert_eq!(c.cached_version(7), Some(Version(5)));
    }
}
