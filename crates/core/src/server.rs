//! The lease server state machine.
//!
//! This is the server side of §2 of the paper: it grants leases on reads,
//! collects leaseholder approvals (or waits out lease expiry) before
//! committing writes, avoids write starvation by deferring new grants on a
//! resource with a write pending (footnote 1), optimizes installed files
//! with periodic multicast extensions and delayed update (§4), and recovers
//! from crashes by honouring the maximum term it ever granted (§2).
//!
//! The machine is sans-IO: every call takes `now` (the server's local
//! clock) and a [`Storage`] for the primary copies, and returns the
//! messages, timers, and persistence actions the harness must perform.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use lease_clock::{Dur, Time};

use crate::msg::{ErrorReason, Grant, ToClient, ToServer};
use crate::policy::{TermController, TermPolicy};
use crate::stats::ResourceStats;
use crate::storage::Storage;
use crate::table::LeaseTable;
use crate::types::{ClientId, LeaseHandle, ReqId, Resource, Version, WriteId};

/// How the server survives a crash (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Persist only the maximum term ever granted; after a restart, defer
    /// every write until that much time has passed ("it delays writes to
    /// all files for that period").
    MaxTerm,
    /// Persist each lease record; after a restart, writes wait only on the
    /// actual unexpired leases. Costs one persistence action per grant.
    PersistentRecords,
}

/// Server configuration.
pub struct ServerConfig<R: Resource> {
    /// Term policy for ordinary grants.
    pub policy: Box<dyn TermPolicy<R>>,
    /// Crash-recovery mode.
    pub recovery: RecoveryMode,
    /// Period of the installed-file multicast extension (§4).
    pub installed_tick: Dur,
    /// Term carried by each multicast extension.
    pub installed_term: Dur,
    /// How many recent write replies to remember per client for
    /// at-most-once retransmission handling.
    pub dedup_capacity: usize,
    /// Smoothing constant for per-resource statistics.
    pub stats_tau: Dur,
    /// Refuse new grants (drop Fetch/Renew without reply) while the
    /// post-crash recovery window is open, instead of only stalling writes.
    ///
    /// §5 requires only that *writes* wait out the maximum term after a
    /// restart, so this defaults to `false`; deployments turn it on so a
    /// freshly restarted shard sheds read load until its lease knowledge is
    /// trustworthy again, letting client backoff spread the re-fetch storm.
    pub defer_grants_in_recovery: bool,
    /// Overload term controller: degrades granted terms toward a floor
    /// while load (fed via [`LeaseServer::set_pressure`] and holder-table
    /// occupancy) runs hot, recovering hysteretically when calm. `None` =
    /// the policy's term is granted unmodified.
    pub overload: Option<TermController>,
}

impl<R: Resource> ServerConfig<R> {
    /// A configuration with a fixed term and sensible defaults.
    pub fn fixed(term: Dur) -> ServerConfig<R> {
        ServerConfig {
            policy: Box::new(crate::policy::FixedTerm(term)),
            recovery: RecoveryMode::MaxTerm,
            installed_tick: Dur::from_secs(30),
            installed_term: Dur::from_secs(60),
            dedup_capacity: 64,
            stats_tau: Dur::from_secs(30),
            defer_grants_in_recovery: false,
            overload: None,
        }
    }
}

/// Timers the server asks the harness to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerTimer {
    /// A pending write's lease-expiry deadline.
    WriteDeadline(WriteId),
    /// The periodic installed-file multicast.
    InstalledTick,
}

/// Inputs to the server state machine.
#[derive(Debug, Clone)]
pub enum ServerInput<R, D> {
    /// A message from a client cache.
    Msg {
        /// The sender.
        from: ClientId,
        /// The message.
        msg: ToServer<R, D>,
    },
    /// A timer armed by an earlier output fired.
    Timer(ServerTimer),
    /// An administrative write with no requesting client (installing a new
    /// version of a system file, §4).
    LocalWrite {
        /// The resource to write.
        resource: R,
        /// The new contents.
        data: D,
    },
}

/// Effects the harness must apply after a `handle` call.
#[derive(Debug, Clone)]
pub enum ServerOutput<R, D> {
    /// Send a unicast message.
    Send {
        /// Recipient.
        to: ClientId,
        /// Message.
        msg: ToClient<R, D>,
    },
    /// Send one multicast message to a host group.
    Multicast {
        /// Recipients.
        to: Vec<ClientId>,
        /// Message.
        msg: ToClient<R, D>,
    },
    /// Arm a timer (re-arming an existing key replaces it).
    SetTimer {
        /// When it should fire.
        at: Time,
        /// Which timer.
        timer: ServerTimer,
    },
    /// Durably record the new maximum granted term (MaxTerm recovery).
    PersistMaxTerm(Dur),
    /// Durably record a lease (PersistentRecords recovery).
    PersistLease {
        /// Covered resource.
        resource: R,
        /// Holder.
        client: ClientId,
        /// Expiry on the server clock.
        expiry: Time,
    },
    /// A write committed to primary storage (for history/oracle hooks).
    Committed {
        /// Written resource.
        resource: R,
        /// New version.
        version: Version,
        /// The writing client, if any.
        writer: Option<ClientId>,
    },
}

/// Message and decision counters, exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Fetch requests received.
    pub fetch_rx: u64,
    /// Renew requests received.
    pub renew_rx: u64,
    /// Individual grants issued.
    pub grants: u64,
    /// Grants that carried data.
    pub grants_with_data: u64,
    /// Grants answered "unchanged" (version match, no data).
    pub grants_no_data: u64,
    /// Writes received (deduplicated retransmissions excluded).
    pub writes_rx: u64,
    /// Writes committed without waiting.
    pub writes_immediate: u64,
    /// Writes that had to wait for approvals or expiry.
    pub writes_deferred: u64,
    /// Approval-request multicasts sent.
    pub approval_multicasts: u64,
    /// Approvals received.
    pub approvals_rx: u64,
    /// Installed-file extension multicasts sent.
    pub installed_multicasts: u64,
    /// Retransmitted writes answered from the dedup cache.
    pub dedup_hits: u64,
    /// Error replies sent.
    pub errors: u64,
    /// Relinquish messages received.
    pub relinquish_rx: u64,
    /// Fetch/Renew requests dropped because the post-crash recovery window
    /// was still open (only with
    /// [`ServerConfig::defer_grants_in_recovery`]).
    pub recovery_refusals: u64,
    /// Grants whose term the overload controller shortened.
    pub degraded_grants: u64,
    /// Requests refused with `Shed` by admission control (mutated by the
    /// hosting runtime, which owns the admission decision).
    pub sheds: u64,
    /// Inputs dropped because their propagated deadline had already passed
    /// when the worker drained them (mutated by the hosting runtime).
    pub expired_drops: u64,
}

impl ServerCounters {
    /// Adds `other`'s counts into `self` — aggregation across independent
    /// server instances (e.g. the shards of a partitioned deployment).
    pub fn merge(&mut self, other: &ServerCounters) {
        self.fetch_rx += other.fetch_rx;
        self.renew_rx += other.renew_rx;
        self.grants += other.grants;
        self.grants_with_data += other.grants_with_data;
        self.grants_no_data += other.grants_no_data;
        self.writes_rx += other.writes_rx;
        self.writes_immediate += other.writes_immediate;
        self.writes_deferred += other.writes_deferred;
        self.approval_multicasts += other.approval_multicasts;
        self.approvals_rx += other.approvals_rx;
        self.installed_multicasts += other.installed_multicasts;
        self.dedup_hits += other.dedup_hits;
        self.errors += other.errors;
        self.relinquish_rx += other.relinquish_rx;
        self.recovery_refusals += other.recovery_refusals;
        self.degraded_grants += other.degraded_grants;
        self.sheds += other.sheds;
        self.expired_drops += other.expired_drops;
    }
}

#[derive(Debug, Clone)]
struct PendingWrite<D> {
    id: WriteId,
    writer: Option<(ClientId, ReqId)>,
    data: D,
    /// Leaseholders whose approval is still outstanding.
    awaiting: BTreeSet<ClientId>,
    /// When the last blocking lease expires (activated writes only).
    deadline: Time,
    /// Whether the write has been activated (front of its queue).
    active: bool,
}

#[derive(Debug, Clone, Copy)]
struct QueuedFetch {
    client: ClientId,
    req: ReqId,
    cached: Option<Version>,
}

/// The lease server.
///
/// See the [module documentation](self) for the protocol description and
/// [`ServerInput`]/[`ServerOutput`] for the I/O contract.
pub struct LeaseServer<R: Resource, D> {
    cfg: ServerConfig<R>,
    table: LeaseTable<R>,
    stats: HashMap<R, ResourceStats>,
    pending: HashMap<R, VecDeque<PendingWrite<D>>>,
    write_index: HashMap<WriteId, R>,
    queued_fetches: HashMap<R, Vec<QueuedFetch>>,
    /// Resources managed by multicast extension instead of per-client
    /// leases (§4 installed files).
    installed: HashSet<R>,
    /// Per-installed-resource latest expiry the server must honour.
    installed_expiry: HashMap<R, Time>,
    /// The host group receiving installed multicasts.
    installed_group: Vec<ClientId>,
    next_write: u64,
    /// Client writes currently queued or awaiting approval, for
    /// at-most-once handling of retransmissions that arrive mid-flight.
    inflight_writes: HashSet<(ClientId, ReqId)>,
    dedup: HashMap<(ClientId, ReqId), ToClient<R, D>>,
    dedup_order: VecDeque<(ClientId, ReqId)>,
    max_term_granted: Dur,
    /// Writes are deferred until this instant after a crash (MaxTerm mode).
    recovering_until: Option<Time>,
    /// Counters for experiments.
    pub counters: ServerCounters,
}

impl<R: Resource, D: Clone> LeaseServer<R, D> {
    /// Creates a server with the given configuration.
    pub fn new(cfg: ServerConfig<R>) -> LeaseServer<R, D> {
        LeaseServer {
            cfg,
            table: LeaseTable::new(),
            stats: HashMap::new(),
            pending: HashMap::new(),
            write_index: HashMap::new(),
            queued_fetches: HashMap::new(),
            installed: HashSet::new(),
            installed_expiry: HashMap::new(),
            installed_group: Vec::new(),
            next_write: 0,
            inflight_writes: HashSet::new(),
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
            max_term_granted: Dur::ZERO,
            recovering_until: None,
            counters: ServerCounters::default(),
        }
    }

    /// Declares `resource` an installed file: covered by periodic multicast
    /// extensions, no per-client lease records, writes via delayed update.
    pub fn add_installed(&mut self, resource: R) {
        self.installed.insert(resource);
    }

    /// Sets the host group that receives installed-file multicasts.
    pub fn set_installed_group(&mut self, group: Vec<ClientId>) {
        self.installed_group = group;
    }

    /// Arms initial timers; call once when the server comes up.
    pub fn start(&mut self, now: Time, store: &dyn Storage<R, D>) -> Vec<ServerOutput<R, D>> {
        let mut out = Vec::new();
        if !self.installed.is_empty() {
            // First multicast goes out immediately so caches start covered.
            self.installed_multicast(now, store, &mut out);
        }
        out
    }

    /// The lease table (for inspection in tests and experiments).
    pub fn table(&self) -> &LeaseTable<R> {
        &self.table
    }

    /// The maximum term ever granted (what MaxTerm recovery persists).
    pub fn max_term_granted(&self) -> Dur {
        self.max_term_granted
    }

    /// Whether a write is pending on `resource`.
    pub fn write_pending(&self, resource: R) -> bool {
        self.pending.get(&resource).is_some_and(|q| !q.is_empty())
    }

    /// Feeds one load observation into the overload term controller.
    ///
    /// `external` is the hosting runtime's load signal in `[0, 1]` (e.g.
    /// mailbox occupancy); the server combines it with its own
    /// holder-table occupancy (against the controller's configured
    /// capacity) by taking the max — either signal alone can drive
    /// degradation. A no-op when no controller is configured.
    pub fn set_pressure(&mut self, external: f64) {
        let table_len = self.table.len();
        if let Some(c) = &mut self.cfg.overload {
            let table_frac = if c.table_capacity > 0 {
                table_len as f64 / c.table_capacity as f64
            } else {
                0.0
            };
            c.observe(external.max(table_frac));
        }
    }

    /// The overload controller's current degradation level (0 when no
    /// controller is configured or the server is calm).
    pub fn term_level(&self) -> f64 {
        self.cfg.overload.as_ref().map_or(0.0, |c| c.level())
    }

    /// Applies the overload controller to a policy-chosen term.
    fn degraded(&mut self, term: Dur) -> Dur {
        let Some(c) = &self.cfg.overload else {
            return term;
        };
        let d = c.apply(term);
        if d < term {
            self.counters.degraded_grants += 1;
        }
        d
    }

    /// Handles one input; returns the effects to apply.
    pub fn handle(
        &mut self,
        now: Time,
        input: ServerInput<R, D>,
        store: &mut dyn Storage<R, D>,
    ) -> Vec<ServerOutput<R, D>> {
        let mut out = Vec::new();
        match input {
            ServerInput::Msg { from, msg } => self.on_msg(now, from, msg, store, &mut out),
            ServerInput::Timer(t) => self.on_timer(now, t, store, &mut out),
            ServerInput::LocalWrite { resource, data } => {
                self.start_write(now, None, resource, data, store, &mut out)
            }
        }
        out
    }

    /// Wipes volatile state (host crash). Durable state — primary copies
    /// and whatever was persisted through outputs — is the harness's to
    /// keep.
    pub fn crash(&mut self) {
        self.table.clear();
        self.stats.clear();
        self.pending.clear();
        self.write_index.clear();
        self.queued_fetches.clear();
        self.inflight_writes.clear();
        self.installed_expiry.clear();
        self.dedup.clear();
        self.dedup_order.clear();
        self.max_term_granted = Dur::ZERO;
        self.recovering_until = None;
    }

    /// Restarts after a crash.
    ///
    /// In [`RecoveryMode::MaxTerm`], pass the persisted maximum term; all
    /// writes are deferred until `now + max_term`. In
    /// [`RecoveryMode::PersistentRecords`], pass the persisted lease
    /// records; expired ones are discarded and writes wait only on live
    /// leases.
    pub fn recover(
        &mut self,
        now: Time,
        persisted_max_term: Option<Dur>,
        persisted_leases: Vec<(R, ClientId, Time)>,
        store: &dyn Storage<R, D>,
    ) -> Vec<ServerOutput<R, D>> {
        match self.cfg.recovery {
            RecoveryMode::MaxTerm => {
                if let Some(t) = persisted_max_term {
                    if !t.is_zero() {
                        self.recovering_until = Some(now + t);
                    }
                    self.max_term_granted = t;
                }
            }
            RecoveryMode::PersistentRecords => {
                for (r, c, expiry) in persisted_leases {
                    if expiry > now {
                        self.table.grant(r, c, expiry);
                    }
                }
                if let Some(t) = persisted_max_term {
                    self.max_term_granted = t;
                }
            }
        }
        self.start(now, store)
    }

    fn on_msg(
        &mut self,
        now: Time,
        from: ClientId,
        msg: ToServer<R, D>,
        store: &mut dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) {
        // Grant refusal during the §5 recovery window: a just-restarted
        // server does not know which leases its predecessor granted, so
        // (when configured) it answers no lease traffic at all until the
        // maximum term has drained. Dropping silently — rather than
        // replying with an error — leaves the client's retry/backoff
        // machinery to re-ask after the window, exactly as if the request
        // had been lost in transit.
        if self.cfg.defer_grants_in_recovery
            && matches!(msg, ToServer::Fetch { .. } | ToServer::Renew { .. })
        {
            if let Some(rec) = self.recovering_until {
                if now < rec {
                    self.counters.recovery_refusals += 1;
                    return;
                }
            }
        }
        match msg {
            ToServer::Fetch {
                req,
                resource,
                cached,
                also_extend,
            } => {
                self.counters.fetch_rx += 1;
                let mut grants = Vec::new();
                for (r, v, h) in also_extend {
                    if let Some(g) = self.try_grant(now, from, r, Some(v), h, store, out) {
                        grants.push(g);
                    }
                }
                if self.write_pending(resource) {
                    // Write-starvation guard (footnote 1): park the fetch
                    // (once; retransmissions collapse onto the first copy).
                    let parked = self.queued_fetches.entry(resource).or_default();
                    if !parked.iter().any(|q| q.client == from && q.req == req) {
                        parked.push(QueuedFetch {
                            client: from,
                            req,
                            cached,
                        });
                    }
                    if !grants.is_empty() {
                        out.push(ServerOutput::Send {
                            to: from,
                            msg: ToClient::Grants { req, grants },
                        });
                    }
                    return;
                }
                match self.try_grant(now, from, resource, cached, LeaseHandle::NULL, store, out) {
                    Some(g) => {
                        grants.push(g);
                        out.push(ServerOutput::Send {
                            to: from,
                            msg: ToClient::Grants { req, grants },
                        });
                    }
                    None => {
                        if !grants.is_empty() {
                            out.push(ServerOutput::Send {
                                to: from,
                                msg: ToClient::Grants { req, grants },
                            });
                        }
                        self.counters.errors += 1;
                        out.push(ServerOutput::Send {
                            to: from,
                            msg: ToClient::Error {
                                req,
                                reason: ErrorReason::NoSuchResource,
                            },
                        });
                    }
                }
            }
            ToServer::Renew { req, resources } => {
                self.counters.renew_rx += 1;
                let mut grants = Vec::new();
                for (r, v, h) in resources {
                    if let Some(g) = self.try_grant(now, from, r, Some(v), h, store, out) {
                        grants.push(g);
                    }
                }
                if !grants.is_empty() {
                    out.push(ServerOutput::Send {
                        to: from,
                        msg: ToClient::Grants { req, grants },
                    });
                }
            }
            ToServer::Write {
                req,
                resource,
                data,
            } => {
                if let Some(reply) = self.dedup.get(&(from, req)) {
                    self.counters.dedup_hits += 1;
                    out.push(ServerOutput::Send {
                        to: from,
                        msg: reply.clone(),
                    });
                    return;
                }
                if self.inflight_writes.contains(&(from, req)) {
                    // A retransmission of a write still awaiting approval:
                    // it is already queued, do not queue it twice.
                    self.counters.dedup_hits += 1;
                    return;
                }
                self.counters.writes_rx += 1;
                self.start_write(now, Some((from, req)), resource, data, store, out);
            }
            ToServer::Approve { write_id } => {
                self.counters.approvals_rx += 1;
                self.on_approve(now, from, write_id, store, out);
            }
            ToServer::Relinquish { resources } => {
                self.counters.relinquish_rx += 1;
                for r in resources {
                    self.table.release(r, from);
                }
            }
        }
    }

    /// Grants a lease on `resource` to `from`, or returns `None` if the
    /// resource is unknown or blocked by a pending write.
    ///
    /// `handle` is the client-echoed hint from the lease's last grant
    /// ([`LeaseHandle::NULL`] when the client has none): a renewal that
    /// presents a still-valid handle extends the record with one slab
    /// load instead of a keyed lookup.
    #[allow(clippy::too_many_arguments)] // one protocol input per argument
    fn try_grant(
        &mut self,
        now: Time,
        from: ClientId,
        resource: R,
        cached: Option<Version>,
        handle: LeaseHandle,
        store: &mut dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) -> Option<Grant<R, D>> {
        if self.write_pending(resource) {
            return None;
        }
        let (data, version) = store.read(&resource)?;
        let stats = self
            .stats
            .entry(resource)
            .or_insert_with(|| ResourceStats::new(self.cfg.stats_tau));
        stats.on_read(now);
        let mut rec_handle = LeaseHandle::NULL;
        let term = if self.installed.contains(&resource) {
            // Installed files: no per-client record; remember only the
            // latest expiry the server must honour on write.
            let exp = now + self.cfg.installed_term;
            let e = self.installed_expiry.entry(resource).or_insert(exp);
            *e = (*e).max(exp);
            self.cfg.installed_term
        } else {
            let stats = self.stats.get(&resource).expect("just inserted");
            let term = self.cfg.policy.term(&resource, from, stats);
            let term = self.degraded(term);
            if !term.is_zero() {
                let expiry = now.saturating_add(term);
                rec_handle = self.table.extend(handle, resource, from, expiry);
                if self.cfg.recovery == RecoveryMode::PersistentRecords {
                    out.push(ServerOutput::PersistLease {
                        resource,
                        client: from,
                        expiry,
                    });
                }
            }
            term
        };
        if term > self.max_term_granted {
            self.max_term_granted = term;
            if self.cfg.recovery == RecoveryMode::MaxTerm {
                out.push(ServerOutput::PersistMaxTerm(term));
            }
        }
        self.counters.grants += 1;
        let data = if cached == Some(version) {
            self.counters.grants_no_data += 1;
            None
        } else {
            self.counters.grants_with_data += 1;
            Some(data)
        };
        Some(Grant {
            resource,
            version,
            data,
            term,
            handle: rec_handle,
        })
    }

    fn start_write(
        &mut self,
        now: Time,
        writer: Option<(ClientId, ReqId)>,
        resource: R,
        data: D,
        store: &mut dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) {
        let id = WriteId(self.next_write);
        self.next_write += 1;
        let stats = self
            .stats
            .entry(resource)
            .or_insert_with(|| ResourceStats::new(self.cfg.stats_tau));
        stats.on_write(now, self.table.holder_count_at(resource, now));
        if let Some(w) = writer {
            self.inflight_writes.insert(w);
        }
        let pw = PendingWrite {
            id,
            writer,
            data,
            awaiting: BTreeSet::new(),
            deadline: now,
            active: false,
        };
        self.write_index.insert(id, resource);
        let queue = self.pending.entry(resource).or_default();
        queue.push_back(pw);
        if queue.len() == 1 {
            self.activate_front(now, resource, store, out);
        } else {
            self.counters.writes_deferred += 1;
        }
    }

    /// Activates the front pending write on `resource`: computes blockers,
    /// sends approval callbacks, and commits immediately if unblocked.
    fn activate_front(
        &mut self,
        now: Time,
        resource: R,
        store: &mut dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) {
        let Some(queue) = self.pending.get_mut(&resource) else {
            return;
        };
        let Some(front) = queue.front_mut() else {
            return;
        };
        front.active = true;
        let id = front.id;
        let writer = front.writer.map(|(c, _)| c);

        let mut deadline = now;
        let mut awaiting: BTreeSet<ClientId> = BTreeSet::new();

        if self.installed.contains(&resource) {
            // Delayed update (§4): stop extending the file, wait out the
            // latest multicast expiry, never contact leaseholders.
            if let Some(exp) = self.installed_expiry.get(&resource) {
                deadline = deadline.max(*exp);
            }
        } else {
            self.table.for_each_holder_at(resource, now, |holder| {
                // The write request carries the writer's implicit
                // approval (footnote 5).
                if Some(holder) != writer {
                    awaiting.insert(holder);
                }
            });
            if let Some(exp) = self.table.max_expiry(resource, now) {
                if !awaiting.is_empty() {
                    deadline = deadline.max(exp);
                }
            }
        }
        if let Some(rec) = self.recovering_until {
            // Post-crash: unknown leaseholders may exist until `rec`.
            deadline = deadline.max(rec);
        }

        let front = self
            .pending
            .get_mut(&resource)
            .and_then(|q| q.front_mut())
            .expect("front exists");
        front.awaiting = awaiting.clone();
        front.deadline = deadline;

        if awaiting.is_empty() && deadline <= now {
            self.counters.writes_immediate += 1;
            self.commit_front(now, resource, store, out);
            return;
        }
        self.counters.writes_deferred += 1;
        if !awaiting.is_empty() {
            self.counters.approval_multicasts += 1;
            let replaces = store.version(&resource).unwrap_or(Version(0));
            out.push(ServerOutput::Multicast {
                to: awaiting.into_iter().collect(),
                msg: ToClient::ApprovalRequest {
                    write_id: id,
                    resource,
                    replaces,
                },
            });
        }
        out.push(ServerOutput::SetTimer {
            at: deadline,
            timer: ServerTimer::WriteDeadline(id),
        });
    }

    fn on_approve(
        &mut self,
        now: Time,
        from: ClientId,
        write_id: WriteId,
        store: &mut dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) {
        let Some(&resource) = self.write_index.get(&write_id) else {
            return; // Already resolved; duplicate or late approval.
        };
        // Approval invalidates the approver's copy, which releases its
        // lease on the datum.
        self.table.release(resource, from);
        let Some(front) = self.pending.get_mut(&resource).and_then(|q| q.front_mut()) else {
            return;
        };
        if front.id != write_id || !front.active {
            return;
        }
        front.awaiting.remove(&from);
        if front.awaiting.is_empty() {
            self.commit_front(now, resource, store, out);
        }
    }

    fn on_timer(
        &mut self,
        now: Time,
        timer: ServerTimer,
        store: &mut dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) {
        match timer {
            ServerTimer::WriteDeadline(write_id) => {
                let Some(&resource) = self.write_index.get(&write_id) else {
                    return; // Committed before the deadline.
                };
                let front_ok = self
                    .pending
                    .get(&resource)
                    .and_then(|q| q.front())
                    .is_some_and(|f| f.id == write_id && f.active);
                if !front_ok {
                    return;
                }
                // All blocking leases have expired by their terms; any
                // holder that never approved is unreachable or crashed and
                // its lease no longer protects it.
                self.commit_front(now, resource, store, out);
            }
            ServerTimer::InstalledTick => {
                self.installed_multicast(now, store, out);
            }
        }
    }

    fn installed_multicast(
        &mut self,
        now: Time,
        store: &dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) {
        let mut covered: Vec<(R, Version)> = self
            .installed
            .iter()
            .copied()
            .filter(|r| !self.write_pending(*r))
            .filter_map(|r| store.version(&r).map(|v| (r, v)))
            .collect();
        covered.sort_unstable_by_key(|(r, _)| *r);
        if !covered.is_empty() && !self.installed_group.is_empty() {
            for (r, _) in &covered {
                let exp = now + self.cfg.installed_term;
                let e = self.installed_expiry.entry(*r).or_insert(exp);
                *e = (*e).max(exp);
            }
            if self.cfg.installed_term > self.max_term_granted {
                self.max_term_granted = self.cfg.installed_term;
                if self.cfg.recovery == RecoveryMode::MaxTerm {
                    out.push(ServerOutput::PersistMaxTerm(self.cfg.installed_term));
                }
            }
            self.counters.installed_multicasts += 1;
            out.push(ServerOutput::Multicast {
                to: self.installed_group.clone(),
                msg: ToClient::InstalledExtend {
                    resources: covered,
                    term: self.cfg.installed_term,
                    sent_at: now,
                },
            });
        }
        if !self.installed.is_empty() {
            out.push(ServerOutput::SetTimer {
                at: now + self.cfg.installed_tick,
                timer: ServerTimer::InstalledTick,
            });
        }
    }

    fn commit_front(
        &mut self,
        now: Time,
        resource: R,
        store: &mut dyn Storage<R, D>,
        out: &mut Vec<ServerOutput<R, D>>,
    ) {
        let Some(pw) = self.pending.get_mut(&resource).and_then(|q| q.pop_front()) else {
            return;
        };
        self.write_index.remove(&pw.id);
        let version = store.write(&resource, pw.data);
        out.push(ServerOutput::Committed {
            resource,
            version,
            writer: pw.writer.map(|(c, _)| c),
        });
        if let Some((client, req)) = pw.writer {
            self.inflight_writes.remove(&(client, req));
            // The writer gets a fresh lease over its new copy.
            let term = if self.installed.contains(&resource) {
                Dur::ZERO
            } else {
                let stats = self
                    .stats
                    .entry(resource)
                    .or_insert_with(|| ResourceStats::new(self.cfg.stats_tau));
                let term = self.cfg.policy.term(&resource, client, stats);
                let term = self.degraded(term);
                if !term.is_zero() {
                    let expiry = now.saturating_add(term);
                    self.table.grant(resource, client, expiry);
                    if self.cfg.recovery == RecoveryMode::PersistentRecords {
                        out.push(ServerOutput::PersistLease {
                            resource,
                            client,
                            expiry,
                        });
                    }
                    if term > self.max_term_granted {
                        self.max_term_granted = term;
                        if self.cfg.recovery == RecoveryMode::MaxTerm {
                            out.push(ServerOutput::PersistMaxTerm(term));
                        }
                    }
                }
                term
            };
            let reply = ToClient::WriteDone {
                req,
                resource,
                version,
                term,
            };
            self.remember_reply(client, req, reply.clone());
            out.push(ServerOutput::Send {
                to: client,
                msg: reply,
            });
        }
        // Next queued write, if any, becomes active against the current
        // leaseholder set.
        if self.pending.get(&resource).is_some_and(|q| !q.is_empty()) {
            self.activate_front(now, resource, store, out);
            return;
        }
        self.pending.remove(&resource);
        // The starvation guard lifts: serve parked fetches.
        if let Some(parked) = self.queued_fetches.remove(&resource) {
            for qf in parked {
                match self.try_grant(
                    now,
                    qf.client,
                    resource,
                    qf.cached,
                    LeaseHandle::NULL,
                    store,
                    out,
                ) {
                    Some(g) => out.push(ServerOutput::Send {
                        to: qf.client,
                        msg: ToClient::Grants {
                            req: qf.req,
                            grants: vec![g],
                        },
                    }),
                    None => {
                        self.counters.errors += 1;
                        out.push(ServerOutput::Send {
                            to: qf.client,
                            msg: ToClient::Error {
                                req: qf.req,
                                reason: ErrorReason::NoSuchResource,
                            },
                        });
                    }
                }
            }
        }
    }

    fn remember_reply(&mut self, client: ClientId, req: ReqId, reply: ToClient<R, D>) {
        if self.cfg.dedup_capacity == 0 {
            return;
        }
        while self.dedup_order.len() >= self.cfg.dedup_capacity {
            if let Some(old) = self.dedup_order.pop_front() {
                self.dedup.remove(&old);
            }
        }
        self.dedup.insert((client, req), reply);
        self.dedup_order.push_back((client, req));
    }

    /// Lazily prunes expired leases; harnesses may call this periodically
    /// to bound table size (short terms keep it small, §2).
    pub fn prune(&mut self, now: Time) -> usize {
        self.table.prune(now)
    }
}
