//! The primary-copy storage interface the server state machine writes
//! through.

use std::collections::HashMap;

use crate::types::{Resource, Version};

/// Primary storage for leased data.
///
/// The lease server is sans-IO; the harness hands it a `Storage` on every
/// call. Writes through this interface are the paper's write-through
/// commits: once [`Storage::write`] returns, the write is durable and must
/// survive a server crash.
pub trait Storage<R, D> {
    /// Current contents and version, or `None` if the resource is unknown.
    fn read(&self, resource: &R) -> Option<(D, Version)>;

    /// Current version without the data.
    fn version(&self, resource: &R) -> Option<Version>;

    /// Commits new contents; returns the new version.
    fn write(&mut self, resource: &R, data: D) -> Version;
}

/// A `HashMap`-backed storage for tests and the real-time runtime.
#[derive(Debug, Clone, Default)]
pub struct MemStorage<R, D> {
    map: HashMap<R, (D, Version)>,
}

impl<R: Resource, D: Clone> MemStorage<R, D> {
    /// An empty storage.
    pub fn new() -> MemStorage<R, D> {
        MemStorage {
            map: HashMap::new(),
        }
    }

    /// Creates a resource with initial contents at version 1.
    pub fn insert(&mut self, resource: R, data: D) {
        self.map.insert(resource, (data, Version(1)));
    }

    /// Writes contents at an explicit version (used by the write-back
    /// extension, whose clients pre-allocate version ranges).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `version` does not advance the resource.
    pub fn set(&mut self, resource: R, data: D, version: Version) {
        if let Some((_, v)) = self.map.get(&resource) {
            debug_assert!(version > *v, "set must advance the version");
        }
        self.map.insert(resource, (data, version));
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the storage is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<R: Resource, D: Clone> Storage<R, D> for MemStorage<R, D> {
    fn read(&self, resource: &R) -> Option<(D, Version)> {
        self.map.get(resource).cloned()
    }

    fn version(&self, resource: &R) -> Option<Version> {
        self.map.get(resource).map(|(_, v)| *v)
    }

    fn write(&mut self, resource: &R, data: D) -> Version {
        let entry = self
            .map
            .entry(*resource)
            .or_insert_with(|| (data.clone(), Version(0)));
        entry.0 = data;
        entry.1 = entry.1.next();
        entry.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s: MemStorage<u64, String> = MemStorage::new();
        assert!(s.read(&1).is_none());
        assert!(s.version(&1).is_none());
        s.insert(1, "a".into());
        assert_eq!(s.read(&1), Some(("a".into(), Version(1))));
        let v = s.write(&1, "b".into());
        assert_eq!(v, Version(2));
        assert_eq!(s.version(&1), Some(Version(2)));
    }

    #[test]
    fn set_places_explicit_versions() {
        let mut s: MemStorage<u64, u8> = MemStorage::new();
        s.insert(1, 10);
        s.set(1, 20, Version(9));
        assert_eq!(s.read(&1), Some((20, Version(9))));
        // The next auto write continues from there.
        assert_eq!(s.write(&1, 30), Version(10));
    }

    #[test]
    fn write_creates_unknown_resource() {
        let mut s: MemStorage<u64, u8> = MemStorage::new();
        let v = s.write(&9, 42);
        assert_eq!(v, Version(1));
        assert_eq!(s.read(&9), Some((42, Version(1))));
    }
}
