//! Property: the slab lease table is observationally equivalent to the
//! reference (map + `BTreeSet`) table.
//!
//! The reference implementation is the executable specification; the slab
//! is the fast path. Both are driven through the same randomized script of
//! grants, handle-keyed extensions, releases, prunes, time jumps, and
//! crashes (`clear`), and after every step must agree on every observable:
//! holders, expiries, record count, prune count, and the grant counter.
//!
//! The slab runs with a 1-unit tick ([`SlabTable::with_tick`]) so its
//! wheel-backed prune is exact and comparable verbatim; the tick only
//! bounds prune *lag* and affects no query, so equivalence at tick 1
//! plus the slab's own lag tests cover the default configuration too.
//!
//! Handles are deliberately abused: the script remembers every handle a
//! grant ever returned and keeps presenting them after releases, slot
//! reuse, and crashes. The slab must treat each stale handle as a clean
//! miss (keyed fallback) for the tables to stay in lockstep — if a stale
//! handle ever touched the wrong record, holders or expiries would
//! diverge and the property would fail.

use std::collections::HashMap;

use lease_clock::{Dur, Time};
use lease_core::table::{LeaseHandle, ReferenceTable, SlabTable};
use lease_core::ClientId;
use proptest::prelude::*;

const RESOURCES: u64 = 6;
const CLIENTS: u32 = 4;

#[derive(Debug, Clone)]
enum Step {
    /// Keyed grant (or extension) of a lease `dt` past current time.
    Grant { resource: u64, client: u32, dt: u64 },
    /// Handle-keyed extension, echoing whatever handle the last grant for
    /// this key returned — possibly stale after release/reuse/crash.
    Extend { resource: u64, client: u32, dt: u64 },
    /// Voluntary release.
    Release { resource: u64, client: u32 },
    /// Advance time and physically prune.
    Prune { by: u64 },
    /// Advance time without pruning (lets grants land behind the slab
    /// wheel's position, and lets records expire logically first).
    Advance { by: u64 },
    /// Server crash: both tables drop all records.
    Crash,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..RESOURCES, 0..CLIENTS, 1u64..400).prop_map(|(resource, client, dt)| Step::Grant {
            resource,
            client,
            dt
        }),
        (0..RESOURCES, 0..CLIENTS, 1u64..400).prop_map(|(resource, client, dt)| Step::Extend {
            resource,
            client,
            dt
        }),
        (0..RESOURCES, 0..CLIENTS)
            .prop_map(|(resource, client)| Step::Release { resource, client }),
        (1u64..150).prop_map(|by| Step::Prune { by }),
        (1u64..150).prop_map(|by| Step::Advance { by }),
        (0u32..1).prop_map(|_| Step::Crash),
    ]
}

/// Asserts every observable the two tables share agrees at `now`.
fn assert_same_view(
    slab: &SlabTable<u64>,
    reference: &ReferenceTable<u64>,
    now: Time,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(slab.len(), reference.len());
    prop_assert_eq!(slab.is_empty(), reference.is_empty());
    prop_assert_eq!(slab.granted_total(), reference.granted_total());
    for r in 0..RESOURCES {
        prop_assert_eq!(slab.holders_at(r, now), reference.holders_at(r, now));
        prop_assert_eq!(
            slab.holder_count_at(r, now),
            reference.holder_count_at(r, now)
        );
        prop_assert_eq!(slab.max_expiry(r, now), reference.max_expiry(r, now));
        for c in 0..CLIENTS {
            let c = ClientId(c);
            prop_assert_eq!(slab.expiry_of(r, c, now), reference.expiry_of(r, c, now));
        }
    }
    // Full record dump, order included.
    let slab_recs: Vec<_> = slab.iter().collect();
    let ref_recs: Vec<_> = reference.iter().collect();
    prop_assert_eq!(slab_recs, ref_recs);
    // next_expiry: the reference answer is exact; the slab's is a lower
    // bound (stale wheel entries fire early and re-ask), absent iff no
    // records are live — which the len check above already aligned.
    match (slab.next_expiry(), reference.next_expiry()) {
        (None, None) => {}
        (Some(bound), Some(exact)) => prop_assert!(bound <= exact),
        (s, r) => prop_assert!(false, "next_expiry presence diverged: {s:?} vs {r:?}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 1024, ..ProptestConfig::default() })]
    #[test]
    fn slab_matches_reference(steps in proptest::collection::vec(step(), 1..80)) {
        let mut slab: SlabTable<u64> = SlabTable::with_tick(Dur(1));
        let mut reference: ReferenceTable<u64> = ReferenceTable::new();
        // Every handle any grant ever returned, never invalidated on our
        // side: exactly the abuse a slow, crashed, or confused client
        // would inflict on the server.
        let mut handles: HashMap<(u64, ClientId), LeaseHandle> = HashMap::new();
        let mut now = Time::ZERO;

        for s in steps {
            match s {
                Step::Grant { resource, client, dt } => {
                    let client = ClientId(client);
                    let expiry = Time(now.0 + dt);
                    let h = slab.grant(resource, client, expiry);
                    reference.grant(resource, client, expiry);
                    handles.insert((resource, client), h);
                }
                Step::Extend { resource, client, dt } => {
                    let client = ClientId(client);
                    let expiry = Time(now.0 + dt);
                    let h = handles
                        .get(&(resource, client))
                        .copied()
                        .unwrap_or(LeaseHandle::NULL);
                    let h = slab.extend(h, resource, client, expiry);
                    reference.extend(LeaseHandle::NULL, resource, client, expiry);
                    handles.insert((resource, client), h);
                }
                Step::Release { resource, client } => {
                    let client = ClientId(client);
                    slab.release(resource, client);
                    reference.release(resource, client);
                    // The stale handle stays in `handles` on purpose.
                }
                Step::Prune { by } => {
                    now = Time(now.0 + by);
                    let slab_removed = slab.prune(now);
                    let ref_removed = reference.prune(now);
                    prop_assert_eq!(slab_removed, ref_removed);
                }
                Step::Advance { by } => {
                    now = Time(now.0 + by);
                }
                Step::Crash => {
                    slab.clear();
                    reference.clear();
                    // Pre-crash handles stay around: they must all be
                    // clean misses against the post-crash slab.
                }
            }
            assert_same_view(&slab, &reference, now)?;
        }

        // Drain: after pruning far past every expiry the tables are empty.
        now = Time(now.0 + 10_000_000);
        prop_assert_eq!(slab.prune(now), reference.prune(now));
        assert_same_view(&slab, &reference, now)?;
        prop_assert!(slab.is_empty());
    }
}
