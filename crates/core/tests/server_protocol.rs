//! Protocol tests for the lease server state machine.
//!
//! These drive `LeaseServer` directly with hand-built inputs, checking the
//! §2 write-approval protocol, the footnote-1 starvation guard, the §4
//! installed-file optimization, and the §2/§5 crash-recovery behaviour.

use lease_clock::{Dur, Time};
use lease_core::{
    ClientId, Grant, LeaseHandle, LeaseServer, MemStorage, RecoveryMode, ReqId, ServerConfig,
    ServerInput, ServerOutput, ServerTimer, Storage, ToClient, ToServer, Version, WriteId,
};

type Server = LeaseServer<u64, String>;
type Out = Vec<ServerOutput<u64, String>>;

const C0: ClientId = ClientId(0);
const C1: ClientId = ClientId(1);
const C2: ClientId = ClientId(2);

fn t(ms: u64) -> Time {
    Time::from_millis(ms)
}

fn setup(term_secs: u64) -> (Server, MemStorage<u64, String>) {
    let server = LeaseServer::new(ServerConfig::fixed(Dur::from_secs(term_secs)));
    let mut store = MemStorage::new();
    store.insert(7, "seven".into());
    store.insert(8, "eight".into());
    (server, store)
}

fn fetch(
    server: &mut Server,
    store: &mut MemStorage<u64, String>,
    now: Time,
    from: ClientId,
    req: u64,
    resource: u64,
) -> Out {
    server.handle(
        now,
        ServerInput::Msg {
            from,
            msg: ToServer::Fetch {
                req: ReqId(req),
                resource,
                cached: None,
                also_extend: vec![],
            },
        },
        store,
    )
}

fn write(
    server: &mut Server,
    store: &mut MemStorage<u64, String>,
    now: Time,
    from: ClientId,
    req: u64,
    resource: u64,
    data: &str,
) -> Out {
    server.handle(
        now,
        ServerInput::Msg {
            from,
            msg: ToServer::Write {
                req: ReqId(req),
                resource,
                data: data.into(),
            },
        },
        store,
    )
}

fn approve(
    server: &mut Server,
    store: &mut MemStorage<u64, String>,
    now: Time,
    from: ClientId,
    write_id: WriteId,
) -> Out {
    server.handle(
        now,
        ServerInput::Msg {
            from,
            msg: ToServer::Approve { write_id },
        },
        store,
    )
}

fn first_grant(out: &Out) -> Option<Grant<u64, String>> {
    out.iter().find_map(|o| match o {
        ServerOutput::Send {
            msg: ToClient::Grants { grants, .. },
            ..
        } => grants.first().cloned(),
        _ => None,
    })
}

fn write_done(out: &Out) -> Option<(ClientId, Version)> {
    out.iter().find_map(|o| match o {
        ServerOutput::Send {
            to,
            msg: ToClient::WriteDone { version, .. },
        } => Some((*to, *version)),
        _ => None,
    })
}

fn approval_multicast(out: &Out) -> Option<(Vec<ClientId>, WriteId)> {
    out.iter().find_map(|o| match o {
        ServerOutput::Multicast {
            to,
            msg: ToClient::ApprovalRequest { write_id, .. },
        } => Some((to.clone(), *write_id)),
        _ => None,
    })
}

fn committed(out: &Out) -> Option<Version> {
    out.iter().find_map(|o| match o {
        ServerOutput::Committed { version, .. } => Some(*version),
        _ => None,
    })
}

#[test]
fn fetch_grants_lease_with_data() {
    let (mut s, mut store) = setup(10);
    let out = fetch(&mut s, &mut store, t(0), C0, 1, 7);
    let g = first_grant(&out).expect("grant");
    assert_eq!(g.resource, 7);
    assert_eq!(g.version, Version(1));
    assert_eq!(g.data.as_deref(), Some("seven"));
    assert_eq!(g.term, Dur::from_secs(10));
    assert_eq!(s.table().holders_at(7, t(0)), vec![C0]);
}

#[test]
fn version_match_omits_data() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C0, 1, 7);
    let out = s.handle(
        t(100),
        ServerInput::Msg {
            from: C0,
            msg: ToServer::Fetch {
                req: ReqId(2),
                resource: 7,
                cached: Some(Version(1)),
                also_extend: vec![],
            },
        },
        &mut store,
    );
    let g = first_grant(&out).unwrap();
    assert!(g.data.is_none());
    assert_eq!(s.counters.grants_no_data, 1);
}

#[test]
fn unknown_resource_is_an_error() {
    let (mut s, mut store) = setup(10);
    let out = fetch(&mut s, &mut store, t(0), C0, 1, 999);
    assert!(out.iter().any(|o| matches!(
        o,
        ServerOutput::Send {
            msg: ToClient::Error { .. },
            ..
        }
    )));
    assert_eq!(s.counters.errors, 1);
}

#[test]
fn unshared_write_commits_immediately() {
    let (mut s, mut store) = setup(10);
    // Writer holds the only lease: its request is its implicit approval.
    fetch(&mut s, &mut store, t(0), C0, 1, 7);
    let out = write(&mut s, &mut store, t(100), C0, 2, 7, "new");
    assert_eq!(committed(&out), Some(Version(2)));
    assert_eq!(write_done(&out), Some((C0, Version(2))));
    assert!(approval_multicast(&out).is_none());
    assert_eq!(s.counters.writes_immediate, 1);
    // The writer got a fresh lease.
    assert_eq!(s.table().holders_at(7, t(100)), vec![C0]);
}

#[test]
fn shared_write_waits_for_approvals() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C0, 1, 7);
    fetch(&mut s, &mut store, t(0), C1, 1, 7);
    fetch(&mut s, &mut store, t(0), C2, 1, 7);

    let out = write(&mut s, &mut store, t(100), C0, 2, 7, "new");
    assert!(committed(&out).is_none(), "must defer: {out:?}");
    let (holders, wid) = approval_multicast(&out).expect("approval multicast");
    assert_eq!(holders, vec![C1, C2], "writer excluded (implicit approval)");
    assert_eq!(s.counters.writes_deferred, 1);

    // First approval: still waiting.
    let out = approve(&mut s, &mut store, t(101), C1, wid);
    assert!(committed(&out).is_none());
    // C1's lease is gone (approval invalidates the copy).
    assert_eq!(s.table().holders_at(7, t(101)), vec![C0, C2]);

    // Second approval: commit, notify writer.
    let out = approve(&mut s, &mut store, t(102), C2, wid);
    assert_eq!(committed(&out), Some(Version(2)));
    assert_eq!(write_done(&out), Some((C0, Version(2))));
    assert_eq!(store.read(&7).unwrap().0, "new");
}

#[test]
fn write_deadline_commits_when_holder_is_silent() {
    // A crashed or partitioned holder never approves; the write proceeds
    // when its lease expires (§2: "the delay continues until the lease
    // expires").
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C1, 1, 7); // lease until t = 10 s
    let out = write(&mut s, &mut store, t(2000), C0, 1, 7, "new");
    assert!(committed(&out).is_none());
    let deadline = out.iter().find_map(|o| match o {
        ServerOutput::SetTimer {
            at,
            timer: ServerTimer::WriteDeadline(w),
        } => Some((*at, *w)),
        _ => None,
    });
    let (at, wid) = deadline.expect("deadline timer");
    assert_eq!(at, t(10_000), "deadline is the holder's lease expiry");

    // C1 stays silent; the timer fires.
    let out = s.handle(
        at,
        ServerInput::Timer(ServerTimer::WriteDeadline(wid)),
        &mut store,
    );
    assert_eq!(committed(&out), Some(Version(2)));
    assert_eq!(write_done(&out), Some((C0, Version(2))));
}

#[test]
fn starvation_guard_parks_fetches_during_pending_write() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C1, 1, 7);
    let out = write(&mut s, &mut store, t(100), C0, 1, 7, "new");
    let (_, wid) = approval_multicast(&out).unwrap();

    // A read arrives while the write is pending: no grant yet.
    let out = fetch(&mut s, &mut store, t(150), C2, 9, 7);
    assert!(
        first_grant(&out).is_none(),
        "guard must park the fetch: {out:?}"
    );

    // The approval lands; the write commits and the parked fetch is served
    // with the *new* version.
    let out = approve(&mut s, &mut store, t(200), C1, wid);
    let grants: Vec<_> = out
        .iter()
        .filter_map(|o| match o {
            ServerOutput::Send {
                to,
                msg: ToClient::Grants { req, grants },
            } => Some((*to, *req, grants.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(grants.len(), 1);
    let (to, req, gs) = &grants[0];
    assert_eq!(*to, C2);
    assert_eq!(*req, ReqId(9));
    assert_eq!(gs[0].version, Version(2));
    assert_eq!(gs[0].data.as_deref(), Some("new"));
}

#[test]
fn queued_writes_commit_in_order() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C1, 1, 7);
    let out1 = write(&mut s, &mut store, t(100), C0, 1, 7, "w1");
    let (_, wid1) = approval_multicast(&out1).unwrap();
    // A second write queues behind the first.
    let out2 = write(&mut s, &mut store, t(110), C2, 1, 7, "w2");
    assert!(committed(&out2).is_none());
    assert!(approval_multicast(&out2).is_none(), "not active yet");

    // Approve W1: it commits; W2 activates. W2's blocker is now C0 (the
    // fresh lease W1's writer just received).
    let out = approve(&mut s, &mut store, t(120), C1, wid1);
    assert_eq!(committed(&out), Some(Version(2)));
    let (holders2, wid2) = approval_multicast(&out).expect("W2 activates with callbacks");
    assert_eq!(holders2, vec![C0]);

    let out = approve(&mut s, &mut store, t(130), C0, wid2);
    assert_eq!(committed(&out), Some(Version(3)));
    assert_eq!(store.read(&7).unwrap().0, "w2");
}

#[test]
fn duplicate_write_request_is_deduplicated() {
    let (mut s, mut store) = setup(10);
    let out = write(&mut s, &mut store, t(0), C0, 5, 7, "new");
    assert_eq!(committed(&out), Some(Version(2)));
    // The client retransmits the same request (the reply was lost).
    let out = write(&mut s, &mut store, t(500), C0, 5, 7, "new");
    assert!(committed(&out).is_none(), "must not commit twice");
    assert_eq!(
        write_done(&out),
        Some((C0, Version(2))),
        "replays the reply"
    );
    assert_eq!(store.version(&7), Some(Version(2)));
    assert_eq!(s.counters.dedup_hits, 1);
}

#[test]
fn duplicate_and_late_approvals_are_ignored() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C1, 1, 7);
    let out = write(&mut s, &mut store, t(100), C0, 1, 7, "new");
    let (_, wid) = approval_multicast(&out).unwrap();
    let out = approve(&mut s, &mut store, t(101), C1, wid);
    assert_eq!(committed(&out), Some(Version(2)));
    // Same approval again, and one for a bogus id: both no-ops.
    let out = approve(&mut s, &mut store, t(102), C1, wid);
    assert!(out.is_empty());
    let out = approve(&mut s, &mut store, t(103), C1, WriteId(999));
    assert!(out.is_empty());
}

#[test]
fn relinquish_releases_leases() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C0, 1, 7);
    fetch(&mut s, &mut store, t(0), C0, 2, 8);
    s.handle(
        t(100),
        ServerInput::Msg {
            from: C0,
            msg: ToServer::Relinquish {
                resources: vec![7, 8],
            },
        },
        &mut store,
    );
    assert!(s.table().is_empty());
    // A write now commits immediately.
    let out = write(&mut s, &mut store, t(200), C1, 1, 7, "new");
    assert_eq!(committed(&out), Some(Version(2)));
}

#[test]
fn zero_term_grants_record_no_holders() {
    let (mut s, mut store) = (
        Server::new(ServerConfig::fixed(Dur::ZERO)),
        MemStorage::new(),
    );
    store.insert(7, "seven".into());
    let out = fetch(&mut s, &mut store, t(0), C0, 1, 7);
    let g = first_grant(&out).unwrap();
    assert_eq!(g.term, Dur::ZERO);
    assert!(s.table().is_empty(), "zero-term leases leave no soft state");
    // Writes by anyone commit immediately.
    let out = write(&mut s, &mut store, t(1), C1, 1, 7, "new");
    assert_eq!(committed(&out), Some(Version(2)));
}

#[test]
fn max_term_is_persisted_once_per_increase() {
    let (mut s, mut store) = setup(10);
    let out = fetch(&mut s, &mut store, t(0), C0, 1, 7);
    let persisted: Vec<Dur> = out
        .iter()
        .filter_map(|o| match o {
            ServerOutput::PersistMaxTerm(d) => Some(*d),
            _ => None,
        })
        .collect();
    assert_eq!(persisted, vec![Dur::from_secs(10)]);
    // Same term again: no new persistence.
    let out = fetch(&mut s, &mut store, t(1), C1, 1, 7);
    assert!(!out
        .iter()
        .any(|o| matches!(o, ServerOutput::PersistMaxTerm(_))));
    assert_eq!(s.max_term_granted(), Dur::from_secs(10));
}

#[test]
fn recovery_max_term_defers_writes_not_reads() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C0, 1, 7);

    // Crash wipes the table; recovery honours the persisted max term.
    s.crash();
    assert!(s.table().is_empty());
    s.recover(t(5000), Some(Dur::from_secs(10)), vec![], &store);

    // Reads are served immediately after recovery.
    let out = fetch(&mut s, &mut store, t(5100), C1, 1, 7);
    assert!(first_grant(&out).is_some());

    // Writes wait out the full max term: deadline = 5 s + 10 s = 15 s.
    let out = write(&mut s, &mut store, t(5200), C2, 1, 7, "new");
    assert!(committed(&out).is_none());
    let deadline = out.iter().find_map(|o| match o {
        ServerOutput::SetTimer {
            at,
            timer: ServerTimer::WriteDeadline(w),
        } => Some((*at, *w)),
        _ => None,
    });
    let (at, wid) = deadline.expect("recovery deadline");
    // C1's new 10 s lease (expires 15.1 s) is also a blocker; the recovery
    // window (15 s) and the lease expiry combine.
    assert_eq!(at, t(15_100));
    let out = s.handle(
        at,
        ServerInput::Timer(ServerTimer::WriteDeadline(wid)),
        &mut store,
    );
    assert_eq!(committed(&out), Some(Version(2)));
}

#[test]
fn recovery_with_persistent_records_waits_only_on_live_leases() {
    let mut cfg = ServerConfig::fixed(Dur::from_secs(10));
    cfg.recovery = RecoveryMode::PersistentRecords;
    let mut s: Server = LeaseServer::new(cfg);
    let mut store = MemStorage::new();
    store.insert(7, "seven".into());
    store.insert(8, "eight".into());

    // Grants emit PersistLease outputs.
    let out = fetch(&mut s, &mut store, t(0), C1, 1, 7);
    let rec = out.iter().find_map(|o| match o {
        ServerOutput::PersistLease {
            resource,
            client,
            expiry,
        } => Some((*resource, *client, *expiry)),
        _ => None,
    });
    let rec = rec.expect("lease persisted");
    assert_eq!(rec, (7, C1, t(10_000)));

    s.crash();
    // Recover at 5 s with the persisted record (still live) and a dead one.
    s.recover(t(5000), None, vec![rec, (8, C2, t(1000))], &store);

    // A write to 7 must wait for C1's lease...
    let out = write(&mut s, &mut store, t(5100), C0, 1, 7, "new");
    assert!(committed(&out).is_none());
    assert_eq!(approval_multicast(&out).unwrap().0, vec![C1]);
    // ...but a write to 8 commits immediately (its record had expired).
    let out = write(&mut s, &mut store, t(5100), C0, 2, 8, "new");
    assert_eq!(committed(&out), Some(Version(2)));
}

#[test]
fn installed_files_use_multicast_and_delayed_update() {
    let (mut s, mut store) = setup(10);
    store.insert(100, "latex-v1".into());
    s.add_installed(100);
    s.set_installed_group(vec![C0, C1, C2]);

    // Startup emits the first multicast extension and re-arms the tick.
    let out = s.start(t(0), &store);
    let ext = out.iter().find_map(|o| match o {
        ServerOutput::Multicast {
            to,
            msg:
                ToClient::InstalledExtend {
                    resources,
                    term,
                    sent_at,
                },
        } => Some((to.clone(), resources.clone(), *term, *sent_at)),
        _ => None,
    });
    let (to, resources, term, sent_at) = ext.expect("installed multicast");
    assert_eq!(to, vec![C0, C1, C2]);
    assert_eq!(resources, vec![(100, Version(1))]);
    assert_eq!(sent_at, t(0));
    assert!(out.iter().any(|o| matches!(
        o,
        ServerOutput::SetTimer {
            timer: ServerTimer::InstalledTick,
            ..
        }
    )));

    // Fetches of installed files leave no per-client record.
    fetch(&mut s, &mut store, t(100), C0, 1, 100);
    assert!(
        s.table().is_empty(),
        "no leaseholder tracking for installed files"
    );

    // Installing a new version: no approval requests, wait out the term.
    let out = s.handle(
        t(1000),
        ServerInput::LocalWrite {
            resource: 100,
            data: "latex-v2".into(),
        },
        &mut store,
    );
    assert!(
        approval_multicast(&out).is_none(),
        "delayed update, no callbacks"
    );
    assert!(committed(&out).is_none());
    let (at, wid) = out
        .iter()
        .find_map(|o| match o {
            ServerOutput::SetTimer {
                at,
                timer: ServerTimer::WriteDeadline(w),
            } => Some((*at, *w)),
            _ => None,
        })
        .expect("deadline");
    // Covered until max(multicast at 0, fetch at 100 ms) + installed term.
    assert_eq!(at, t(100) + term);

    // While the write pends, the periodic multicast stops covering 100.
    let out = s.handle(
        t(30_000),
        ServerInput::Timer(ServerTimer::InstalledTick),
        &mut store,
    );
    let covered_again = out.iter().any(|o| {
        matches!(
            o,
            ServerOutput::Multicast { msg: ToClient::InstalledExtend { resources, .. }, .. }
                if resources.iter().any(|(r, _)| *r == 100)
        )
    });
    assert!(
        !covered_again,
        "write-pending installed file must drop out of the multicast"
    );

    let out = s.handle(
        at,
        ServerInput::Timer(ServerTimer::WriteDeadline(wid)),
        &mut store,
    );
    assert_eq!(committed(&out), Some(Version(2)));
    assert_eq!(store.read(&100).unwrap().0, "latex-v2");
}

#[test]
fn batched_extension_grants_everything_held() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C0, 1, 7);
    fetch(&mut s, &mut store, t(0), C0, 2, 8);
    // A fetch of 7 piggybacks the extension of 8.
    let out = s.handle(
        t(9000),
        ServerInput::Msg {
            from: C0,
            msg: ToServer::Fetch {
                req: ReqId(3),
                resource: 7,
                cached: Some(Version(1)),
                also_extend: vec![(8, Version(1), LeaseHandle::NULL)],
            },
        },
        &mut store,
    );
    let grants = out
        .iter()
        .find_map(|o| match o {
            ServerOutput::Send {
                msg: ToClient::Grants { grants, .. },
                ..
            } => Some(grants.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(grants.len(), 2);
    assert!(
        grants.iter().all(|g| g.data.is_none()),
        "versions matched: no data moved"
    );
    // Both leases now run to 19 s.
    assert_eq!(s.table().expiry_of(7, C0, t(9000)), Some(t(19_000)));
    assert_eq!(s.table().expiry_of(8, C0, t(9000)), Some(t(19_000)));
}

#[test]
fn renew_extends_without_completing_ops() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C0, 1, 7);
    let out = s.handle(
        t(5000),
        ServerInput::Msg {
            from: C0,
            msg: ToServer::Renew {
                req: ReqId(2),
                resources: vec![(7, Version(1), LeaseHandle::NULL)],
            },
        },
        &mut store,
    );
    let grants = out
        .iter()
        .find_map(|o| match o {
            ServerOutput::Send {
                msg: ToClient::Grants { grants, .. },
                ..
            } => Some(grants.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(grants.len(), 1);
    assert_eq!(s.table().expiry_of(7, C0, t(5000)), Some(t(15_000)));
    assert_eq!(s.counters.renew_rx, 1);
}

#[test]
fn extension_skips_resources_with_pending_writes() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C1, 1, 7);
    write(&mut s, &mut store, t(100), C0, 1, 7, "new"); // pending on C1
                                                        // C2 renews 7 opportunistically: nothing granted.
    let out = s.handle(
        t(200),
        ServerInput::Msg {
            from: C2,
            msg: ToServer::Renew {
                req: ReqId(9),
                resources: vec![(7, Version(1), LeaseHandle::NULL)],
            },
        },
        &mut store,
    );
    assert!(
        out.is_empty(),
        "no grants while a write is pending: {out:?}"
    );
}

#[test]
fn counters_track_activity() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C0, 1, 7);
    fetch(&mut s, &mut store, t(0), C1, 2, 7);
    let out = write(&mut s, &mut store, t(10), C0, 3, 7, "x");
    let (_, wid) = approval_multicast(&out).unwrap();
    approve(&mut s, &mut store, t(11), C1, wid);
    assert_eq!(s.counters.fetch_rx, 2);
    assert_eq!(s.counters.grants, 2);
    assert_eq!(s.counters.grants_with_data, 2);
    assert_eq!(s.counters.writes_rx, 1);
    assert_eq!(s.counters.writes_deferred, 1);
    assert_eq!(s.counters.approval_multicasts, 1);
    assert_eq!(s.counters.approvals_rx, 1);
}

#[test]
fn retransmitted_inflight_write_is_not_queued_twice() {
    // Regression: a Write retransmission arriving while the original is
    // still awaiting approvals must not create a second pending write
    // (which would commit the same logical write twice and stale out the
    // writer's fresh lease).
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C1, 1, 7);
    let out = write(&mut s, &mut store, t(100), C0, 5, 7, "new");
    let (_, wid) = approval_multicast(&out).unwrap();
    // The client retransmits the same write while it is pending.
    let out = write(&mut s, &mut store, t(600), C0, 5, 7, "new");
    assert!(
        out.is_empty(),
        "in-flight duplicate must be ignored: {out:?}"
    );
    assert_eq!(s.counters.writes_rx, 1);
    // Approval commits exactly one version.
    let out = approve(&mut s, &mut store, t(700), C1, wid);
    assert_eq!(committed(&out), Some(Version(2)));
    assert_eq!(store.version(&7), Some(Version(2)));
    // A retransmission after commit replays the reply.
    let out = write(&mut s, &mut store, t(1500), C0, 5, 7, "new");
    assert_eq!(write_done(&out), Some((C0, Version(2))));
    assert_eq!(
        store.version(&7),
        Some(Version(2)),
        "still exactly one commit"
    );
}

#[test]
fn retransmitted_parked_fetch_is_not_queued_twice() {
    let (mut s, mut store) = setup(10);
    fetch(&mut s, &mut store, t(0), C1, 1, 7);
    let out = write(&mut s, &mut store, t(100), C0, 1, 7, "new");
    let (_, wid) = approval_multicast(&out).unwrap();
    // Parked fetch, retransmitted twice.
    fetch(&mut s, &mut store, t(150), C2, 9, 7);
    fetch(&mut s, &mut store, t(650), C2, 9, 7);
    let out = approve(&mut s, &mut store, t(700), C1, wid);
    let grants_to_c2 = out
        .iter()
        .filter(
            |o| matches!(o, ServerOutput::Send { to, msg: ToClient::Grants { .. } } if *to == C2),
        )
        .count();
    assert_eq!(grants_to_c2, 1, "one parked copy, one reply");
}
