//! Property tests for the client's retransmission backoff policy.

use lease_clock::Dur;
use lease_core::Backoff;
use proptest::prelude::*;

proptest! {
    /// The nominal (pre-jitter) interval never decreases with the attempt
    /// number and never exceeds the cap.
    #[test]
    fn nominal_is_monotone_and_capped(
        base_ms in 1u64..2_000,
        cap_ms in 1u64..60_000,
        multiplier in 1.0f64..4.0,
        attempts in 1u32..40,
    ) {
        let b = Backoff { multiplier, cap: Dur::from_millis(cap_ms), jitter: 0.0 };
        let base = Dur::from_millis(base_ms);
        let mut prev = Dur::ZERO;
        for attempt in 1..=attempts {
            let d = b.nominal(base, attempt);
            prop_assert!(d >= prev, "attempt {attempt}: {d:?} < {prev:?}");
            prop_assert!(d <= Dur::from_millis(cap_ms).max(base),
                "attempt {attempt}: {d:?} above cap");
            prev = d;
        }
    }

    /// With jitter, every drawn interval lies in
    /// `[nominal * (1 - jitter), nominal]`, and jitter-free draws equal
    /// the nominal exactly.
    #[test]
    fn jitter_is_bounded_below_the_nominal(
        base_ms in 1u64..2_000,
        cap_ms in 10u64..60_000,
        multiplier in 1.0f64..4.0,
        jitter in 0.0f64..1.0,
        attempt in 1u32..30,
        salt in any::<u64>(),
    ) {
        let b = Backoff { multiplier, cap: Dur::from_millis(cap_ms), jitter };
        let base = Dur::from_millis(base_ms);
        let nominal = b.nominal(base, attempt);
        let drawn = b.interval(base, attempt, salt);
        prop_assert!(drawn <= nominal, "{drawn:?} > nominal {nominal:?}");
        let floor = nominal.saturating_sub(nominal.mul_f64(jitter));
        // Allow a nanosecond of float rounding slack at the floor.
        prop_assert!(
            drawn.as_nanos() + 1 >= floor.as_nanos(),
            "{drawn:?} below jitter floor {floor:?}"
        );

        let plain = Backoff { jitter: 0.0, ..b };
        prop_assert_eq!(plain.interval(base, attempt, salt), nominal);
    }

    /// Saturation: after arbitrarily many retries — attempt numbers all
    /// the way to `u32::MAX` — the nominal delay sits exactly at the cap
    /// and the jittered draw keeps its `[cap·(1−jitter), cap]` bounds. No
    /// overflow, no wraparound, no unbounded growth.
    #[test]
    fn saturates_at_cap_for_huge_attempts(
        base_ms in 1u64..2_000,
        cap_ms in 1u64..60_000,
        multiplier in 2.0f64..8.0,
        jitter in 0.0f64..1.0,
        attempt_idx in 0usize..5,
        salt in any::<u64>(),
    ) {
        let attempt = [100u32, 1_000, 1_000_000, u32::MAX - 1, u32::MAX][attempt_idx];
        let cap = Dur::from_millis(cap_ms).max(Dur::from_millis(base_ms));
        let b = Backoff { multiplier, cap, jitter };
        let base = Dur::from_millis(base_ms);
        // Any multiplier > 1 reaches the cap long before these attempt
        // numbers; every huge attempt lands exactly on it, monotonically.
        let nominal = b.nominal(base, attempt);
        prop_assert_eq!(nominal, cap);
        prop_assert!(b.nominal(base, attempt.saturating_sub(1)) <= nominal);
        let drawn = b.interval(base, attempt, salt);
        prop_assert!(drawn <= nominal);
        let floor = nominal.saturating_sub(nominal.mul_f64(jitter));
        prop_assert!(drawn.as_nanos() + 1 >= floor.as_nanos(),
            "{drawn:?} below jitter floor {floor:?} at attempt {attempt}");
    }

    /// The draw is a pure function of (policy, base, attempt, salt):
    /// replaying a schedule replays its intervals.
    #[test]
    fn intervals_are_deterministic(
        base_ms in 1u64..2_000,
        attempt in 1u32..30,
        salt in any::<u64>(),
    ) {
        let b = Backoff::exponential(Dur::from_secs(5));
        prop_assert_eq!(
            b.interval(Dur::from_millis(base_ms), attempt, salt),
            b.interval(Dur::from_millis(base_ms), attempt, salt)
        );
    }
}

/// The stock exponential policy doubles up to its cap.
#[test]
fn exponential_doubles_then_caps() {
    let b = Backoff::exponential(Dur::from_millis(800));
    let base = Dur::from_millis(100);
    assert_eq!(b.nominal(base, 1), Dur::from_millis(100));
    assert_eq!(b.nominal(base, 2), Dur::from_millis(200));
    assert_eq!(b.nominal(base, 3), Dur::from_millis(400));
    assert_eq!(b.nominal(base, 4), Dur::from_millis(800));
    assert_eq!(b.nominal(base, 5), Dur::from_millis(800), "capped");
    assert_eq!(b.nominal(base, 30), Dur::from_millis(800), "stays capped");
}
