//! Property tests for the protocol core: the lease table, and the
//! server/client pair driven through random message interleavings.

use lease_clock::{Dur, Time};
use lease_core::{
    ClientConfig, ClientId, ClientInput, ClientOutput, LeaseClient, LeaseServer, LeaseTable,
    MemStorage, Op, OpId, OpOutcome, ServerConfig, ServerInput, ServerOutput, Storage, ToClient,
    ToServer,
};
use proptest::prelude::*;

// ---------------------------------------------------------------- table --

#[derive(Debug, Clone)]
enum TableOp {
    Grant { r: u8, c: u8, expiry: u16 },
    Release { r: u8, c: u8 },
    Prune { now: u16 },
}

fn table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        (any::<u8>(), 0u8..8, any::<u16>()).prop_map(|(r, c, expiry)| TableOp::Grant {
            r: r % 16,
            c,
            expiry
        }),
        (any::<u8>(), 0u8..8).prop_map(|(r, c)| TableOp::Release { r: r % 16, c }),
        any::<u16>().prop_map(|now| TableOp::Prune { now }),
    ]
}

proptest! {
    /// The table agrees with a naive map model under random operations,
    /// and extensions never shorten leases.
    #[test]
    fn lease_table_matches_model(ops in proptest::collection::vec(table_op(), 1..200)) {
        let mut table: LeaseTable<u8> = LeaseTable::new();
        let mut model: std::collections::HashMap<(u8, u8), u16> = Default::default();
        let mut now_floor = 0u16;
        for op in ops {
            match op {
                TableOp::Grant { r, c, expiry } => {
                    table.grant(r, ClientId(c as u32), Time::from_secs(expiry as u64));
                    let e = model.entry((r, c)).or_insert(expiry);
                    *e = (*e).max(expiry);
                }
                TableOp::Release { r, c } => {
                    table.release(r, ClientId(c as u32));
                    model.remove(&(r, c));
                }
                TableOp::Prune { now } => {
                    table.prune(Time::from_secs(now as u64));
                    model.retain(|_, e| *e > now);
                    now_floor = now_floor.max(now);
                }
            }
            // Spot-check a query against the model.
            for r in 0..4u8 {
                let now = Time::from_secs(now_floor as u64);
                let mut expect: Vec<u32> = model
                    .iter()
                    .filter(|((mr, _), e)| *mr == r && **e > now_floor)
                    .map(|((_, c), _)| *c as u32)
                    .collect();
                expect.sort_unstable();
                let got: Vec<u32> =
                    table.holders_at(r, now).into_iter().map(|c| c.0).collect();
                prop_assert_eq!(got, expect);
            }
        }
    }
}

// ----------------------------------------------------- protocol shuffle --

/// Drives one server and two clients with random ops and a random (but
/// loss-free, reordering) message schedule, then checks cache coherence
/// invariants directly.
#[derive(Debug, Clone)]
enum DriveOp {
    Read { client: u8 },
    Write { client: u8, data: u64 },
    DeliverToServer { idx: u8 },
    DeliverToClient { client: u8, idx: u8 },
    Tick { ms: u16 },
}

fn drive_op() -> impl Strategy<Value = DriveOp> {
    prop_oneof![
        (0u8..2).prop_map(|client| DriveOp::Read { client }),
        (0u8..2, any::<u64>()).prop_map(|(client, data)| DriveOp::Write { client, data }),
        any::<u8>().prop_map(|idx| DriveOp::DeliverToServer { idx }),
        (0u8..2, any::<u8>()).prop_map(|(client, idx)| DriveOp::DeliverToClient { client, idx }),
        (1u16..2000).prop_map(|ms| DriveOp::Tick { ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Under arbitrary message reordering (no loss), every completed
    /// operation returns a version at least as new as whatever its client
    /// had already observed when the operation *started* (overlapping
    /// operations may legally complete out of version order), and a
    /// valid-lease cache entry never lags the client's observations.
    #[test]
    fn shuffled_delivery_preserves_session_order(
        ops in proptest::collection::vec(drive_op(), 1..150),
    ) {
        const RES: u64 = 1;
        let mut store: MemStorage<u64, u64> = MemStorage::new();
        store.insert(RES, 0);
        let mut server = LeaseServer::new(ServerConfig::fixed(Dur::from_secs(5)));
        let mut clients: Vec<LeaseClient<u64, u64>> = (0..2)
            .map(|i| LeaseClient::new(ClientId(i), ClientConfig {
                epsilon: Dur::from_millis(10),
                retry_interval: Dur::from_secs(3600), // no retries: pure reorder test
                ..ClientConfig::default()
            }))
            .collect();
        let mut to_server: Vec<(ClientId, ToServer<u64, u64>)> = Vec::new();
        let mut to_client: Vec<Vec<ToClient<u64, u64>>> = vec![Vec::new(), Vec::new()];
        let mut now = Time::ZERO;
        let mut next_op = 0u64;
        // Per-client observation high-water mark, plus the mark captured
        // at each operation's start (its legality floor).
        let mut last_seen = [0u64, 0];
        let mut op_floor: std::collections::HashMap<OpId, u64> = Default::default();

        let sink_client =
            |cid: usize,
             outs: Vec<ClientOutput<u64, u64>>,
             to_server: &mut Vec<(ClientId, ToServer<u64, u64>)>,
             last_seen: &mut [u64; 2],
             op_floor: &mut std::collections::HashMap<OpId, u64>| {
                for o in outs {
                    match o {
                        ClientOutput::Send(m) => to_server.push((ClientId(cid as u32), m)),
                        ClientOutput::Done { op, result: Ok(outcome) } => {
                            let v = match outcome {
                                OpOutcome::Read { version, .. } => version.0,
                                OpOutcome::Write { version } => version.0,
                            };
                            let floor = op_floor.remove(&op).unwrap_or(0);
                            assert!(
                                v >= floor,
                                "client {cid}: op saw version {v}, below its start floor {floor}"
                            );
                            last_seen[cid] = last_seen[cid].max(v);
                        }
                        _ => {}
                    }
                }
            };

        for op in ops {
            match op {
                DriveOp::Read { client } => {
                    let c = client as usize;
                    let id = OpId(next_op);
                    next_op += 1;
                    op_floor.insert(id, last_seen[c]);
                    let outs = clients[c].handle(now, ClientInput::Op { op: id, kind: Op::Read(RES) });
                    sink_client(c, outs, &mut to_server, &mut last_seen, &mut op_floor);
                }
                DriveOp::Write { client, data } => {
                    let c = client as usize;
                    let id = OpId(next_op);
                    next_op += 1;
                    op_floor.insert(id, last_seen[c]);
                    let outs =
                        clients[c].handle(now, ClientInput::Op { op: id, kind: Op::Write(RES, data) });
                    sink_client(c, outs, &mut to_server, &mut last_seen, &mut op_floor);
                }
                DriveOp::DeliverToServer { idx } => {
                    if to_server.is_empty() {
                        continue;
                    }
                    let i = idx as usize % to_server.len();
                    let (from, msg) = to_server.remove(i);
                    let outs =
                        server.handle(now, ServerInput::Msg { from, msg }, &mut store);
                    for o in outs {
                        match o {
                            ServerOutput::Send { to, msg } => to_client[to.0 as usize].push(msg),
                            ServerOutput::Multicast { to, msg } => {
                                for c in to {
                                    to_client[c.0 as usize].push(msg.clone());
                                }
                            }
                            _ => {}
                        }
                    }
                }
                DriveOp::DeliverToClient { client, idx } => {
                    let c = client as usize;
                    if to_client[c].is_empty() {
                        continue;
                    }
                    let i = idx as usize % to_client[c].len();
                    let msg = to_client[c].remove(i);
                    let outs = clients[c].handle(now, ClientInput::Msg(msg));
                    sink_client(c, outs, &mut to_server, &mut last_seen, &mut op_floor);
                }
                DriveOp::Tick { ms } => {
                    now += Dur::from_millis(ms as u64);
                }
            }
            // Invariant: a client's valid-lease cached version is never
            // behind a version it has already observed.
            for (c, cl) in clients.iter().enumerate() {
                if cl.lease_valid(RES, now) {
                    let v = cl.cached_version(RES).unwrap().0;
                    prop_assert!(
                        v >= last_seen[c],
                        "client {c} caches v{v} under lease after seeing v{}",
                        last_seen[c]
                    );
                }
            }
        }
        // Storage version equals the number of committed writes plus one.
        let final_version = store.version(&RES).unwrap().0;
        prop_assert!(final_version >= 1);
    }
}
