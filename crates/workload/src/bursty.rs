//! ON/OFF-modulated Poisson workloads.
//!
//! The paper notes that "actual file access is burstier than that given by
//! a Poisson distribution. This burstiness implies that short terms should
//! perform even better than our estimates indicate" (§3.2). This generator
//! produces exactly that effect: the same long-run rates as
//! [`PoissonWorkload`](crate::PoissonWorkload), but arrivals clustered into
//! ON periods, so more reads land within a short lease's window.

use lease_clock::{Dur, Time};
use lease_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::trace::{FileClass, FileSpec, Trace, TraceOp, TraceRecord};

/// An ON/OFF-modulated Poisson workload.
///
/// Each client alternates exponential ON periods (mean `on`) and OFF
/// periods (mean `off`). During ON, events arrive at `rate / duty` where
/// `duty = on / (on + off)`, so the long-run average rate is `rate`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstyWorkload {
    /// Number of clients.
    pub n: u32,
    /// Long-run per-client read rate.
    pub r: f64,
    /// Long-run per-client write rate.
    pub w: f64,
    /// Sharing degree (group size), as in the Poisson workload.
    pub s: u32,
    /// Mean ON-period length.
    pub on: Dur,
    /// Mean OFF-period length.
    pub off: Dur,
    /// Trace length.
    pub duration: Dur,
    /// RNG seed.
    pub seed: u64,
}

impl BurstyWorkload {
    /// Fraction of time spent in ON periods.
    pub fn duty(&self) -> f64 {
        let on = self.on.as_secs_f64();
        let off = self.off.as_secs_f64();
        on / (on + off)
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        assert!(self.s >= 1);
        assert!(self.duty() > 0.0, "ON period must be positive");
        let groups = self.n.div_ceil(self.s);
        let files: Vec<FileSpec> = (0..groups as u64)
            .map(|id| FileSpec {
                id,
                class: FileClass::Regular,
                path: None,
            })
            .collect();
        let mut records = Vec::new();
        let root = SimRng::seed(self.seed);
        let horizon = self.duration.as_secs_f64();
        let duty = self.duty();
        for client in 0..self.n {
            let file = (client / self.s) as u64;
            let mut rng = root.fork(client as u64);
            let mut t = 0.0;
            loop {
                // ON period: bursts of activity.
                let on_len = rng.exp_secs(1.0 / self.on.as_secs_f64().max(1e-9));
                let on_end = (t + on_len).min(horizon);
                let burst_r = self.r / duty;
                let burst_w = self.w / duty;
                let mut et = t;
                loop {
                    let total = burst_r + burst_w;
                    if total <= 0.0 {
                        break;
                    }
                    et += rng.exp_secs(total);
                    if et >= on_end {
                        break;
                    }
                    let is_read = rng.uniform() < burst_r / total;
                    let op = if is_read {
                        TraceOp::Read { file }
                    } else {
                        TraceOp::Write { file }
                    };
                    records.push(TraceRecord {
                        at: Time::ZERO + Dur::from_secs_f64(et),
                        client,
                        op,
                    });
                }
                t = on_end;
                if t >= horizon {
                    break;
                }
                // OFF period: silence.
                t += rng.exp_secs(1.0 / self.off.as_secs_f64().max(1e-9));
                if t >= horizon {
                    break;
                }
            }
        }
        Trace::new(files, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::PoissonWorkload;
    use crate::stats::TraceStats;

    fn bursty() -> BurstyWorkload {
        BurstyWorkload {
            n: 1,
            r: 1.0,
            w: 0.05,
            s: 1,
            on: Dur::from_secs(5),
            off: Dur::from_secs(20),
            duration: Dur::from_secs(4000),
            seed: 11,
        }
    }

    #[test]
    fn long_run_rate_is_preserved() {
        let w = bursty();
        let trace = w.generate();
        let stats = TraceStats::from_trace(&trace);
        assert!(
            (stats.read_rate - 1.0).abs() < 0.15,
            "R = {}",
            stats.read_rate
        );
    }

    #[test]
    fn burstier_than_poisson() {
        // Index of dispersion (variance/mean of per-window counts) is ~1
        // for Poisson and substantially larger for the ON/OFF stream.
        let b = TraceStats::from_trace(&bursty().generate());
        let p = TraceStats::from_trace(
            &PoissonWorkload {
                n: 1,
                r: 1.0,
                w: 0.05,
                s: 1,
                duration: Dur::from_secs(4000),
                seed: 11,
            }
            .generate(),
        );
        assert!(p.burstiness < 2.0, "poisson dispersion {}", p.burstiness);
        assert!(b.burstiness > 3.0, "bursty dispersion {}", b.burstiness);
    }

    #[test]
    fn duty_cycle() {
        let w = bursty();
        assert!((w.duty() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        assert_eq!(bursty().generate(), bursty().generate());
    }
}
