//! The trace format: a time-ordered stream of file operations.

use lease_clock::{Dur, Time};
use serde::{Deserialize, Serialize};

/// The access classes the V cache distinguishes (§2, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileClass {
    /// Ordinary files, fully covered by the consistency protocol.
    Regular,
    /// Installed files: commands, headers, libraries — widely shared,
    /// read-mostly, eligible for the §4 multicast optimization.
    Installed,
    /// Temporary files, handled outside the protocol (like a local disk);
    /// excluded from the consistency-relevant rates.
    Temporary,
    /// Directory name-binding information; reading it models the lookup
    /// a repeated `open` needs (§2).
    Directory,
}

/// A file participating in a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSpec {
    /// Trace-local file id.
    pub id: u64,
    /// Access class.
    pub class: FileClass,
    /// Human-readable path, if meaningful.
    pub path: Option<String>,
}

/// One operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// A logical read: an open for reading, a program load, or a lookup.
    Read {
        /// The file.
        file: u64,
    },
    /// A logical write: a close (commit) after writing.
    Write {
        /// The file.
        file: u64,
    },
}

impl TraceOp {
    /// The file the operation touches.
    pub fn file(&self) -> u64 {
        match self {
            TraceOp::Read { file } | TraceOp::Write { file } => *file,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, TraceOp::Read { .. })
    }
}

/// One timestamped operation by one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the operation is issued.
    pub at: Time,
    /// The issuing client (dense ids from 0).
    pub client: u32,
    /// The operation.
    pub op: TraceOp,
}

/// A complete trace: the file population plus the operation stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Files referenced by the records.
    pub files: Vec<FileSpec>,
    /// Operations, ordered by time.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace, sorting records by time (stable, so equal-time
    /// records keep generation order).
    pub fn new(files: Vec<FileSpec>, mut records: Vec<TraceRecord>) -> Trace {
        records.sort_by_key(|r| r.at);
        Trace { files, records }
    }

    /// Trace duration: time of the last record.
    pub fn duration(&self) -> Dur {
        self.records
            .last()
            .map(|r| r.at.saturating_since(Time::ZERO))
            .unwrap_or(Dur::ZERO)
    }

    /// Number of distinct clients (max id + 1).
    pub fn client_count(&self) -> u32 {
        self.records.iter().map(|r| r.client + 1).max().unwrap_or(0)
    }

    /// The class of a file, defaulting to regular for unknown ids.
    pub fn class_of(&self, file: u64) -> FileClass {
        self.files
            .iter()
            .find(|f| f.id == file)
            .map(|f| f.class)
            .unwrap_or(FileClass::Regular)
    }

    /// Checks internal consistency: records sorted, files unique, every
    /// referenced file declared.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.records.windows(2) {
            if w[1].at < w[0].at {
                return Err(format!("records out of order at {:?}", w[1].at));
            }
        }
        let mut ids: Vec<u64> = self.files.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        if ids.len() != before {
            return Err("duplicate file ids".into());
        }
        for r in &self.records {
            if ids.binary_search(&r.op.file()).is_err() {
                return Err(format!("record references undeclared file {}", r.op.file()));
            }
        }
        Ok(())
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            vec![
                FileSpec {
                    id: 1,
                    class: FileClass::Regular,
                    path: Some("/a".into()),
                },
                FileSpec {
                    id: 2,
                    class: FileClass::Installed,
                    path: None,
                },
            ],
            vec![
                TraceRecord {
                    at: Time::from_secs(2),
                    client: 0,
                    op: TraceOp::Write { file: 1 },
                },
                TraceRecord {
                    at: Time::from_secs(1),
                    client: 0,
                    op: TraceOp::Read { file: 2 },
                },
            ],
        )
    }

    #[test]
    fn new_sorts_records() {
        let t = sample();
        assert!(t.records[0].at < t.records[1].at);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn duration_and_clients() {
        let t = sample();
        assert_eq!(t.duration(), Dur::from_secs(2));
        assert_eq!(t.client_count(), 1);
        let empty = Trace::new(vec![], vec![]);
        assert_eq!(empty.duration(), Dur::ZERO);
        assert_eq!(empty.client_count(), 0);
    }

    #[test]
    fn class_lookup_defaults_to_regular() {
        let t = sample();
        assert_eq!(t.class_of(2), FileClass::Installed);
        assert_eq!(t.class_of(999), FileClass::Regular);
    }

    #[test]
    fn validate_catches_undeclared_files() {
        let mut t = sample();
        t.records.push(TraceRecord {
            at: Time::from_secs(3),
            client: 0,
            op: TraceOp::Read { file: 42 },
        });
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_duplicate_ids() {
        let mut t = sample();
        t.files.push(FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        });
        assert!(t.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let j = t.to_json();
        let back = Trace::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn op_accessors() {
        let r = TraceOp::Read { file: 5 };
        let w = TraceOp::Write { file: 6 };
        assert!(r.is_read() && !w.is_read());
        assert_eq!(r.file(), 5);
        assert_eq!(w.file(), 6);
    }
}
