//! Trace statistics: recovering the Table 2 parameters from a trace.

use serde::{Deserialize, Serialize};

use crate::trace::{FileClass, Trace};

/// Summary statistics of a trace, in the terms of the paper's Table 2.
///
/// Temporary-file operations are excluded from the rates, mirroring the V
/// cache's special handling ("operations on temporary files do not appear
/// because they are handled specially", §3.2). Directory reads count as
/// reads: the paper's measurements "include program loading and access to
/// information about files (such as directory lookups)".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Trace length, seconds.
    pub duration_secs: f64,
    /// Number of clients.
    pub clients: u32,
    /// Consistency-relevant reads (non-temporary).
    pub reads: u64,
    /// Consistency-relevant writes (non-temporary).
    pub writes: u64,
    /// Temporary-file operations excluded from the rates.
    pub temp_ops: u64,
    /// Per-client read rate `R`, reads/second.
    pub read_rate: f64,
    /// Per-client write rate `W`, writes/second.
    pub write_rate: f64,
    /// Read/write ratio.
    pub rw_ratio: f64,
    /// Fraction of reads against installed files.
    pub installed_read_fraction: f64,
    /// Fraction of reads that are directory lookups.
    pub directory_read_fraction: f64,
    /// Index of dispersion of per-10-second read counts (1 ≈ Poisson,
    /// larger = burstier).
    pub burstiness: f64,
}

impl TraceStats {
    /// Computes statistics from a trace.
    pub fn from_trace(trace: &Trace) -> TraceStats {
        let duration_secs = trace.duration().as_secs_f64().max(1e-9);
        let clients = trace.client_count().max(1);
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut temp_ops = 0u64;
        let mut installed_reads = 0u64;
        let mut dir_reads = 0u64;
        // Per-10-second read counts for the dispersion index.
        let window = 10.0;
        let bins = (duration_secs / window).ceil() as usize;
        let mut counts = vec![0f64; bins.max(1)];
        for r in &trace.records {
            let class = trace.class_of(r.op.file());
            if class == FileClass::Temporary {
                temp_ops += 1;
                continue;
            }
            if r.op.is_read() {
                reads += 1;
                if class == FileClass::Installed {
                    installed_reads += 1;
                }
                if class == FileClass::Directory {
                    dir_reads += 1;
                }
                let bin = ((r.at.as_secs_f64() / window) as usize).min(counts.len() - 1);
                counts[bin] += 1.0;
            } else {
                writes += 1;
            }
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        let burstiness = if mean > 0.0 { var / mean } else { 0.0 };
        let read_rate = reads as f64 / duration_secs / clients as f64;
        let write_rate = writes as f64 / duration_secs / clients as f64;
        TraceStats {
            duration_secs,
            clients,
            reads,
            writes,
            temp_ops,
            read_rate,
            write_rate,
            rw_ratio: if writes > 0 {
                reads as f64 / writes as f64
            } else {
                f64::INFINITY
            },
            installed_read_fraction: if reads > 0 {
                installed_reads as f64 / reads as f64
            } else {
                0.0
            },
            directory_read_fraction: if reads > 0 {
                dir_reads as f64 / reads as f64
            } else {
                0.0
            },
            burstiness,
        }
    }

    /// Renders the Table 2 rows.
    pub fn table(&self) -> String {
        format!(
            "rate of reads             R      {:.3} /sec\n\
             rate of writes            W      {:.3} /sec\n\
             read/write ratio                 {:.1}\n\
             installed fraction of reads      {:.1}%\n\
             directory fraction of reads      {:.1}%\n\
             clients                   N      {}\n\
             duration                         {:.0} sec\n\
             ops excluded (temporary)         {}\n\
             burstiness (index of dispersion) {:.2}",
            self.read_rate,
            self.write_rate,
            self.rw_ratio,
            self.installed_read_fraction * 100.0,
            self.directory_read_fraction * 100.0,
            self.clients,
            self.duration_secs,
            self.temp_ops,
            self.burstiness,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FileSpec, TraceOp, TraceRecord};
    use lease_clock::Time;

    fn spec(id: u64, class: FileClass) -> FileSpec {
        FileSpec {
            id,
            class,
            path: None,
        }
    }

    #[test]
    fn counts_and_rates() {
        let mut records = Vec::new();
        // 100 s: 50 reads of installed 1, 30 reads of regular 2,
        // 10 writes of 2, 20 temp ops of 3, 20 dir reads of 4.
        for i in 0..50u64 {
            records.push(TraceRecord {
                at: Time::from_secs(i * 2),
                client: 0,
                op: TraceOp::Read { file: 1 },
            });
        }
        for i in 0..30u64 {
            records.push(TraceRecord {
                at: Time::from_secs(i * 3),
                client: 0,
                op: TraceOp::Read { file: 2 },
            });
        }
        for i in 0..10u64 {
            records.push(TraceRecord {
                at: Time::from_secs(i * 10),
                client: 0,
                op: TraceOp::Write { file: 2 },
            });
        }
        for i in 0..20u64 {
            records.push(TraceRecord {
                at: Time::from_secs(i * 5),
                client: 0,
                op: TraceOp::Write { file: 3 },
            });
        }
        for i in 0..20u64 {
            records.push(TraceRecord {
                at: Time::from_secs(i * 5),
                client: 0,
                op: TraceOp::Read { file: 4 },
            });
        }
        records.push(TraceRecord {
            at: Time::from_secs(100),
            client: 0,
            op: TraceOp::Read { file: 2 },
        });
        let trace = Trace::new(
            vec![
                spec(1, FileClass::Installed),
                spec(2, FileClass::Regular),
                spec(3, FileClass::Temporary),
                spec(4, FileClass::Directory),
            ],
            records,
        );
        let s = TraceStats::from_trace(&trace);
        assert_eq!(s.reads, 101);
        assert_eq!(s.writes, 10);
        assert_eq!(s.temp_ops, 20);
        assert!((s.duration_secs - 100.0).abs() < 1e-9);
        assert!((s.read_rate - 1.01).abs() < 1e-9);
        assert!((s.installed_read_fraction - 50.0 / 101.0).abs() < 1e-9);
        assert!((s.directory_read_fraction - 20.0 / 101.0).abs() < 1e-9);
        assert!((s.rw_ratio - 10.1).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_safe() {
        let s = TraceStats::from_trace(&Trace::new(vec![], vec![]));
        assert_eq!(s.reads, 0);
        assert!(s.rw_ratio.is_infinite());
        assert_eq!(s.burstiness, 0.0);
    }

    #[test]
    fn table_renders() {
        let s = TraceStats::from_trace(&Trace::new(vec![], vec![]));
        let t = s.table();
        assert!(t.contains("rate of reads"));
        assert!(t.contains("R"));
    }
}
