//! The §3.1 model workload: Poisson reads and writes over shared files.

use lease_clock::{Dur, Time};
use lease_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::trace::{FileClass, FileSpec, Trace, TraceOp, TraceRecord};

/// The analytic model's workload: `N` clients, per-client Poisson read and
/// write rates `R` and `W`, arranged in groups of `S` clients that share
/// one file per group — so every write finds the file cached by `S` caches,
/// matching the model's sharing parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonWorkload {
    /// Number of clients `N` (must be a multiple of `s` for clean groups;
    /// a ragged final group is allowed).
    pub n: u32,
    /// Per-client read rate `R`, reads/second.
    pub r: f64,
    /// Per-client write rate `W`, writes/second (0 for read-only).
    pub w: f64,
    /// Sharing degree `S` ≥ 1.
    pub s: u32,
    /// Trace length.
    pub duration: Dur,
    /// RNG seed.
    pub seed: u64,
}

impl PoissonWorkload {
    /// The V-system rates with a chosen sharing degree.
    pub fn v_rates(n: u32, s: u32, duration: Dur, seed: u64) -> PoissonWorkload {
        PoissonWorkload {
            n,
            r: 0.864,
            w: 0.04,
            s,
            duration,
            seed,
        }
    }

    /// The file a client reads and writes (its group's file).
    pub fn file_of(&self, client: u32) -> u64 {
        (client / self.s.max(1)) as u64
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        assert!(self.s >= 1, "sharing degree must be at least 1");
        let groups = (self.n + self.s - 1) / self.s.max(1);
        let files: Vec<FileSpec> = (0..groups as u64)
            .map(|id| FileSpec {
                id,
                class: FileClass::Regular,
                path: None,
            })
            .collect();
        let mut records = Vec::new();
        let root = SimRng::seed(self.seed);
        for client in 0..self.n {
            let file = self.file_of(client);
            let mut rng = root.fork(client as u64);
            push_poisson_stream(
                &mut records,
                &mut rng,
                client,
                file,
                self.r,
                true,
                self.duration,
            );
            if self.w > 0.0 {
                push_poisson_stream(
                    &mut records,
                    &mut rng,
                    client,
                    file,
                    self.w,
                    false,
                    self.duration,
                );
            }
        }
        Trace::new(files, records)
    }
}

fn push_poisson_stream(
    records: &mut Vec<TraceRecord>,
    rng: &mut SimRng,
    client: u32,
    file: u64,
    rate: f64,
    is_read: bool,
    duration: Dur,
) {
    if rate <= 0.0 {
        return;
    }
    let mut t = 0.0;
    let horizon = duration.as_secs_f64();
    loop {
        t += rng.exp_secs(rate);
        if t >= horizon {
            break;
        }
        let at = Time::ZERO + Dur::from_secs_f64(t);
        let op = if is_read {
            TraceOp::Read { file }
        } else {
            TraceOp::Write { file }
        };
        records.push(TraceRecord { at, client, op });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_respected() {
        let w = PoissonWorkload {
            n: 4,
            r: 2.0,
            w: 0.5,
            s: 2,
            duration: Dur::from_secs(500),
            seed: 1,
        };
        let trace = w.generate();
        trace.validate().unwrap();
        let secs = 500.0;
        let reads = trace.records.iter().filter(|r| r.op.is_read()).count() as f64;
        let writes = trace.records.len() as f64 - reads;
        let r_per_client = reads / secs / 4.0;
        let w_per_client = writes / secs / 4.0;
        assert!((r_per_client - 2.0).abs() < 0.15, "R = {r_per_client}");
        assert!((w_per_client - 0.5).abs() < 0.08, "W = {w_per_client}");
    }

    #[test]
    fn grouping_matches_sharing_degree() {
        let w = PoissonWorkload {
            n: 6,
            r: 1.0,
            w: 0.0,
            s: 3,
            duration: Dur::from_secs(10),
            seed: 2,
        };
        assert_eq!(w.file_of(0), 0);
        assert_eq!(w.file_of(2), 0);
        assert_eq!(w.file_of(3), 1);
        let trace = w.generate();
        assert_eq!(trace.files.len(), 2);
        // Every record's file matches its client's group.
        for r in &trace.records {
            assert_eq!(r.op.file(), w.file_of(r.client));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = |seed| {
            PoissonWorkload {
                n: 2,
                r: 1.0,
                w: 0.1,
                s: 1,
                duration: Dur::from_secs(50),
                seed,
            }
            .generate()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn read_only_generates_no_writes() {
        let w = PoissonWorkload {
            n: 2,
            r: 1.0,
            w: 0.0,
            s: 1,
            duration: Dur::from_secs(50),
            seed: 3,
        };
        assert!(w.generate().records.iter().all(|r| r.op.is_read()));
    }

    #[test]
    fn interarrivals_look_exponential() {
        // Coefficient of variation of exponential gaps is 1.
        let w = PoissonWorkload {
            n: 1,
            r: 5.0,
            w: 0.0,
            s: 1,
            duration: Dur::from_secs(2000),
            seed: 4,
        };
        let trace = w.generate();
        let times: Vec<f64> = trace.records.iter().map(|r| r.at.as_secs_f64()).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv = {cv}");
    }
}
