//! NFS-style TTL caching (§6): consistency not guaranteed.
//!
//! "Other systems have avoided the consistency problem by either not
//! guaranteeing consistency, as done by NFS [...]". The server is
//! stateless: it answers fetches with the data and a fixed time-to-live,
//! keeps no record of who caches what, and commits writes immediately
//! without invalidating anyone. A client may therefore serve data up to a
//! TTL stale — which the consistency oracle duly reports.

use std::collections::HashMap;

use lease_clock::{Dur, Time};
use lease_core::{ClientId, Grant, LeaseHandle, MemStorage, Storage, ToClient, ToServer, Version};
use lease_sim::{Actor, ActorId, Ctx};
use lease_vsys::{HistoryEvent, NetMsg, Res, SharedHistory};

/// The stateless TTL server.
pub struct NfsServerActor {
    storage: MemStorage<Res, u64>,
    ttl: Dur,
    clients: Vec<ActorId>,
    history: SharedHistory,
    warmup: Time,
    /// Duplicate-write suppression (NFS servers kept a reply cache too).
    recent_writes: HashMap<(ClientId, lease_core::ReqId), Version>,
}

impl NfsServerActor {
    /// Creates the server with the given time-to-live.
    pub fn new(
        storage: MemStorage<Res, u64>,
        ttl: Dur,
        clients: Vec<ActorId>,
        history: SharedHistory,
        warmup: Time,
    ) -> NfsServerActor {
        NfsServerActor {
            storage,
            ttl,
            clients,
            history,
            warmup,
            recent_writes: HashMap::new(),
        }
    }

    fn client_of(&self, a: ActorId) -> Option<ClientId> {
        self.clients
            .iter()
            .position(|x| *x == a)
            .map(|i| ClientId(i as u32))
    }

    fn grant(&self, resource: Res, cached: Option<Version>) -> Option<Grant<Res, u64>> {
        let (data, version) = self.storage.read(&resource)?;
        let data = if cached == Some(version) {
            None
        } else {
            Some(data)
        };
        Some(Grant {
            resource,
            version,
            data,
            term: self.ttl,
            handle: LeaseHandle::NULL,
        })
    }
}

impl Actor<NetMsg> for NfsServerActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, NetMsg>, from: ActorId, msg: NetMsg) {
        let NetMsg::ToServer(msg) = msg else {
            return;
        };
        let Some(client) = self.client_of(from) else {
            return;
        };
        let measuring = ctx.now() >= self.warmup;
        match msg {
            ToServer::Fetch {
                req,
                resource,
                cached,
                also_extend,
            } => {
                if measuring {
                    ctx.metrics().inc("srv.rx.fetch");
                }
                let mut grants = Vec::new();
                for (r, v, _) in also_extend {
                    if let Some(g) = self.grant(r, Some(v)) {
                        grants.push(g);
                    }
                }
                match self.grant(resource, cached) {
                    Some(g) => {
                        grants.push(g);
                        if measuring {
                            ctx.metrics().inc("srv.tx.grants");
                        }
                        ctx.send(from, NetMsg::ToClient(ToClient::Grants { req, grants }));
                    }
                    None => {
                        if measuring {
                            ctx.metrics().inc("srv.tx.error");
                        }
                        ctx.send(
                            from,
                            NetMsg::ToClient(ToClient::Error {
                                req,
                                reason: lease_core::ErrorReason::NoSuchResource,
                            }),
                        );
                    }
                }
            }
            ToServer::Renew { req, resources } => {
                if measuring {
                    ctx.metrics().inc("srv.rx.renew");
                }
                let grants: Vec<_> = resources
                    .into_iter()
                    .filter_map(|(r, v, _)| self.grant(r, Some(v)))
                    .collect();
                if !grants.is_empty() {
                    if measuring {
                        ctx.metrics().inc("srv.tx.grants");
                    }
                    ctx.send(from, NetMsg::ToClient(ToClient::Grants { req, grants }));
                }
            }
            ToServer::Write {
                req,
                resource,
                data,
            } => {
                let version = if let Some(v) = self.recent_writes.get(&(client, req)) {
                    *v
                } else {
                    if measuring {
                        ctx.metrics().inc("srv.rx.write");
                    }
                    let v = self.storage.write(&resource, data);
                    self.history.borrow_mut().push(HistoryEvent::Commit {
                        resource,
                        version: v,
                        writer: Some(client),
                        at: ctx.now(),
                    });
                    self.recent_writes.insert((client, req), v);
                    v
                };
                if measuring {
                    ctx.metrics().inc("srv.tx.write_done");
                }
                ctx.send(
                    from,
                    NetMsg::ToClient(ToClient::WriteDone {
                        req,
                        resource,
                        version,
                        term: self.ttl,
                    }),
                );
            }
            // No state, nothing to approve or relinquish.
            ToServer::Approve { .. } | ToServer::Relinquish { .. } => {}
        }
    }
}
