#![warn(missing_docs)]

//! Comparison consistency protocols (§6 of the paper).
//!
//! Each baseline runs on the *same* harness as the lease system — same
//! simulated network, same client caches and workload driver, same
//! measurements, same consistency oracle — with only the server's protocol
//! swapped out:
//!
//! * [`AndrewServerActor`] — the revised Andrew file system: effectively
//!   infinite-term leases ("callback promises"). On a write the server
//!   notifies holders but **does not wait**: if the invalidation is lost
//!   (partition, crash), the client keeps serving stale data until its
//!   next poll — the fault-tolerance gap §6 points out. A configurable
//!   poll (Andrew used ten minutes) bounds the staleness window.
//! * [`NfsServerActor`] — NFS-style TTL hints: the server is stateless;
//!   clients cache for a fixed time-to-live and writes invalidate nobody.
//!   Consistency is simply not guaranteed.
//! * Zero-term leases (check on every open — Sprite, RFS, and the Andrew
//!   prototype) and Xerox DFS breakable locks (which §6 argues degenerate
//!   to zero-term leasing) are the lease system itself at term 0, so
//!   [`Baseline::run`] just delegates to `lease-vsys` for those.
//!
//! # Examples
//!
//! ```
//! use lease_clock::Dur;
//! use lease_baselines::Baseline;
//! use lease_vsys::SystemConfig;
//! use lease_workload::PoissonWorkload;
//!
//! let trace = PoissonWorkload::v_rates(2, 2, Dur::from_secs(60), 1).generate();
//! let (report, _history) =
//!     Baseline::NfsTtl { ttl: Dur::from_secs(30) }.run(&SystemConfig::default(), &trace);
//! assert!(report.hits > 0);
//! ```

pub mod andrew;
pub mod harness;
pub mod nfs;

pub use andrew::AndrewServerActor;
pub use harness::Baseline;
pub use nfs::NfsServerActor;
