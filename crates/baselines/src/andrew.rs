//! The revised Andrew file system's callback scheme (§6).
//!
//! "The later Andrew file system basically uses an infinite term, relying
//! on the server to notify the client when cached data is changed. If
//! communication with a client fails (at the transport level), the server
//! allows updates to proceed, possibly leaving the client operating on
//! stale data. [...] polling with a period of ten minutes is used to limit
//! the interval for which inconsistent data may be used."
//!
//! The server speaks the same wire messages as the lease server, so the
//! unmodified `lease-vsys` client cache runs against it: grants carry an
//! infinite term (a callback promise), invalidations reuse the
//! `ApprovalRequest` message (the client invalidates and replies; the
//! reply is ignored), and the Andrew poll is the client's anticipatory
//! renewal timer.

use std::collections::{HashMap, HashSet};

use lease_clock::{Dur, Time};
use lease_core::{ClientId, Grant, LeaseHandle, MemStorage, Storage, ToClient, ToServer, WriteId};
use lease_sim::{Actor, ActorId, Ctx};
use lease_vsys::{HistoryEvent, NetMsg, Res, SharedHistory};

/// The Andrew-style callback server.
pub struct AndrewServerActor {
    storage: MemStorage<Res, u64>,
    /// Callback promises: resource -> clients to notify on write.
    callbacks: HashMap<Res, HashSet<ClientId>>,
    clients: Vec<ActorId>,
    history: SharedHistory,
    warmup: Time,
    next_write: u64,
}

impl AndrewServerActor {
    /// Creates the server. `clients[i]` is client `i`'s actor id.
    pub fn new(
        storage: MemStorage<Res, u64>,
        clients: Vec<ActorId>,
        history: SharedHistory,
        warmup: Time,
    ) -> AndrewServerActor {
        AndrewServerActor {
            storage,
            callbacks: HashMap::new(),
            clients,
            history,
            warmup,
            next_write: 0,
        }
    }

    fn client_of(&self, a: ActorId) -> Option<ClientId> {
        self.clients
            .iter()
            .position(|x| *x == a)
            .map(|i| ClientId(i as u32))
    }

    fn grant(
        &mut self,
        client: ClientId,
        resource: Res,
        cached: Option<lease_core::Version>,
    ) -> Option<Grant<Res, u64>> {
        let (data, version) = self.storage.read(&resource)?;
        self.callbacks.entry(resource).or_default().insert(client);
        let data = if cached == Some(version) {
            None
        } else {
            Some(data)
        };
        // A callback promise is an infinite-term lease.
        Some(Grant {
            resource,
            version,
            data,
            term: Dur::MAX,
            handle: LeaseHandle::NULL,
        })
    }
}

impl Actor<NetMsg> for AndrewServerActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, NetMsg>, from: ActorId, msg: NetMsg) {
        let NetMsg::ToServer(msg) = msg else {
            return;
        };
        let Some(client) = self.client_of(from) else {
            return;
        };
        let measuring = ctx.now() >= self.warmup;
        match msg {
            ToServer::Fetch {
                req,
                resource,
                cached,
                also_extend,
            } => {
                if measuring {
                    ctx.metrics().inc("srv.rx.fetch");
                }
                let mut grants = Vec::new();
                for (r, v, _) in also_extend {
                    if let Some(g) = self.grant(client, r, Some(v)) {
                        grants.push(g);
                    }
                }
                match self.grant(client, resource, cached) {
                    Some(g) => grants.push(g),
                    None => {
                        if measuring {
                            ctx.metrics().inc("srv.tx.error");
                        }
                        ctx.send(
                            from,
                            NetMsg::ToClient(ToClient::Error {
                                req,
                                reason: lease_core::ErrorReason::NoSuchResource,
                            }),
                        );
                        return;
                    }
                }
                if measuring {
                    ctx.metrics().inc("srv.tx.grants");
                }
                ctx.send(from, NetMsg::ToClient(ToClient::Grants { req, grants }));
            }
            ToServer::Renew { req, resources } => {
                // The Andrew poll: revalidate everything the client holds.
                if measuring {
                    ctx.metrics().inc("srv.rx.renew");
                }
                let mut grants = Vec::new();
                for (r, v, _) in resources {
                    if let Some(g) = self.grant(client, r, Some(v)) {
                        grants.push(g);
                    }
                }
                if !grants.is_empty() {
                    if measuring {
                        ctx.metrics().inc("srv.tx.grants");
                    }
                    ctx.send(from, NetMsg::ToClient(ToClient::Grants { req, grants }));
                }
            }
            ToServer::Write {
                req,
                resource,
                data,
            } => {
                if measuring {
                    ctx.metrics().inc("srv.rx.write");
                }
                // Commit immediately: the server never waits for anyone.
                let replaced = self
                    .storage
                    .version(&resource)
                    .unwrap_or(lease_core::Version(0));
                let version = self.storage.write(&resource, data);
                self.history.borrow_mut().push(HistoryEvent::Commit {
                    resource,
                    version,
                    writer: Some(client),
                    at: ctx.now(),
                });
                // Break callbacks best-effort; a lost message = stale cache.
                let write_id = WriteId(self.next_write);
                self.next_write += 1;
                if let Some(holders) = self.callbacks.remove(&resource) {
                    let others: Vec<ActorId> = holders
                        .into_iter()
                        .filter(|c| *c != client)
                        .map(|c| self.clients[c.0 as usize])
                        .collect();
                    if !others.is_empty() {
                        if measuring {
                            ctx.metrics().inc("srv.tx.approval_req");
                        }
                        ctx.multicast(
                            others,
                            NetMsg::ToClient(ToClient::ApprovalRequest {
                                write_id,
                                resource,
                                replaces: replaced,
                            }),
                        );
                    }
                }
                // The writer keeps a (new) callback promise on its copy.
                self.callbacks.entry(resource).or_default().insert(client);
                if measuring {
                    ctx.metrics().inc("srv.tx.write_done");
                }
                ctx.send(
                    from,
                    NetMsg::ToClient(ToClient::WriteDone {
                        req,
                        resource,
                        version,
                        term: Dur::MAX,
                    }),
                );
            }
            ToServer::Approve { .. } => {
                // Invalidations need no acknowledgement here.
                if measuring {
                    ctx.metrics().inc("srv.rx.approve");
                }
            }
            ToServer::Relinquish { resources } => {
                if measuring {
                    ctx.metrics().inc("srv.rx.relinquish");
                }
                for r in resources {
                    if let Some(set) = self.callbacks.get_mut(&r) {
                        set.remove(&client);
                    }
                }
            }
        }
    }

    fn on_crash(&mut self) {
        // Callback state is volatile — the real Andrew server rebuilt it by
        // breaking all promises on recovery; we simply lose it, which is
        // the unsafe direction and shows up as staleness under the oracle.
        self.callbacks.clear();
    }
}
