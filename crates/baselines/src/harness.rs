//! Running baselines on the shared harness.

use lease_clock::{Dur, Time};
use lease_core::MemStorage;
use lease_net::{FaultPlanNet, SimNet};
use lease_sim::{ActorId, World};
use lease_vsys::{
    add_clients, history, run_trace_with_history, NetMsg, RunReport, SharedHistory, SystemConfig,
    TermSpec,
};
use lease_workload::Trace;

use crate::andrew::AndrewServerActor;
use crate::nfs::NfsServerActor;

/// A consistency protocol to compare against leases (§6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Baseline {
    /// The lease protocol at a chosen term (the paper's system).
    Leases {
        /// Lease term.
        term: Dur,
    },
    /// Zero-term leases: a consistency check on every open (Sprite, RFS,
    /// the Andrew prototype; Xerox DFS's breakable locks degenerate to
    /// this, §6).
    CheckOnEveryRead,
    /// The revised Andrew file system: infinite-term callback promises,
    /// invalidations that do not wait, an optional client poll bounding
    /// staleness.
    AndrewCallbacks {
        /// Poll interval (Andrew used ten minutes); `None` disables it.
        poll: Option<Dur>,
    },
    /// NFS-style fixed TTL, no invalidations, no guarantees.
    NfsTtl {
        /// Time-to-live for cached data.
        ttl: Dur,
    },
}

impl Baseline {
    /// A short human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Baseline::Leases { term } => format!("leases({term})"),
            Baseline::CheckOnEveryRead => "check-on-read".into(),
            Baseline::AndrewCallbacks { poll: Some(p) } => format!("andrew(poll {p})"),
            Baseline::AndrewCallbacks { poll: None } => "andrew(no poll)".into(),
            Baseline::NfsTtl { ttl } => format!("nfs(ttl {ttl})"),
        }
    }

    /// Runs the baseline on the shared harness, returning the same report
    /// the lease system produces plus the execution history for the
    /// oracle.
    pub fn run(&self, cfg: &SystemConfig, trace: &Trace) -> (RunReport, SharedHistory) {
        match self {
            Baseline::Leases { term } => {
                let cfg = SystemConfig {
                    term: TermSpec::Fixed(*term),
                    ..cfg.clone()
                };
                let (report, handle) = run_trace_with_history(&cfg, trace);
                (report, handle.history)
            }
            Baseline::CheckOnEveryRead => {
                let cfg = SystemConfig {
                    term: TermSpec::Fixed(Dur::ZERO),
                    ..cfg.clone()
                };
                let (report, handle) = run_trace_with_history(&cfg, trace);
                (report, handle.history)
            }
            Baseline::AndrewCallbacks { poll } => {
                let mut cfg = cfg.clone();
                cfg.anticipatory = *poll;
                run_custom(&cfg, trace, ServerKind::Andrew)
            }
            Baseline::NfsTtl { ttl } => run_custom(cfg, trace, ServerKind::Nfs(*ttl)),
        }
    }
}

enum ServerKind {
    Andrew,
    Nfs(Dur),
}

fn run_custom(cfg: &SystemConfig, trace: &Trace, kind: ServerKind) -> (RunReport, SharedHistory) {
    let n = trace.client_count().max(1);
    let net = SimNet::new(cfg.net)
        .with_faults(FaultPlanNet {
            loss_prob: cfg.loss,
            duplicate_prob: cfg.duplicate,
            partitions: cfg.partitions.clone(),
        })
        .with_jitter(cfg.jitter);
    let mut world: World<NetMsg> = World::new(cfg.seed, net);
    let hist = history::shared();
    let warmup = Time::ZERO + cfg.warmup;

    let client_ids: Vec<ActorId> = (0..n).map(|i| ActorId(1 + i as usize)).collect();
    let mut storage = MemStorage::new();
    for f in &trace.files {
        storage.insert(f.id, 0);
    }
    let server_id = match kind {
        ServerKind::Andrew => world.add_actor(AndrewServerActor::new(
            storage,
            client_ids.clone(),
            hist.clone(),
            warmup,
        )),
        ServerKind::Nfs(ttl) => world.add_actor(NfsServerActor::new(
            storage,
            ttl,
            client_ids.clone(),
            hist.clone(),
            warmup,
        )),
    };
    debug_assert_eq!(server_id, ActorId(0));
    let added = add_clients(&mut world, cfg, trace, server_id, &hist);
    debug_assert_eq!(added, client_ids);

    for crash in &cfg.crashes {
        let victim = match crash.node {
            lease_vsys::NodeSel::Server => server_id,
            lease_vsys::NodeSel::Client(i) => client_ids[i as usize],
        };
        world.schedule_crash(crash.at, victim);
        if let Some(r) = crash.recover_at {
            world.schedule_recover(r, victim);
        }
    }

    let end = Time::ZERO + trace.duration() + cfg.drain;
    world.run_until(end);
    let window = end.saturating_since(warmup).as_secs_f64();
    (RunReport::from_world(&mut world, window), hist)
}
