//! Section 6 head-to-head: leases vs callbacks vs TTL vs check-on-read.

use lease_baselines::Baseline;
use lease_clock::{Dur, Time};
use lease_faults::{check_history, staleness_of, Violation};
use lease_net::Partition;
use lease_sim::ActorId;
use lease_vsys::SystemConfig;
use lease_workload::{PoissonWorkload, Trace};

fn cfg() -> SystemConfig {
    SystemConfig {
        max_retries: 500,
        ..SystemConfig::default()
    }
}

fn workload(seed: u64) -> Trace {
    PoissonWorkload {
        n: 6,
        r: 0.8,
        w: 0.05,
        s: 3,
        duration: Dur::from_secs(300),
        seed,
    }
    .generate()
}

#[test]
fn all_baselines_complete_the_workload() {
    let trace = workload(1);
    for b in [
        Baseline::Leases {
            term: Dur::from_secs(10),
        },
        Baseline::CheckOnEveryRead,
        Baseline::AndrewCallbacks {
            poll: Some(Dur::from_secs(600)),
        },
        Baseline::NfsTtl {
            ttl: Dur::from_secs(30),
        },
    ] {
        let (r, _) = b.run(&cfg(), &trace);
        assert_eq!(r.op_failures, 0, "{}", b.label());
        let done = r.hits + r.remote_reads + r.writes;
        assert_eq!(done, trace.records.len() as u64, "{}", b.label());
    }
}

#[test]
fn fault_free_andrew_and_leases_are_consistent_but_nfs_is_not() {
    let trace = workload(2);
    let (_, h) = Baseline::Leases {
        term: Dur::from_secs(10),
    }
    .run(&cfg(), &trace);
    check_history(&h.borrow()).expect("leases consistent");

    // Andrew commits *before* the invalidations land, so even fault-free
    // it has a staleness window of one message flight — unlike leases,
    // which wait for approvals. Anything beyond a few milliseconds would
    // be a bug.
    let (_, h) = Baseline::AndrewCallbacks { poll: None }.run(&cfg(), &trace);
    let outcome = check_history(&h.borrow());
    if let Err(violations) = outcome {
        let worst = staleness_of(&violations).into_iter().max().unwrap();
        assert!(
            worst < Dur::from_millis(50),
            "fault-free Andrew staleness must be one message flight, got {worst}"
        );
    }

    let (_, h) = Baseline::CheckOnEveryRead.run(&cfg(), &trace);
    check_history(&h.borrow()).expect("check-on-read consistent");

    let (_, h) = Baseline::NfsTtl {
        ttl: Dur::from_secs(30),
    }
    .run(&cfg(), &trace);
    let violations = check_history(&h.borrow()).expect_err("TTL caching must go stale");
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::StaleRead { .. })));
    let worst = staleness_of(&violations).into_iter().max().unwrap();
    assert!(
        worst > Dur::from_secs(1),
        "NFS staleness is seconds-scale, got {worst}"
    );
}

#[test]
fn nfs_staleness_is_bounded_by_ttl() {
    let trace = workload(3);
    let ttl = Dur::from_secs(20);
    let (_, h) = Baseline::NfsTtl { ttl }.run(&cfg(), &trace);
    let violations = check_history(&h.borrow()).unwrap_err();
    let worst = staleness_of(&violations).into_iter().max().unwrap();
    assert!(
        worst <= ttl + Dur::from_secs(1),
        "staleness {worst} exceeds the TTL bound {ttl}"
    );
}

#[test]
fn partition_makes_andrew_stale_but_not_leases() {
    // The §6 punchline: under a partition, Andrew's server "allows updates
    // to proceed, possibly leaving the client operating on stale data";
    // leases convert the same failure into bounded write delay.
    // Client 0 reads file 1 every second and never writes; client 1
    // writes it during client 0's partition (100-160 s). With callbacks
    // the invalidation is lost and client 0 keeps serving its stale copy;
    // with leases the write stalls until client 0's lease expires.
    use lease_workload::{FileClass, FileSpec, TraceOp, TraceRecord};
    let mut records = Vec::new();
    for s in 1..300u64 {
        records.push(TraceRecord {
            at: Time::from_secs(s),
            client: 0,
            op: TraceOp::Read { file: 1 },
        });
    }
    records.push(TraceRecord {
        at: Time::from_secs(110),
        client: 1,
        op: TraceOp::Write { file: 1 },
    });
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );

    let mut c = cfg();
    // Client 0 (actor 1) is cut off for 60 s.
    c.partitions = vec![Partition::new(
        Time::from_secs(100),
        Time::from_secs(160),
        [ActorId(1)],
    )];

    let (_, h) = Baseline::AndrewCallbacks { poll: None }.run(&c, &trace);
    let violations =
        check_history(&h.borrow()).expect_err("lost invalidations must leave stale caches");
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::StaleRead { .. })));
    let worst = staleness_of(&violations).into_iter().max().unwrap();
    assert!(
        worst > Dur::from_secs(1),
        "partition staleness is seconds-scale, got {worst}"
    );

    let (r, h) = Baseline::Leases {
        term: Dur::from_secs(10),
    }
    .run(&c, &trace);
    check_history(&h.borrow()).expect("leases stay consistent under partition");
    // The price: writes during the partition stall up to a lease term.
    assert!(
        r.write_delay.max <= 11.0,
        "stall bounded by term: {}",
        r.write_delay.max
    );
}

#[test]
fn andrew_poll_bounds_staleness() {
    let trace = workload(5);
    let mut c = cfg();
    c.partitions = vec![Partition::new(
        Time::from_secs(100),
        Time::from_secs(160),
        [ActorId(1), ActorId(2), ActorId(3)],
    )];
    let poll = Dur::from_secs(30);
    let (_, h) = Baseline::AndrewCallbacks { poll: Some(poll) }.run(&c, &trace);
    let outcome = check_history(&h.borrow());
    match outcome {
        Ok(()) => {} // The poll can mask all staleness at this granularity.
        Err(violations) => {
            let worst = staleness_of(&violations).into_iter().max().unwrap();
            // Staleness is bounded by the partition length: once healed,
            // the next poll (or the partition itself ending) refreshes.
            assert!(
                worst <= Dur::from_secs(60) + poll,
                "staleness {worst} not bounded by partition + poll"
            );
        }
    }
}

#[test]
fn consistency_message_counts_order_as_expected() {
    // check-on-read > leases(10 s) > Andrew callbacks (no extensions at
    // all): the §6 efficiency ordering for read-dominated workloads.
    let trace = workload(6);
    let (zero, _) = Baseline::CheckOnEveryRead.run(&cfg(), &trace);
    let (leases, _) = Baseline::Leases {
        term: Dur::from_secs(10),
    }
    .run(&cfg(), &trace);
    let (andrew, _) = Baseline::AndrewCallbacks { poll: None }.run(&cfg(), &trace);
    assert!(
        zero.consistency_msgs > leases.consistency_msgs,
        "zero {} vs leases {}",
        zero.consistency_msgs,
        leases.consistency_msgs
    );
    assert!(
        leases.consistency_msgs > andrew.consistency_msgs,
        "leases {} vs andrew {}",
        leases.consistency_msgs,
        andrew.consistency_msgs
    );
}

#[test]
fn andrew_server_crash_loses_callback_state_and_goes_stale() {
    // Our Andrew model drops callback promises on a crash without
    // rebuilding them: clients that cached before the crash never hear
    // about later writes. Leases survive the same schedule.
    let trace = workload(7);
    let mut c = cfg();
    c.crashes = vec![lease_vsys::CrashEvent {
        at: Time::from_secs(100),
        node: lease_vsys::NodeSel::Server,
        recover_at: Some(Time::from_secs(101)),
    }];
    let (_, h) = Baseline::AndrewCallbacks { poll: None }.run(&c, &trace);
    let violations = check_history(&h.borrow());
    assert!(
        violations.is_err(),
        "lost callback state must surface as staleness"
    );

    let (_, h) = Baseline::Leases {
        term: Dur::from_secs(10),
    }
    .run(&c, &trace);
    check_history(&h.borrow()).expect("leases survive the server crash");
}
