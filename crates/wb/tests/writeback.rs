//! End-to-end tests of the write-back (token) system, judged by the same
//! single-copy oracle as the write-through system — with Discard events
//! accounting for crash-lost buffered writes.

use lease_clock::{Dur, Time};
use lease_faults::check_history;
use lease_vsys::{run_trace, CrashEvent, HistoryEvent, NodeSel, SystemConfig, TermSpec};
use lease_wb::{run_wb_with_history, WbConfig};
use lease_workload::{FileClass, FileSpec, PoissonWorkload, Trace, TraceOp, TraceRecord};

fn shared_workload(seed: u64) -> Trace {
    PoissonWorkload {
        n: 4,
        r: 0.8,
        w: 0.3,
        s: 2,
        duration: Dur::from_secs(300),
        seed,
    }
    .generate()
}

#[test]
fn fault_free_writeback_is_consistent() {
    let (r, h) = run_wb_with_history(&WbConfig::default(), &shared_workload(1));
    assert_eq!(r.op_failures, 0);
    check_history(&h.borrow()).expect("consistent");
}

#[test]
fn consistent_across_terms_and_flush_intervals() {
    for (term, flush) in [(2u64, 1u64), (10, 2), (10, 30), (30, 5)] {
        let cfg = WbConfig {
            term: Dur::from_secs(term),
            flush_interval: Dur::from_secs(flush),
            ..WbConfig::default()
        };
        let (r, h) = run_wb_with_history(&cfg, &shared_workload(2));
        assert_eq!(r.op_failures, 0, "term {term} flush {flush}");
        check_history(&h.borrow()).unwrap_or_else(|v| panic!("term {term} flush {flush}: {v:?}"));
    }
}

#[test]
fn writeback_collapses_write_traffic() {
    // A write-heavy single-client workload: write-through pays one server
    // round trip per write; the token buffers them and flushes a handful
    // of collapsed write-backs.
    let trace = PoissonWorkload {
        n: 1,
        r: 0.2,
        w: 2.0,
        s: 1,
        duration: Dur::from_secs(300),
        seed: 3,
    }
    .generate();

    let wt = run_trace(
        &SystemConfig {
            term: TermSpec::Fixed(Dur::from_secs(10)),
            warmup: Dur::from_secs(30),
            ..SystemConfig::default()
        },
        &trace,
    );
    let (wb, h) = run_wb_with_history(
        &WbConfig {
            warmup: Dur::from_secs(30),
            flush_interval: Dur::from_secs(5),
            ..WbConfig::default()
        },
        &trace,
    );
    check_history(&h.borrow()).expect("consistent");
    assert!(
        wb.data_msgs * 5 < wt.data_msgs,
        "write-back {} data msgs should be well under write-through's {}",
        wb.data_msgs,
        wt.data_msgs
    );
    // And local writes complete with no added delay.
    assert!(
        wb.write_delay.mean < wt.write_delay.mean / 2.0,
        "buffered writes ({:.6}s) should beat write-through ({:.6}s)",
        wb.write_delay.mean,
        wt.write_delay.mean
    );
}

#[test]
fn recall_moves_fresh_data_between_caches() {
    // Client 0 buffers writes; client 1 then reads and must see them: the
    // recall forces the flush before the read grant.
    let records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(2),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(3),
            client: 1,
            op: TraceOp::Read { file: 1 },
        },
    ];
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    // Long flush interval: only the recall can move the data.
    let cfg = WbConfig {
        flush_interval: Dur::from_secs(600),
        ..WbConfig::default()
    };
    let (r, h) = run_wb_with_history(&cfg, &trace);
    assert_eq!(r.op_failures, 0);
    check_history(&h.borrow()).expect("consistent");
    let hist = h.borrow();
    // The read saw the second buffered write's version (v3: base 1 + two).
    let read_version = hist.events.iter().find_map(|e| match e {
        HistoryEvent::ReadDone {
            client, version, ..
        } if client.0 == 1 => Some(version.0),
        _ => None,
    });
    assert_eq!(read_version, Some(3));
}

#[test]
fn crash_loses_buffered_writes_but_stays_single_copy() {
    // Client 0 buffers a write and crashes before any flush; the write is
    // lost (the §2 hazard write-through avoids). Client 1 then reads the
    // *old* data — legally, which the Discard-aware oracle confirms.
    let records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(30),
            client: 1,
            op: TraceOp::Read { file: 1 },
        },
    ];
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let cfg = WbConfig {
        flush_interval: Dur::from_secs(600), // never flushes in time
        crashes: vec![CrashEvent {
            at: Time::from_secs(2),
            node: NodeSel::Client(0),
            recover_at: None,
        }],
        ..WbConfig::default()
    };
    let (_, h) = run_wb_with_history(&cfg, &trace);
    let hist = h.borrow();
    // The buffered commit and its discard are both on record.
    assert!(hist
        .events
        .iter()
        .any(|e| matches!(e, HistoryEvent::Commit { version, .. } if version.0 > 1)));
    assert!(hist
        .events
        .iter()
        .any(|e| matches!(e, HistoryEvent::Discard { last_durable, .. } if last_durable.0 == 1)));
    // Client 1 read the old version 1 — fine after the discard.
    let read_version = hist.events.iter().find_map(|e| match e {
        HistoryEvent::ReadDone {
            client, version, ..
        } if client.0 == 1 => Some(version.0),
        _ => None,
    });
    assert_eq!(read_version, Some(1));
    check_history(&hist).expect("lost writes are not an inconsistency under discard semantics");
}

#[test]
fn without_discard_accounting_the_lost_write_would_be_flagged() {
    // Sanity-check the oracle itself: stripping the Discard events from
    // the same history must produce violations (the reader of v1 after
    // the buffered v2 commit would look stale).
    let records = vec![
        TraceRecord {
            at: Time::from_secs(1),
            client: 0,
            op: TraceOp::Write { file: 1 },
        },
        TraceRecord {
            at: Time::from_secs(30),
            client: 1,
            op: TraceOp::Read { file: 1 },
        },
    ];
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let cfg = WbConfig {
        flush_interval: Dur::from_secs(600),
        crashes: vec![CrashEvent {
            at: Time::from_secs(2),
            node: NodeSel::Client(0),
            recover_at: None,
        }],
        ..WbConfig::default()
    };
    let (_, h) = run_wb_with_history(&cfg, &trace);
    let mut stripped = lease_vsys::History::new();
    for e in &h.borrow().events {
        if !matches!(e, HistoryEvent::Discard { .. }) {
            stripped.push(*e);
        }
    }
    assert!(
        check_history(&stripped).is_err(),
        "discards are load-bearing"
    );
}

#[test]
fn writer_ping_pong_serializes_through_recalls() {
    // Two clients alternately writing the same file: every handover goes
    // through recall + flush, versions never collide, and the oracle is
    // satisfied.
    let mut records = Vec::new();
    for s in 1..60u64 {
        records.push(TraceRecord {
            at: Time::from_secs(s),
            client: (s % 2) as u32,
            op: TraceOp::Write { file: 1 },
        });
        records.push(TraceRecord {
            at: Time::from_millis(s * 1000 + 500),
            client: ((s + 1) % 2) as u32,
            op: TraceOp::Read { file: 1 },
        });
    }
    let trace = Trace::new(
        vec![FileSpec {
            id: 1,
            class: FileClass::Regular,
            path: None,
        }],
        records,
    );
    let (r, h) = run_wb_with_history(&WbConfig::default(), &trace);
    assert_eq!(r.op_failures, 0);
    check_history(&h.borrow()).expect("consistent");
    // Handover happened via recalls, visible as approval-channel traffic.
    assert!(
        r.approval_msgs > 10,
        "expected recall traffic, got {}",
        r.approval_msgs
    );
}

#[test]
fn deterministic_runs() {
    let trace = shared_workload(9);
    let (a, _) = run_wb_with_history(&WbConfig::default(), &trace);
    let (b, _) = run_wb_with_history(&WbConfig::default(), &trace);
    assert_eq!(a.consistency_msgs, b.consistency_msgs);
    assert_eq!(a.hits, b.hits);
}
