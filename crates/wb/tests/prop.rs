//! Property tests: random workloads and crash schedules through the
//! write-back system, judged by the discard-aware single-copy oracle.

use lease_clock::{Dur, Time};
use lease_faults::check_history;
use lease_vsys::{CrashEvent, NodeSel};
use lease_wb::{run_wb_with_history, WbConfig};
use lease_workload::PoissonWorkload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random rates, sharing, terms, and flush intervals: consistent.
    #[test]
    fn random_writeback_runs_are_consistent(
        seed in 0u64..1000,
        term_s in 1u64..20,
        flush_s in 1u64..30,
        s in 1u32..4,
        w_rate in 0.05f64..1.0,
    ) {
        let trace = PoissonWorkload {
            n: s * 2,
            r: 1.0,
            w: w_rate,
            s,
            duration: Dur::from_secs(120),
            seed,
        }
        .generate();
        let cfg = WbConfig {
            term: Dur::from_secs(term_s),
            flush_interval: Dur::from_secs(flush_s),
            seed,
            ..WbConfig::default()
        };
        let (r, h) = run_wb_with_history(&cfg, &trace);
        prop_assert_eq!(r.op_failures, 0);
        let res = check_history(&h.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }

    /// Random client crashes: buffered writes may be lost, consistency may
    /// not.
    #[test]
    fn random_crashes_lose_writes_not_consistency(
        seed in 0u64..1000,
        crash_at in 10u64..100,
        victim in 0u32..4,
        comeback in proptest::option::of(5u64..30),
    ) {
        let trace = PoissonWorkload {
            n: 4,
            r: 1.0,
            w: 0.4,
            s: 2,
            duration: Dur::from_secs(120),
            seed,
        }
        .generate();
        let cfg = WbConfig {
            crashes: vec![CrashEvent {
                at: Time::from_secs(crash_at),
                node: NodeSel::Client(victim),
                recover_at: comeback.map(|d| Time::from_secs(crash_at + d)),
            }],
            seed,
            ..WbConfig::default()
        };
        let (_, h) = run_wb_with_history(&cfg, &trace);
        let res = check_history(&h.borrow());
        prop_assert!(res.is_ok(), "violations: {:?}", res.err());
    }
}
