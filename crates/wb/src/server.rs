//! The write-back lease (token) server.

use std::collections::{BTreeSet, HashMap, VecDeque};

use lease_clock::{Dur, Time};
use lease_core::{ClientId, LeaseTable, MemStorage, ReqId, Resource, Version};

use crate::msg::{Mode, Reservation, WbToClient, WbToServer};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct WbServerConfig {
    /// Term for every lease (read and write).
    pub term: Dur,
    /// Size of each write lease's version range.
    pub reservation_range: u64,
}

impl Default for WbServerConfig {
    fn default() -> WbServerConfig {
        WbServerConfig {
            term: Dur::from_secs(10),
            reservation_range: 1 << 20,
        }
    }
}

/// Timers the server asks its harness to arm (one per recalled resource).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecallDeadline<R>(pub R);

/// Inputs to the server.
#[derive(Debug, Clone)]
pub enum WbServerInput<R, D> {
    /// A client message.
    Msg {
        /// Sender.
        from: ClientId,
        /// Message.
        msg: WbToServer<R, D>,
    },
    /// A recall deadline fired.
    RecallTimer(R),
}

/// Effects the harness applies.
#[derive(Debug, Clone)]
pub enum WbServerOutput<R, D> {
    /// Send a message.
    Send {
        /// Recipient.
        to: ClientId,
        /// Message.
        msg: WbToClient<R, D>,
    },
    /// Arm (or re-arm) the recall deadline for a resource.
    SetRecallTimer {
        /// Fire time.
        at: Time,
        /// The recalled resource.
        resource: R,
    },
    /// A write-back landed durably (not a visibility event — the client
    /// already recorded the commit when it buffered the write).
    Durable {
        /// The resource.
        resource: R,
        /// The version now durable.
        version: Version,
    },
}

#[derive(Debug, Clone)]
struct WriteGrant {
    client: ClientId,
    resv_id: u64,
    expiry: Time,
}

#[derive(Debug, Clone)]
struct PendingAcquire {
    client: ClientId,
    req: ReqId,
    mode: Mode,
    cached: Option<Version>,
}

/// The token server: shared read leases, exclusive write leases with
/// version reservations, recall on conflict.
pub struct WbServer<R: Resource, D: Clone> {
    cfg: WbServerConfig,
    readers: LeaseTable<R>,
    writers: HashMap<R, WriteGrant>,
    /// Highest version ever committed or reserved, per resource: ranges
    /// are never reused, so a burned range just leaves a gap.
    high: HashMap<R, Version>,
    queue: HashMap<R, VecDeque<PendingAcquire>>,
    /// Clients a recall is still waiting on, per resource.
    recalling: HashMap<R, BTreeSet<ClientId>>,
    next_resv: u64,
    /// Recall callbacks sent (for experiments).
    pub recalls_sent: u64,
    /// Write-backs rejected as stale (lost writes).
    pub flushes_rejected: u64,
    _data: std::marker::PhantomData<D>,
}

impl<R: Resource, D: Clone> WbServer<R, D> {
    /// Creates a server.
    pub fn new(cfg: WbServerConfig) -> WbServer<R, D> {
        WbServer {
            cfg,
            readers: LeaseTable::new(),
            writers: HashMap::new(),
            high: HashMap::new(),
            queue: HashMap::new(),
            recalling: HashMap::new(),
            next_resv: 0,
            recalls_sent: 0,
            flushes_rejected: 0,
            _data: std::marker::PhantomData,
        }
    }

    /// Handles one input against the primary storage.
    pub fn handle(
        &mut self,
        now: Time,
        input: WbServerInput<R, D>,
        store: &mut MemStorage<R, D>,
    ) -> Vec<WbServerOutput<R, D>> {
        let mut out = Vec::new();
        match input {
            WbServerInput::Msg { from, msg } => match msg {
                WbToServer::Acquire {
                    req,
                    resource,
                    mode,
                    cached,
                } => {
                    self.queue
                        .entry(resource)
                        .or_default()
                        .push_back(PendingAcquire {
                            client: from,
                            req,
                            mode,
                            cached,
                        });
                    self.pump(now, resource, store, &mut out);
                }
                WbToServer::WriteBack {
                    req,
                    resource,
                    reservation,
                    version,
                    data,
                } => {
                    let live = self
                        .writers
                        .get(&resource)
                        .is_some_and(|w| w.client == from && w.resv_id == reservation);
                    if live {
                        self.commit(resource, data, version, store, &mut out);
                        out.push(WbServerOutput::Send {
                            to: from,
                            msg: WbToClient::Flushed { req, resource },
                        });
                    } else {
                        self.flushes_rejected += 1;
                        out.push(WbServerOutput::Send {
                            to: from,
                            msg: WbToClient::FlushRejected { req, resource },
                        });
                    }
                }
                WbToServer::Release {
                    req,
                    resource,
                    reservation,
                    dirty,
                } => {
                    // Commit the dirty tail if the reservation is current;
                    // the outcome is acknowledged so the client can account
                    // for lost writes.
                    if let Some((version, data)) = dirty {
                        let live = self
                            .writers
                            .get(&resource)
                            .is_some_and(|w| w.client == from && Some(w.resv_id) == reservation);
                        if live {
                            self.commit(resource, data, version, store, &mut out);
                            out.push(WbServerOutput::Send {
                                to: from,
                                msg: WbToClient::Flushed { req, resource },
                            });
                        } else {
                            self.flushes_rejected += 1;
                            out.push(WbServerOutput::Send {
                                to: from,
                                msg: WbToClient::FlushRejected { req, resource },
                            });
                        }
                    }
                    if self
                        .writers
                        .get(&resource)
                        .is_some_and(|w| w.client == from)
                    {
                        self.writers.remove(&resource);
                    }
                    self.readers.release(resource, from);
                    if let Some(waiting) = self.recalling.get_mut(&resource) {
                        waiting.remove(&from);
                    }
                    self.pump(now, resource, store, &mut out);
                }
            },
            WbServerInput::RecallTimer(resource) => {
                self.pump(now, resource, store, &mut out);
            }
        }
        out
    }

    /// Commits a write-back idempotently: a flush and the release-time
    /// flush of the same version may both arrive.
    fn commit(
        &mut self,
        resource: R,
        data: D,
        version: Version,
        store: &mut MemStorage<R, D>,
        out: &mut Vec<WbServerOutput<R, D>>,
    ) {
        use lease_core::Storage;
        if store.version(&resource).is_some_and(|v| version <= v) {
            return; // Already durable at this version or newer.
        }
        store.set(resource, data, version);
        let h = self.high.entry(resource).or_insert(version);
        *h = (*h).max(version);
        out.push(WbServerOutput::Durable { resource, version });
    }

    /// Tries to grant the head of `resource`'s queue, recalling conflicting
    /// holders if needed.
    fn pump(
        &mut self,
        now: Time,
        resource: R,
        store: &mut MemStorage<R, D>,
        out: &mut Vec<WbServerOutput<R, D>>,
    ) {
        loop {
            let Some(head) = self.queue.get(&resource).and_then(|q| q.front()).cloned() else {
                self.recalling.remove(&resource);
                return;
            };
            // Who conflicts with the head request?
            let writer = self
                .writers
                .get(&resource)
                .filter(|w| w.expiry > now)
                .map(|w| w.client);
            let mut conflicts: BTreeSet<ClientId> = BTreeSet::new();
            match head.mode {
                Mode::Read => {
                    if let Some(w) = writer {
                        if w != head.client {
                            conflicts.insert(w);
                        }
                    }
                }
                Mode::Write => {
                    if let Some(w) = writer {
                        if w != head.client {
                            conflicts.insert(w);
                        }
                    }
                    for r in self.readers.holders_at(resource, now) {
                        if r != head.client {
                            conflicts.insert(r);
                        }
                    }
                }
            }
            if conflicts.is_empty() {
                let head = self
                    .queue
                    .get_mut(&resource)
                    .and_then(|q| q.pop_front())
                    .expect("head exists");
                self.grant(now, resource, head, store, out);
                continue; // Several reads may be grantable back-to-back.
            }
            // Recall whoever we have not asked yet; wait for the rest.
            let asked = self.recalling.entry(resource).or_default();
            let mut deadline = now;
            for c in &conflicts {
                if asked.insert(*c) {
                    self.recalls_sent += 1;
                    out.push(WbServerOutput::Send {
                        to: *c,
                        msg: WbToClient::Recall { resource },
                    });
                }
            }
            if let Some(w) = self.writers.get(&resource) {
                deadline = deadline.max(w.expiry);
            }
            if let Some(e) = self.readers.max_expiry(resource, now) {
                deadline = deadline.max(e);
            }
            out.push(WbServerOutput::SetRecallTimer {
                at: deadline,
                resource,
            });
            return;
        }
    }

    fn grant(
        &mut self,
        now: Time,
        resource: R,
        head: PendingAcquire,
        store: &mut MemStorage<R, D>,
        out: &mut Vec<WbServerOutput<R, D>>,
    ) {
        use lease_core::Storage;
        let Some((data, version)) = store.read(&resource) else {
            out.push(WbServerOutput::Send {
                to: head.client,
                msg: WbToClient::Error { req: head.req },
            });
            return;
        };
        let data = if head.cached == Some(version) {
            None
        } else {
            Some(data)
        };
        // Any grant supersedes a lapsed write token: kill its reservation
        // so late flushes from the old holder bounce instead of resurfacing
        // data the resource has moved past.
        self.writers.remove(&resource);
        let reservation = match head.mode {
            Mode::Read => {
                self.readers
                    .grant(resource, head.client, now + self.cfg.term);
                None
            }
            Mode::Write => {
                // Upgrades drop the requester's read lease.
                self.readers.release(resource, head.client);
                let h = self.high.entry(resource).or_insert(version);
                *h = (*h).max(version);
                let first = Version(h.0 + 1);
                let last = Version(h.0 + self.cfg.reservation_range);
                *h = last;
                let id = self.next_resv;
                self.next_resv += 1;
                self.writers.insert(
                    resource,
                    WriteGrant {
                        client: head.client,
                        resv_id: id,
                        expiry: now + self.cfg.term,
                    },
                );
                Some(Reservation { id, first, last })
            }
        };
        out.push(WbServerOutput::Send {
            to: head.client,
            msg: WbToClient::Granted {
                req: head.req,
                resource,
                mode: head.mode,
                version,
                data,
                term: self.cfg.term,
                reservation,
            },
        });
    }

    /// Whether a write lease is currently recorded for `resource`.
    pub fn has_writer(&self, resource: R) -> bool {
        self.writers.contains_key(&resource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type S = WbServer<u64, u64>;

    const C0: ClientId = ClientId(0);
    const C1: ClientId = ClientId(1);

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    fn setup() -> (S, MemStorage<u64, u64>) {
        let mut store = MemStorage::new();
        store.insert(7, 100);
        (
            WbServer::new(WbServerConfig {
                term: Dur::from_secs(10),
                reservation_range: 16,
            }),
            store,
        )
    }

    fn acquire(
        s: &mut S,
        store: &mut MemStorage<u64, u64>,
        now: Time,
        from: ClientId,
        req: u64,
        mode: Mode,
    ) -> Vec<WbServerOutput<u64, u64>> {
        s.handle(
            now,
            WbServerInput::Msg {
                from,
                msg: WbToServer::Acquire {
                    req: ReqId(req),
                    resource: 7,
                    mode,
                    cached: None,
                },
            },
            store,
        )
    }

    fn granted(out: &[WbServerOutput<u64, u64>]) -> Option<(ClientId, Mode, Option<Reservation>)> {
        out.iter().find_map(|o| match o {
            WbServerOutput::Send {
                to,
                msg:
                    WbToClient::Granted {
                        mode, reservation, ..
                    },
            } => Some((*to, *mode, *reservation)),
            _ => None,
        })
    }

    fn recalled(out: &[WbServerOutput<u64, u64>]) -> Vec<ClientId> {
        out.iter()
            .filter_map(|o| match o {
                WbServerOutput::Send {
                    to,
                    msg: WbToClient::Recall { .. },
                } => Some(*to),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn read_leases_are_shared() {
        let (mut s, mut store) = setup();
        assert!(granted(&acquire(&mut s, &mut store, t(0), C0, 1, Mode::Read)).is_some());
        assert!(granted(&acquire(&mut s, &mut store, t(1), C1, 1, Mode::Read)).is_some());
    }

    #[test]
    fn write_lease_carries_a_fresh_range() {
        let (mut s, mut store) = setup();
        let out = acquire(&mut s, &mut store, t(0), C0, 1, Mode::Write);
        let (_, mode, resv) = granted(&out).unwrap();
        assert_eq!(mode, Mode::Write);
        let r = resv.unwrap();
        assert_eq!(r.first, Version(2)); // storage is at version 1
        assert_eq!(r.last, Version(17));
        assert!(s.has_writer(7));
    }

    #[test]
    fn conflicting_write_recalls_readers() {
        let (mut s, mut store) = setup();
        acquire(&mut s, &mut store, t(0), C0, 1, Mode::Read);
        let out = acquire(&mut s, &mut store, t(1), C1, 1, Mode::Write);
        assert!(granted(&out).is_none(), "must wait for the reader");
        assert_eq!(recalled(&out), vec![C0]);
        // The reader releases; the write grant goes out.
        let out = s.handle(
            t(2),
            WbServerInput::Msg {
                from: C0,
                msg: WbToServer::Release {
                    req: ReqId(90),
                    resource: 7,
                    reservation: None,
                    dirty: None,
                },
            },
            &mut store,
        );
        let (to, mode, _) = granted(&out).unwrap();
        assert_eq!((to, mode), (C1, Mode::Write));
    }

    #[test]
    fn read_during_write_lease_recalls_the_writer() {
        let (mut s, mut store) = setup();
        let out = acquire(&mut s, &mut store, t(0), C0, 1, Mode::Write);
        let resv = granted(&out).unwrap().2.unwrap();
        let out = acquire(&mut s, &mut store, t(1), C1, 1, Mode::Read);
        assert_eq!(recalled(&out), vec![C0]);
        // Writer flushes its dirty tail on the way out.
        let out = s.handle(
            t(2),
            WbServerInput::Msg {
                from: C0,
                msg: WbToServer::Release {
                    req: ReqId(91),
                    resource: 7,
                    reservation: Some(resv.id),
                    dirty: Some((resv.first, 999)),
                },
            },
            &mut store,
        );
        // The queued read is granted the flushed data.
        let g = out.iter().find_map(|o| match o {
            WbServerOutput::Send {
                to,
                msg: WbToClient::Granted { version, data, .. },
            } => Some((*to, *version, *data)),
            _ => None,
        });
        assert_eq!(g, Some((C1, resv.first, Some(999))));
    }

    #[test]
    fn stale_writeback_is_rejected_and_counted() {
        let (mut s, mut store) = setup();
        let out = acquire(&mut s, &mut store, t(0), C0, 1, Mode::Write);
        let resv = granted(&out).unwrap().2.unwrap();
        // The lease lapses (10 s term) and another client takes over
        // immediately: expired holders are no obstacle.
        let out = acquire(&mut s, &mut store, t(20_000), C1, 1, Mode::Write);
        let resv2 = granted(&out).unwrap().2.unwrap();
        assert!(resv2.first > resv.last, "burned range is never reused");
        // The old writer's late flush bounces.
        let out = s.handle(
            t(20_100),
            WbServerInput::Msg {
                from: C0,
                msg: WbToServer::WriteBack {
                    req: ReqId(9),
                    resource: 7,
                    reservation: resv.id,
                    version: resv.first,
                    data: 111,
                },
            },
            &mut store,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            WbServerOutput::Send {
                msg: WbToClient::FlushRejected { .. },
                ..
            }
        )));
        assert_eq!(s.flushes_rejected, 1);
        use lease_core::Storage;
        assert_eq!(store.read(&7).unwrap().0, 100, "stale data must not land");
    }

    #[test]
    fn writeback_updates_storage_and_acks() {
        let (mut s, mut store) = setup();
        let out = acquire(&mut s, &mut store, t(0), C0, 1, Mode::Write);
        let resv = granted(&out).unwrap().2.unwrap();
        let out = s.handle(
            t(100),
            WbServerInput::Msg {
                from: C0,
                msg: WbToServer::WriteBack {
                    req: ReqId(2),
                    resource: 7,
                    reservation: resv.id,
                    version: Version(resv.first.0 + 3),
                    data: 555,
                },
            },
            &mut store,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            WbServerOutput::Send {
                msg: WbToClient::Flushed { .. },
                ..
            }
        )));
        assert!(out
            .iter()
            .any(|o| matches!(o, WbServerOutput::Durable { .. })));
        use lease_core::Storage;
        assert_eq!(store.read(&7).unwrap(), (555, Version(resv.first.0 + 3)));
    }

    #[test]
    fn unknown_resource_errors() {
        let (mut s, mut store) = setup();
        let out = s.handle(
            t(0),
            WbServerInput::Msg {
                from: C0,
                msg: WbToServer::Acquire {
                    req: ReqId(1),
                    resource: 99,
                    mode: Mode::Read,
                    cached: None,
                },
            },
            &mut store,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            WbServerOutput::Send {
                msg: WbToClient::Error { .. },
                ..
            }
        )));
    }

    #[test]
    fn upgrade_drops_own_read_lease() {
        let (mut s, mut store) = setup();
        acquire(&mut s, &mut store, t(0), C0, 1, Mode::Read);
        let out = acquire(&mut s, &mut store, t(1), C0, 2, Mode::Write);
        assert!(
            granted(&out).is_some(),
            "own read lease must not block the upgrade"
        );
        assert!(s.readers.holders_at(7, t(1)).is_empty());
    }

    #[test]
    fn queued_acquires_grant_in_order_after_recall() {
        let (mut s, mut store) = setup();
        let out = acquire(&mut s, &mut store, t(0), C0, 1, Mode::Write);
        let resv = granted(&out).unwrap().2.unwrap();
        // Two readers queue behind the writer.
        assert!(granted(&acquire(&mut s, &mut store, t(1), C1, 1, Mode::Read)).is_none());
        assert!(granted(&acquire(
            &mut s,
            &mut store,
            t(2),
            ClientId(2),
            1,
            Mode::Read
        ))
        .is_none());
        let out = s.handle(
            t(3),
            WbServerInput::Msg {
                from: C0,
                msg: WbToServer::Release {
                    req: ReqId(92),
                    resource: 7,
                    reservation: Some(resv.id),
                    dirty: None,
                },
            },
            &mut store,
        );
        // Both queued reads are granted together (shared mode).
        let grants = out
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    WbServerOutput::Send {
                        msg: WbToClient::Granted { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(grants, 2);
    }
}
